"""The replica's state machine: apply shipped frames, serve stale reads.

:class:`ReplicaApplier` is the process-agnostic core of a read replica:
it recovers a **read-only** view of a durable directory
(:func:`repro.durability.recover.recover` with ``readonly=True`` — a
replica never truncates a journal it does not own), then applies the
journal records the supervisor ships, one strictly-contiguous frame at
a time, through the exact replay machinery recovery itself uses
(:func:`~repro.durability.recover.replay_record`).  Replication
correctness therefore reduces to recovery correctness: a replica's
store is, at every acknowledged watermark, *definitionally* what
single-process recovery would rebuild at that watermark.

Discipline enforced per record:

* **sequence** — records at or below the applied watermark are skipped
  (idempotent re-ship after a reconnect); a gap or interleaving raises
  :class:`~repro.errors.JournalCorruptionError` (permanently fatal);
* **epoch** — a record carrying a fencing epoch below the highest one
  this replica has witnessed is refused with
  :class:`~repro.errors.StaleEpochError`: frames from a deposed
  primary must never reach a store that already applied the promoted
  one's;
* **group atomicity** — members of a commit group are staged and
  applied only when the ``end`` marker arrives; the acknowledged
  watermark moves over the whole group at once, so a connection lost
  mid-group re-ships the group whole (:meth:`reset_pending`).

Promotion (:meth:`promote`) turns the replica into the new primary:
the fencing epoch is advanced *first* (deposing the old primary before
anything else — see :mod:`repro.cluster.fence`), then the directory is
re-opened as a full :class:`~repro.durability.DurableEngine` — which
replays the complete journal, truncates any torn tail or unterminated
group (the new owner may write), and reopens the journal under the new
epoch with the fence installed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.engine import Engine
from repro.errors import JournalCorruptionError, StaleEpochError, UpdateError

from repro.cluster.fence import advance_epoch, make_fence, read_epoch
from repro.durability.durable import DurableEngine
from repro.durability.faults import CRASH_MID_REPLAY, FaultInjector
from repro.durability.recover import recover, replay_record


def store_fingerprint(engine: "Engine") -> str:
    """A canonical digest of the engine's *replicated* state.

    SHA-256 over the reachable node records (sorted by id), the global
    bindings and the document catalog.  Reachable means: in a tree
    rooted at a document or a global-bound node.  Two things are
    deliberately excluded because they are process-local, not journal
    state: transient nodes a query's result construction allocated
    (they never enter the journal, so replay and recovery never
    materialize them), and the raw id-allocation cursor (it advances
    on those same unjournaled allocations).  Module text and engine
    settings are excluded too — functions are re-registered per
    process and settings are operator policy.  Equal fingerprints mean
    the stores serialize identically for everything the journal
    describes — the chaos harness's byte-agreement check.
    """
    from repro.persist import _engine_payload

    payload = _engine_payload(engine)
    by_id = {record[0]: record for record in payload["records"]}
    roots: set[int] = set(payload["documents"].values())
    for value in payload["globals"].values():
        for item in value:
            if item[0] == "node":
                roots.add(item[1])
    reachable: set[int] = set()
    stack = [nid for nid in roots if nid in by_id]
    while stack:
        nid = stack.pop()
        if nid in reachable:
            continue
        reachable.add(nid)
        record = by_id.get(nid)
        if record is None:
            continue
        # record = [nid, kind, name, parent, children, attributes, value]
        stack.extend(record[4])
        stack.extend(record[5])
    canonical = {
        "records": sorted(
            record for nid, record in by_id.items() if nid in reachable
        ),
        "globals": payload["globals"],
        "documents": payload["documents"],
    }
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ReplicaApplier:
    """One replica's engine plus the frame-application state machine.

    Parameters:
        directory: the durable directory being replicated (shared
            storage; this process must treat it as read-only until
            promoted).
        module_source: XQuery! module text to re-register after
            recovery (functions are not persisted — same dance as
            :class:`~repro.usecases.webservice.AuctionService`).
        faults: optional injector; the ``crash-mid-replay`` point fires
            per record applied, simulating a replica dying mid-catch-up.
        tracer: optional tracer (``cluster.replica.*`` counters).
    """

    def __init__(
        self,
        directory: str,
        *,
        module_source: str | None = None,
        faults: FaultInjector | None = None,
        tracer: Any | None = None,
    ):
        self.directory = directory
        self.module_source = module_source
        self.faults = faults
        self.tracer = tracer
        self.promoted = False
        self.durable: DurableEngine | None = None
        result = recover(directory, readonly=True, tracer=tracer)
        self.engine: Engine = result.engine
        self._restore_module(self.engine)
        #: Highest sequence number durably applied (the ACK watermark).
        self.applied_seq = result.report.next_seq - 1
        #: Highest fencing epoch witnessed (frames below it are refused).
        self.epoch = read_epoch(directory)
        # Commit-group staging: members buffer here until the end
        # marker proves the group complete.
        self._staged: list[dict] | None = None
        self._staged_count = 0
        # Contiguity cursor *including* staged records (applied_seq
        # lags it while a group is open).
        self._next_seq = self.applied_seq + 1

    # -- frame application -------------------------------------------------

    def reset_pending(self) -> None:
        """Drop a half-received commit group (connection reset).

        The supervisor re-ships from the acknowledged watermark, so the
        group arrives again whole.
        """
        self._staged = None
        self._staged_count = 0
        self._next_seq = self.applied_seq + 1

    def apply_records(self, records: list[dict]) -> int:
        """Apply shipped journal records; returns the new watermark.

        Raises :class:`~repro.errors.JournalCorruptionError` on a
        sequence gap or malformed record and
        :class:`~repro.errors.StaleEpochError` on a frame from a
        deposed primary.  On any failure nothing past the last complete
        group/record is applied and the watermark is unchanged for the
        failed suffix — the caller may retire the replica or resync.
        """
        for record in records:
            self._apply_one(record)
        return self.applied_seq

    def _apply_one(self, record: dict) -> None:
        seq = record.get("seq")
        if not isinstance(seq, int):
            raise JournalCorruptionError(
                "shipped record carries no sequence number"
            )
        if seq < self._next_seq:
            return  # idempotent re-ship of an already-seen record
        if seq != self._next_seq:
            raise JournalCorruptionError(
                f"replication sequence gap: expected {self._next_seq}, "
                f"received {seq}"
            )
        epoch = record.get("ep", 0)
        if not isinstance(epoch, int):
            raise JournalCorruptionError(
                f"shipped record {seq} carries a malformed epoch "
                f"{epoch!r}"
            )
        if epoch < self.epoch:
            raise StaleEpochError(
                f"shipped record {seq} was written under deposed epoch "
                f"{epoch}; this replica has witnessed epoch {self.epoch}",
                stale_epoch=epoch,
                fence_epoch=self.epoch,
            )
        if epoch > self.epoch:
            # Frames from a newly promoted primary raise the floor: the
            # old primary can never slip a frame in afterwards.
            self.epoch = epoch
        if self.faults is not None:
            self.faults.hit(CRASH_MID_REPLAY)
        marker = record.get("group")
        if marker == "begin":
            if self._staged is not None:
                raise JournalCorruptionError(
                    f"nested commit-group begin shipped at seq {seq}"
                )
            self._staged = []
            self._staged_count = record.get("count", 0)
            self._next_seq = seq + 1
            return
        if marker == "end":
            if self._staged is None:
                raise JournalCorruptionError(
                    f"commit-group end without begin shipped at seq {seq}"
                )
            if len(self._staged) != self._staged_count:
                raise JournalCorruptionError(
                    f"commit group closing at seq {seq} declares "
                    f"{self._staged_count} member(s) but shipped "
                    f"{len(self._staged)}"
                )
            staged, self._staged = self._staged, None
            for member in staged:
                replay_record(self.engine.store, member)
            # The whole group becomes durable knowledge at once.
            self.applied_seq = seq
            self._next_seq = seq + 1
            if self.tracer is not None:
                self.tracer.count("cluster.replica.groups")
            return
        if marker is not None:
            raise JournalCorruptionError(
                f"unknown commit-group marker {marker!r} shipped at "
                f"seq {seq}"
            )
        if self._staged is not None:
            self._staged.append(record)
            self._next_seq = seq + 1
            return
        replay_record(self.engine.store, record)
        self.applied_seq = seq
        self._next_seq = seq + 1
        if self.tracer is not None:
            self.tracer.count("cluster.replica.records")

    # -- serving -----------------------------------------------------------

    def execute(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
    ):
        """Execute *query* against this replica's view.

        Before promotion only provably read-only queries are admitted —
        an updating query gets a typed
        :class:`~repro.errors.UpdateError` (a replica must never apply
        a Δ the journal does not describe).  After promotion the full
        durable write path serves.
        """
        target = self.durable if self.durable is not None else self.engine
        if not self.promoted:
            from repro.engine import ExecutionOptions

            prepared = target.prepare(query)
            if not prepared.is_readonly():
                raise UpdateError(
                    "replica is read-only: updating queries must go to "
                    "the primary"
                )
            return prepared.execute(
                bindings=bindings,
                options=ExecutionOptions(timeout_ms=timeout_ms),
            )
        return target.execute(
            query, bindings=bindings, timeout_ms=timeout_ms
        )

    def lag_seq(self, primary_seq: int | None) -> int | None:
        """Records behind the primary's watermark (None when unknown)."""
        if primary_seq is None:
            return None
        return max(0, primary_seq - self.applied_seq)

    def health(self, primary_seq: int | None = None):
        """The replica's health report, with a ``replication`` section
        (applied watermark, witnessed epoch, lag when the primary's
        watermark is known, promotion state)."""
        target = self.durable if self.durable is not None else self.engine
        report = target.health()
        report.sections["replication"] = {
            "applied_seq": self.applied_seq,
            "epoch": self.epoch,
            "promoted": self.promoted,
            "lag_seq": self.lag_seq(primary_seq),
        }
        return report

    def fingerprint(self) -> str:
        engine = (
            self.durable.engine if self.durable is not None else self.engine
        )
        return store_fingerprint(engine)

    # -- failover ----------------------------------------------------------

    def promote(self, epoch: int) -> int:
        """Take over as primary under fencing *epoch*.

        Ordering is the safety argument: (1) the epoch is published —
        from this instant the old primary's next fenced append raises
        :class:`~repro.errors.StaleEpochError`; (2) the directory is
        re-opened as a full :class:`DurableEngine`, which replays
        everything the old primary made durable (including writes no
        replica ever saw shipped) and truncates torn tails — promotion
        state is *exactly* single-process recovery state; (3) the
        journal continues under the new epoch with the fence installed
        for any future promotion.  Returns the applied watermark.
        """
        advance_epoch(self.directory, epoch)
        durable = DurableEngine(self.directory, tracer=self.tracer)
        durable.journal.epoch = epoch
        durable.journal.fence = make_fence(self.directory, epoch)
        self._restore_module(durable.engine)
        self.durable = durable
        self.engine = durable.engine
        self.promoted = True
        self.epoch = epoch
        self.applied_seq = durable.journal.next_seq - 1
        self.reset_pending()
        if self.tracer is not None:
            self.tracer.count("cluster.replica.promotions")
        return self.applied_seq

    def close(self) -> None:
        if self.durable is not None:
            self.durable.close()

    # -- internals ---------------------------------------------------------

    def _restore_module(self, engine: "Engine | Any") -> None:
        """Re-register module functions without disturbing the store.

        Recovered globals are kept (the module's variable initializers
        must not reset e.g. a persisted counter — the same dance the
        durable AuctionService does), and — critically for a replica —
        the scratch nodes those initializers allocated are removed and
        the id watermark restored.  Shipped records re-seed allocation
        at their journaled ``pre`` watermark; a locally allocated node
        sitting above the recovered watermark would collide with
        replayed ids and silently corrupt the replica's store.
        """
        if self.module_source is None:
            return
        inner = getattr(engine, "engine", engine)
        store = inner.store
        watermark = store._next_id
        recovered = dict(inner.evaluator.globals)
        inner.load_module(self.module_source)
        inner.evaluator.globals.update(recovered)
        scratch = [nid for nid in store._records if nid >= watermark]
        for nid in scratch:
            record = store._records.pop(nid)
            if record.name:
                store._name_index.get(record.name, set()).discard(nid)
        store._reset_ids(watermark)
        if scratch:
            store._touch()

    def __repr__(self) -> str:
        return (
            f"ReplicaApplier(directory={self.directory!r}, "
            f"applied_seq={self.applied_seq}, epoch={self.epoch}, "
            f"promoted={self.promoted})"
        )
