"""The fleet-level chaos harness: kill, partition, fail over — survive.

:mod:`repro.resilience.chaos` proved one process survives hostile I/O;
this harness proves the *fleet* does: a primary plus N replica worker
processes under concurrent read/write load while the chaos driver

* **kills a replica** (SIGKILL) — the supervisor must restart it and
  catch it up from disk;
* **opens a partition window** (stalled pipe) — the replica's lag must
  grow, bounded reads must route around it, and catch-up must resume
  when the window closes;
* **kills the primary** — the supervisor must perform *fenced
  failover*: promote the freshest replica under a bumped epoch, after
  which writes resume against the promoted node and the resurrected
  old primary's next append is refused with a typed
  :class:`~repro.errors.StaleEpochError` (REPR0009).

The standing invariant, asserted at the end of every run (and by
``tests/cluster/test_chaos.py`` in CI):

1. every request ends in **success or a typed refusal** — lag and
   failover gaps surface as transient
   :class:`~repro.errors.ReplicaLagError` (REPR0010), never as an
   untyped error;
2. after the dust settles the fleet **converges**: every surviving
   replica's store fingerprint equals the write side's;
3. the final store **byte-agrees with single-process replay** — a
   fresh recovery of the shared directory fingerprints identically to
   the promoted (or surviving primary's) store;
4. when the primary was killed: failover completed, writes succeeded
   *after* it, and the deposed primary's write was fenced.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    DurabilityError,
    QueryTimeoutError,
    ReplicaLagError,
    ResourceLimitError,
    ServiceOverloadedError,
    StaleEpochError,
    XQueryError,
)

#: Outcome classes a request may legally end in.
SUCCESS = "success"
OVERLOADED = "overloaded"  # structured ServiceOverloadedError
CIRCUIT_OPEN = "circuit-open"  # degraded read-only refusal
DURABILITY = "durability"  # typed journal-append failure
TIMEOUT = "timeout"
RESOURCE_LIMIT = "resource-limit"
REPLICA_LAG = "replica-lag"  # transient lag / failover-gap refusal
STALE_EPOCH = "stale-epoch"  # fenced deposed-primary refusal
SEMANTIC = "semantic"  # other typed XQueryError
UNEXPECTED = "unexpected"  # anything untyped — an invariant violation


@dataclass(frozen=True)
class ClusterChaosSchedule:
    """When each fault window opens, in seconds from run start.

    ``None`` disables a fault.  The replica killed is always replica 0;
    the partitioned one is the highest-numbered replica (so the two
    faults hit different processes when the fleet has at least two).
    """

    duration_s: float = 6.0
    kill_replica_at_s: float | None = None
    stall_start_s: float | None = None
    stall_stop_s: float | None = None
    kill_primary_at_s: float | None = None

    @classmethod
    def everything(cls, duration_s: float = 8.0) -> "ClusterChaosSchedule":
        """All three faults, staggered: replica kill early, a partition
        window through the middle, primary kill at the halfway mark
        (leaving the second half for failover and post-failover load)."""
        return cls(
            duration_s=duration_s,
            kill_replica_at_s=duration_s * 0.15,
            stall_start_s=duration_s * 0.30,
            stall_stop_s=duration_s * 0.45,
            kill_primary_at_s=duration_s * 0.50,
        )


@dataclass
class ClusterChaosReport:
    """What a chaos run observed, and whether the invariant held."""

    outcomes: dict = field(default_factory=dict)
    unexpected: list = field(default_factory=list)
    read_successes: int = 0
    write_successes: int = 0
    write_failures: int = 0
    replica_reads: int = 0  # reads served by a replica process
    primary_killed: bool = False
    failover_performed: bool = False
    promoted: str | None = None
    post_failover_write_successes: int = 0
    fenced_refusal_ok: bool | None = None  # None: primary never killed
    restarts: dict = field(default_factory=dict)
    fingerprints: dict = field(default_factory=dict)
    reference_fingerprint: str | None = None
    recovered_fingerprint: str | None = None
    replicas_converged: bool = False
    byte_agreement_ok: bool = False
    final_epoch: int = 0
    final_watermarks: dict = field(default_factory=dict)

    @property
    def invariant_holds(self) -> bool:
        ok = (
            not self.unexpected
            and self.read_successes > 0
            and self.write_successes > 0
            and self.replicas_converged
            and self.byte_agreement_ok
        )
        if self.primary_killed:
            ok = (
                ok
                and self.failover_performed
                and self.post_failover_write_successes > 0
                and bool(self.fenced_refusal_ok)
            )
        return ok

    def to_dict(self) -> dict:
        return {
            "schema": "repro.cluster.chaos-report/v1",
            "outcomes": dict(self.outcomes),
            "unexpected": list(self.unexpected),
            "read_successes": self.read_successes,
            "write_successes": self.write_successes,
            "write_failures": self.write_failures,
            "replica_reads": self.replica_reads,
            "primary_killed": self.primary_killed,
            "failover_performed": self.failover_performed,
            "promoted": self.promoted,
            "post_failover_write_successes": (
                self.post_failover_write_successes
            ),
            "fenced_refusal_ok": self.fenced_refusal_ok,
            "restarts": dict(self.restarts),
            "fingerprints": dict(self.fingerprints),
            "reference_fingerprint": self.reference_fingerprint,
            "recovered_fingerprint": self.recovered_fingerprint,
            "replicas_converged": self.replicas_converged,
            "byte_agreement_ok": self.byte_agreement_ok,
            "final_epoch": self.final_epoch,
            "final_watermarks": dict(self.final_watermarks),
            "invariant_holds": self.invariant_holds,
        }

    def render(self) -> str:
        lines = ["cluster chaos report", "--------------------"]
        for outcome in sorted(self.outcomes):
            lines.append(f"  {outcome:>14}: {self.outcomes[outcome]}")
        lines.append(
            f"  reads ok={self.read_successes} "
            f"(via replicas: {self.replica_reads})  "
            f"writes ok={self.write_successes} "
            f"failed={self.write_failures}"
        )
        lines.append(
            f"  restarts={self.restarts}  epoch={self.final_epoch}"
        )
        if self.primary_killed:
            lines.append(
                f"  failover={'yes' if self.failover_performed else 'NO'} "
                f"promoted={self.promoted} "
                f"post-failover writes={self.post_failover_write_successes} "
                f"fenced refusal="
                f"{'ok' if self.fenced_refusal_ok else 'MISSING'}"
            )
        lines.append(
            f"  converged={'yes' if self.replicas_converged else 'NO'}  "
            f"byte-agreement="
            f"{'yes' if self.byte_agreement_ok else 'NO'}"
        )
        for item in self.unexpected[:10]:
            lines.append(f"  UNEXPECTED: {item}")
        lines.append(
            "invariant: "
            + ("HELD" if self.invariant_holds else "VIOLATED")
        )
        return "\n".join(lines)


class ClusterChaosHarness:
    """Drive a replicated auction fleet through the fault schedule.

    Parameters:
        path: durable directory (a fresh temp dir when omitted).
        schedule: a :class:`ClusterChaosSchedule`.
        replicas: worker-process count.
        readers / writers: client-thread counts.
        max_lag_seq: staleness bound applied to every *other* read
            (bounded and unbounded reads interleave, so both routing
            paths are exercised).
        items / persons: auction-document scale.
        request_timeout_ms: per-request deadline.
    """

    def __init__(
        self,
        path: str | None = None,
        schedule: ClusterChaosSchedule | None = None,
        *,
        replicas: int = 2,
        readers: int = 3,
        writers: int = 2,
        max_lag_seq: int = 64,
        items: int = 8,
        persons: int = 8,
        request_timeout_ms: float = 4000.0,
    ):
        self.path = (
            path
            if path is not None
            else tempfile.mkdtemp(prefix="repro-cluster-chaos-")
        )
        self.schedule = (
            schedule if schedule is not None else ClusterChaosSchedule()
        )
        self.replicas = replicas
        self.readers = readers
        self.writers = writers
        self.max_lag_seq = max_lag_seq
        self.items = items
        self.persons = persons
        self.request_timeout_ms = request_timeout_ms

    # -- outcome classification -------------------------------------------

    @staticmethod
    def classify(error: BaseException | None) -> str:
        """Map a request's terminal error (or None) to an outcome class."""
        if error is None:
            return SUCCESS
        if isinstance(error, StaleEpochError):
            return STALE_EPOCH
        if isinstance(error, ReplicaLagError):
            return REPLICA_LAG
        if isinstance(error, CircuitOpenError):
            return CIRCUIT_OPEN
        if isinstance(error, ServiceOverloadedError):
            return OVERLOADED
        if isinstance(error, QueryTimeoutError):
            return TIMEOUT
        if isinstance(error, ResourceLimitError):
            return RESOURCE_LIMIT
        if isinstance(error, DurabilityError):
            return DURABILITY
        if isinstance(error, XQueryError):
            return SEMANTIC
        return UNEXPECTED

    # -- the run ----------------------------------------------------------

    def run(self) -> ClusterChaosReport:
        from repro.cluster.replica import store_fingerprint
        from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
        from repro.usecases.webservice import (
            SERVICE_MODULE,
            AuctionFrontEnd,
            AuctionService,
        )
        from repro.xmark import XMarkConfig, generate_auction_xml

        report = ClusterChaosReport()
        xml = generate_auction_xml(
            XMarkConfig(
                persons=self.persons,
                items=self.items,
                open_auctions=4,
                closed_auctions=4,
            )
        )
        service = AuctionService(
            auction_xml=xml, maxlog=8, durable_path=self.path
        )
        supervisor = ClusterSupervisor(
            self.path,
            primary=service.engine,
            module_source=SERVICE_MODULE,
            config=ClusterConfig(
                replicas=self.replicas,
                ship_interval_s=0.02,
                probe_interval_s=0.1,
            ),
        )
        supervisor.start()
        front = AuctionFrontEnd(
            service,
            workers=4,
            queue_size=64,
            default_timeout_ms=self.request_timeout_ms,
            cluster=supervisor,
        )
        mutex = threading.Lock()
        stop = threading.Event()
        started = time.monotonic()

        def record(kind: str, error: BaseException | None) -> None:
            outcome = self.classify(error)
            with mutex:
                report.outcomes[outcome] = (
                    report.outcomes.get(outcome, 0) + 1
                )
                if outcome == SUCCESS:
                    if kind == "read":
                        report.read_successes += 1
                    elif kind == "write":
                        report.write_successes += 1
                        if report.primary_killed:
                            report.post_failover_write_successes += 1
                elif kind == "write":
                    report.write_failures += 1
                if outcome == UNEXPECTED:
                    report.unexpected.append(repr(error))

        def reader(seed: int) -> None:
            index = seed
            while not stop.is_set():
                index += 1
                itemid = f"item{index % self.items}"
                userid = f"person{index % self.persons}"
                bound = self.max_lag_seq if index % 2 else None
                try:
                    result = front.submit_get_item_nolog(
                        itemid,
                        userid,
                        timeout_ms=self.request_timeout_ms,
                        max_lag_seq=bound,
                    ).result()
                except BaseException as error:  # noqa: BLE001 - classified
                    record("read", error)
                else:
                    record("read", None)
                    backend = getattr(result, "backend", "")
                    if backend.startswith("replica"):
                        with mutex:
                            report.replica_reads += 1
                time.sleep(0.002)

        def writer(seed: int) -> None:
            index = seed
            while not stop.is_set():
                index += 1
                itemid = f"item{index % self.items}"
                userid = f"person{index % self.persons}"
                try:
                    front.get_item(itemid, userid)
                except BaseException as error:  # noqa: BLE001 - classified
                    record("write", error)
                else:
                    record("write", None)
                time.sleep(0.005)

        def chaos_driver() -> None:
            sched = self.schedule
            stall_target = len(supervisor.handles) - 1
            replica_killed = False
            stall_opened = False
            stall_closed = False
            while not stop.is_set():
                now = time.monotonic() - started
                if (
                    sched.kill_replica_at_s is not None
                    and not replica_killed
                    and now >= sched.kill_replica_at_s
                ):
                    replica_killed = True
                    supervisor.kill_replica(0)
                if (
                    sched.stall_start_s is not None
                    and not stall_opened
                    and now >= sched.stall_start_s
                ):
                    stall_opened = True
                    supervisor.stall_replica(stall_target, True)
                if (
                    stall_opened
                    and not stall_closed
                    and sched.stall_stop_s is not None
                    and now >= sched.stall_stop_s
                ):
                    stall_closed = True
                    supervisor.stall_replica(stall_target, False)
                if (
                    sched.kill_primary_at_s is not None
                    and not report.primary_killed
                    and now >= sched.kill_primary_at_s
                ):
                    with mutex:
                        report.primary_killed = True
                    supervisor.kill_primary()
                time.sleep(0.01)

        threads = [threading.Thread(target=chaos_driver, daemon=True)]
        for index in range(self.readers):
            threads.append(
                threading.Thread(
                    target=reader, args=(index * 7,), daemon=True
                )
            )
        for index in range(self.writers):
            threads.append(
                threading.Thread(
                    target=writer, args=(index * 13,), daemon=True
                )
            )
        for thread in threads:
            thread.start()
        time.sleep(self.schedule.duration_s)
        stop.set()
        for thread in threads:
            thread.join(timeout=15.0)

        # Close any partition window left open so catch-up can finish.
        for handle in supervisor.handles:
            supervisor.stall_replica(handle.id, False)

        # -- failover must complete when the primary was killed.
        if report.primary_killed:
            deadline = time.monotonic() + 30.0
            while (
                supervisor.promoted_handle is None
                and time.monotonic() < deadline
            ):
                time.sleep(0.1)
            promoted = supervisor.promoted_handle
            report.failover_performed = promoted is not None
            report.promoted = promoted.name if promoted else None
            # Writes must resume against the promoted node.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                try:
                    front.get_item("item0", "person0")
                except XQueryError:
                    time.sleep(0.1)
                    continue
                with mutex:
                    report.write_successes += 1
                    report.post_failover_write_successes += 1
                break
            # The deposed primary's next write must be fenced.
            if report.failover_performed:
                try:
                    service.engine.execute(
                        "get_item($itemid, $userid)",
                        bindings={
                            "itemid": "item0",
                            "userid": "person0",
                        },
                    )
                except StaleEpochError:
                    report.fenced_refusal_ok = True
                except BaseException as error:  # noqa: BLE001
                    report.fenced_refusal_ok = False
                    report.unexpected.append(
                        f"deposed-primary write raised {error!r} "
                        "instead of StaleEpochError"
                    )
                else:
                    report.fenced_refusal_ok = False
                    report.unexpected.append(
                        "deposed-primary write succeeded past the fence"
                    )

        # -- quiesce the write path before judging convergence.  A
        # request that timed out at its caller may still be queued in
        # the front end's pool; letting it commit *between* the
        # convergence check and fingerprint collection would make a
        # fully-caught-up follower look divergent.  Draining the pool
        # here guarantees the committed watermark is final.
        front.shutdown()

        # -- convergence: every surviving follower catches up.  The
        # committed watermark is observed through the shipper's tail
        # cursor and the health prober, both asynchronous — a target
        # read the instant after the last commit can lag the journal's
        # true end.  With writes quiesced the journal is frozen, so
        # demanding the condition hold across several consecutive
        # polls (spanning many ship/probe intervals) rules out a
        # stale-target false positive.
        deadline = time.monotonic() + 30.0
        stable = 0
        while time.monotonic() < deadline:
            target = supervisor.last_committed_seq()
            followers = [
                h
                for h in supervisor.handles
                if h.alive and not h.promoted
            ]
            if (
                target is not None
                and followers
                and all(h.acked_seq >= target for h in followers)
            ):
                stable += 1
                if stable >= 5:
                    break
            else:
                stable = 0
            time.sleep(0.1)

        # -- fingerprints from every live worker (promoted included).
        # The live primary's in-memory store is deliberately *not* a
        # reference: result construction leaves transient nodes in it
        # that neither replay nor recovery materializes — the replicated
        # state is what the journal describes, and the arbiter of that
        # is single-process recovery of the shared directory.
        for handle in supervisor.handles:
            if not handle.alive:
                continue
            try:
                report.fingerprints[handle.name] = (
                    supervisor.fingerprint_of(handle)
                )
            except (XQueryError, ConnectionError):
                pass
        report.replicas_converged = (
            bool(report.fingerprints)
            and len(set(report.fingerprints.values())) == 1
        )
        report.restarts = {
            h.name: h.restarts for h in supervisor.handles
        }
        report.final_epoch = supervisor.epoch
        report.final_watermarks = {
            "target": supervisor.last_committed_seq(),
            **{h.name: h.acked_seq for h in supervisor.handles},
        }

        # -- teardown, then byte-agreement with single-process replay.
        supervisor.shutdown()
        try:
            service.close()
        except XQueryError:
            pass  # a deposed primary's close may be refused; that's fine
        from repro.durability.recover import recover

        try:
            recovered = recover(self.path, readonly=True)
            report.recovered_fingerprint = store_fingerprint(
                recovered.engine
            )
        except XQueryError as error:
            report.unexpected.append(f"post-run recovery failed: {error!r}")
        report.reference_fingerprint = report.recovered_fingerprint
        report.byte_agreement_ok = (
            report.recovered_fingerprint is not None
            and bool(report.fingerprints)
            and all(
                fp == report.recovered_fingerprint
                for fp in report.fingerprints.values()
            )
        )
        return report


def main(argv: list | None = None) -> int:
    """``python -m repro.cluster.chaos`` — run the fleet chaos schedule.

    Exit codes: 0 — the fleet invariant held; 1 — a violation (untyped
    error, missed failover, unfenced deposed primary, divergent or
    disagreeing stores); 2 — the harness itself crashed.
    """
    import argparse
    import json as _json

    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.chaos",
        description=(
            "Fleet chaos harness: kill replicas, partition pipes and "
            "fail the primary over while concurrent clients read and "
            "write; assert the typed-refusal / convergence / "
            "byte-agreement invariants."
        ),
    )
    parser.add_argument(
        "--duration", type=float, default=6.0,
        help="run duration in seconds (default 6)",
    )
    parser.add_argument(
        "--replicas", type=int, default=2,
        help="replica process count (default 2)",
    )
    parser.add_argument(
        "--readers", type=int, default=3,
        help="reader client threads (default 3)",
    )
    parser.add_argument(
        "--writers", type=int, default=2,
        help="writer client threads (default 2)",
    )
    parser.add_argument(
        "--max-lag-seq", type=int, default=64,
        help="staleness bound applied to half the reads (default 64)",
    )
    parser.add_argument(
        "--kill-replica", action="store_true",
        help="SIGKILL replica 0 partway through the run",
    )
    parser.add_argument(
        "--kill-primary", action="store_true",
        help="kill the primary at the halfway mark (forces failover)",
    )
    parser.add_argument(
        "--stall", action="store_true",
        help="open a partition window on the last replica",
    )
    parser.add_argument(
        "--dir", default=None,
        help="durable directory (default: fresh temp dir)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    duration = args.duration
    schedule = ClusterChaosSchedule(
        duration_s=duration,
        kill_replica_at_s=duration * 0.15 if args.kill_replica else None,
        stall_start_s=duration * 0.30 if args.stall else None,
        stall_stop_s=duration * 0.45 if args.stall else None,
        kill_primary_at_s=duration * 0.50 if args.kill_primary else None,
    )
    harness = ClusterChaosHarness(
        path=args.dir,
        schedule=schedule,
        replicas=args.replicas,
        readers=args.readers,
        writers=args.writers,
        max_lag_seq=args.max_lag_seq,
    )
    try:
        report = harness.run()
    except Exception as error:  # noqa: BLE001 - harness crash is exit 2
        print(f"harness crashed: {error!r}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.invariant_holds else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
