"""The cluster supervisor: primary + replica fleet + fenced failover.

:class:`ClusterSupervisor` owns one durable directory and the process
fleet around it:

* the **primary** is a :class:`~repro.durability.DurableEngine` in the
  supervisor's own process (writes execute in-process, exactly as in
  the single-process stack — replication adds no write-path hop);
* each **replica** is a separate OS process
  (``python -m repro.cluster.worker``) connected over an inherited
  socketpair and fed journal frame groups by a pump thread
  (:class:`~repro.cluster.shipper.ShipBuffer` over one
  :class:`~repro.durability.journal.JournalFollower`);
* the pump thread also **health-probes** every replica each probe
  interval, publishes the fleet's aggregated report to
  ``cluster-health.json`` (what ``repro health DIR`` merges in), and
  **restarts** dead or out-of-window replicas with a full from-disk
  catch-up;
* on primary death (:meth:`kill_primary` in the chaos harness, or a
  probe observing a closed journal) the supervisor performs **fenced
  failover**: the live replica with the highest acknowledged watermark
  is told to promote under ``epoch + 1``.  The epoch file advances
  *before* the promoted node recovers, so a resurrected old primary's
  very next append is refused with a typed
  :class:`~repro.errors.StaleEpochError` (REPR0009) instead of
  interleaving two writers in one journal.

Reads route through :class:`~repro.cluster.router.QueryRouter`
(staleness-bounded via ``max_lag_seq``); writes go to the primary
while it lives, to the promoted replica after failover, and get a
transient typed :class:`~repro.errors.ReplicaLagError` (REPR0010,
``retry_after_ms`` hinted) during the failover gap itself — the
standing invariant (every request ends in success or typed refusal)
holds across the transition.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import (
    JournalCorruptionError,
    ReplicaLagError,
    StaleEpochError,
    XQueryError,
)
from repro.resilience.health import (
    UNHEALTHY,
    HealthReport,
    aggregate_reports,
)

from repro.cluster.fence import make_fence, read_epoch
from repro.cluster.protocol import (
    MSG_ACK,
    MSG_ERROR,
    MSG_EXEC,
    MSG_FINGERPRINT,
    MSG_FINGERPRINT_REPORT,
    MSG_FRAMES,
    MSG_HEALTH,
    MSG_HEALTH_REPORT,
    MSG_HELLO,
    MSG_INIT,
    MSG_PROMOTE,
    MSG_PROMOTED,
    MSG_QUERY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    ChannelClosed,
    FrameChannel,
    raise_remote,
    socketpair_channel,
)
from repro.cluster.shipper import ShipBuffer
from repro.durability.journal import FollowerResyncRequired, fsync_directory
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability import DurableEngine

HEALTH_FILE = "cluster-health.json"
_HEALTH_FORMAT = "repro.cluster.health/v1"


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet policy knobs.

    Attributes:
        replicas: read-replica process count.
        ship_interval_s: pump-thread poll period for new journal
            records (also the ``retry_after_ms`` hint on lag refusals).
        probe_interval_s: health-probe and ``cluster-health.json``
            publish period.
        restart_dead: respawn dead replicas (chaos turns this off to
            observe a shrinking fleet).
        max_restarts: per-replica respawn budget; a replica that
            crash-loops past it stays down (typed lag refusals instead
            of a restart storm).
        auto_failover: promote on observed primary death.  Explicit
            :meth:`ClusterSupervisor.failover` works regardless.
        rpc_timeout_s: per-RPC reply deadline (frames, queries,
            probes).
        promote_timeout_s: reply deadline for ``promote`` (covers a
            full from-disk recovery on the chosen replica).
        hello_timeout_s: worker startup deadline (interpreter start +
            recovery of the current checkpoint).
        window_records: ship-buffer capacity; a replica that falls out
            of the window is restarted with a full catch-up.
        default_max_lag_seq: fleet-default staleness bound for routed
            reads (None = any healthy replica qualifies).
        restart_backoff_base_ms: first restart backoff cap; doubles
            with every respawn of the same replica (full jitter — see
            :meth:`~repro.resilience.retry.RetryPolicy.backoff_ms`),
            so a crash-looping fleet's restarts cannot synchronize
            into a spawn storm.
        restart_backoff_max_ms: upper bound on any single restart
            backoff.
    """

    replicas: int = 2
    ship_interval_s: float = 0.02
    probe_interval_s: float = 0.25
    restart_dead: bool = True
    max_restarts: int = 8
    auto_failover: bool = True
    rpc_timeout_s: float = 30.0
    promote_timeout_s: float = 120.0
    hello_timeout_s: float = 120.0
    window_records: int = 8192
    default_max_lag_seq: int | None = None
    restart_backoff_base_ms: float = 50.0
    restart_backoff_max_ms: float = 2000.0


class ReplicaHandle:
    """The supervisor's view of one replica process."""

    def __init__(self, replica_id: int):
        self.id = replica_id
        self.name = f"replica-{replica_id}"
        self.proc: subprocess.Popen | None = None
        self.channel: FrameChannel | None = None
        self.lock = threading.RLock()  # serializes RPCs on the channel
        self.alive = False
        self.stalled = False  # chaos: partition window, pump skips it
        self.promoted = False
        self.acked_seq = 0
        self.epoch = 0
        self.restarts = 0
        self.next_restart_at = 0.0  # earliest allowed respawn (clock time)
        self.last_report: HealthReport | None = None
        self.last_error: str | None = None

    def rpc(self, message: dict, timeout: float) -> dict:
        """One request/reply on the channel; marks the handle dead on
        transport loss and re-raises :class:`ChannelClosed`."""
        with self.lock:
            channel = self.channel
            if channel is None or not self.alive:
                raise ChannelClosed(f"{self.name} is down")
            try:
                return channel.request(message, timeout)
            except (ChannelClosed, OSError) as exc:
                self.alive = False
                self.last_error = str(exc)
                raise ChannelClosed(f"{self.name}: {exc}") from exc

    def mark_dead(self, reason: str) -> None:
        self.alive = False
        self.last_error = reason


class ClusterSupervisor:
    """Supervise a primary engine and its replica fleet (see module
    docstring).

    Parameters:
        directory: the durable directory (shared storage).
        primary: the primary :class:`~repro.durability.DurableEngine`.
            The supervisor installs the fencing hook on its journal.
        module_source: XQuery! module text replicas re-register after
            recovery (e.g. ``SERVICE_MODULE`` — functions are not
            persisted).
        config: a :class:`ClusterConfig`.
        tracer: optional tracer (``cluster.*`` counters).
        rng: randomness source for restart-backoff jitter.  Injectable
            so tests (and the deterministic simulator) pin the draws;
            defaults to a private :class:`random.Random`.
        clock: monotonic-time callable for probe/backoff scheduling.
            Injectable for the same reason; defaults to
            :func:`time.monotonic`.
    """

    def __init__(
        self,
        directory: str,
        *,
        primary: "DurableEngine",
        module_source: str | None = None,
        config: ClusterConfig | None = None,
        tracer: Any | None = None,
        rng: random.Random | None = None,
        clock: Any | None = None,
    ):
        self.directory = directory
        self.primary = primary
        self.module_source = module_source
        self.config = config if config is not None else ClusterConfig()
        self.tracer = tracer
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock if clock is not None else time.monotonic
        # Restart pacing reuses the retry module's full-jitter schedule:
        # backoff_ms(attempt=restarts) with uniform jitter over the
        # doubling cap — the scheme that de-synchronizes retry storms.
        self._restart_policy = RetryPolicy(
            base_delay_ms=self.config.restart_backoff_base_ms,
            max_delay_ms=self.config.restart_backoff_max_ms,
            budget_ms=None,
        )
        self.epoch = read_epoch(directory)
        # Fence the primary under the current epoch: from here on, any
        # promotion's epoch advance turns the old primary's next append
        # into a typed StaleEpochError.
        primary.journal.epoch = self.epoch
        primary.journal.fence = make_fence(directory, self.epoch)
        self.primary_alive = True
        self.promoted_handle: ReplicaHandle | None = None
        self.handles: list[ReplicaHandle] = [
            ReplicaHandle(i) for i in range(self.config.replicas)
        ]
        self._buffer = ShipBuffer(
            directory,
            after_seq=primary.journal.next_seq - 1,
            capacity=self.config.window_records,
        )
        self._failover_lock = threading.Lock()
        self._stop = threading.Event()
        self._pump_thread: threading.Thread | None = None
        self._started = False
        self._last_probe = 0.0
        self._last_health: HealthReport | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        """Spawn the replica fleet and the pump thread."""
        if self._started:
            return self
        self._started = True
        for handle in self.handles:
            self._spawn(handle)
        self._probe_round()
        self._pump_thread = threading.Thread(
            target=self._pump, name="cluster-pump", daemon=True
        )
        self._pump_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the pump, shut the workers down, publish a last report."""
        self._stop.set()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=10.0)
        for handle in self.handles:
            self._retire(handle, shutdown=True)
        self._write_health_file(self._aggregate())

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- process management ------------------------------------------------

    def _worker_env(self) -> dict[str, str]:
        env = dict(os.environ)
        import repro

        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        parts = [src_root]
        if env.get("PYTHONPATH"):
            parts.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(parts)
        return env

    def _spawn(
        self, handle: ReplicaHandle, *, crash_after_frames: int | None = None
    ) -> bool:
        """Launch (or relaunch) one replica worker; True on success."""
        channel, child_sock = socketpair_channel()
        try:
            child_sock.set_inheritable(True)
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cluster.worker",
                    "--dir",
                    self.directory,
                    "--id",
                    str(handle.id),
                    "--fd",
                    str(child_sock.fileno()),
                ],
                pass_fds=(child_sock.fileno(),),
                env=self._worker_env(),
                stdout=subprocess.DEVNULL,
            )
        except OSError as exc:
            channel.close()
            child_sock.close()
            handle.mark_dead(f"spawn failed: {exc}")
            return False
        finally:
            # The parent's copy of the child end must close so EOF
            # propagates when the worker dies.
            try:
                child_sock.close()
            except OSError:
                pass
        handle.proc = proc
        handle.channel = channel
        handle.alive = True
        handle.promoted = False
        handle.last_error = None
        try:
            init: dict[str, Any] = {"t": MSG_INIT}
            if self.module_source is not None:
                init["module"] = self.module_source
            if crash_after_frames is not None:
                init["crash_after_frames"] = crash_after_frames
            channel.send(init)
            hello = channel.recv(self.config.hello_timeout_s)
        except (ChannelClosed, OSError) as exc:
            handle.mark_dead(f"handshake failed: {exc}")
            return False
        if hello.get("t") != MSG_HELLO:
            handle.mark_dead(f"bad hello: {hello.get('t')!r}")
            return False
        handle.acked_seq = int(hello.get("applied_seq", 0))
        handle.epoch = int(hello.get("epoch", 0))
        if self.tracer is not None:
            self.tracer.count("cluster.spawns")
        return True

    def _retire(
        self, handle: ReplicaHandle, *, shutdown: bool = False
    ) -> None:
        """Tear one replica process down (best effort)."""
        if shutdown and handle.alive and handle.channel is not None:
            try:
                handle.rpc({"t": MSG_SHUTDOWN}, timeout=5.0)
            except (ChannelClosed, OSError, TimeoutError):
                pass
        if handle.channel is not None:
            handle.channel.close()
            handle.channel = None
        proc = handle.proc
        if proc is not None:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        handle.alive = False

    def _restart(self, handle: ReplicaHandle) -> None:
        """Respawn a dead/out-of-window replica with from-disk catch-up.

        Respawns are paced by a full-jitter exponential backoff (the
        :mod:`repro.resilience.retry` schedule, seeded by the injected
        rng): a call before the handle's jittered deadline is a no-op
        and the next pump/probe round retries — the pump never sleeps,
        so pacing cannot stall shipping to the healthy fleet.
        """
        if handle.restarts >= self.config.max_restarts:
            return
        now = self._clock()
        if now < handle.next_restart_at:
            return  # still inside the backoff window; retried next round
        handle.restarts += 1
        handle.next_restart_at = now + (
            self._restart_policy.backoff_ms(handle.restarts, self._rng)
            / 1000.0
        )
        with handle.lock:
            self._retire(handle)
            self._spawn(handle)
        if self.tracer is not None:
            self.tracer.count("cluster.restarts")

    # -- the pump thread ---------------------------------------------------

    def _pump(self) -> None:
        while not self._stop.is_set():
            try:
                self._ship_round()
            except Exception:  # pragma: no cover - pump must survive
                pass
            now = self._clock()
            if now - self._last_probe >= self.config.probe_interval_s:
                self._last_probe = now
                try:
                    self._probe_round()
                except Exception:  # pragma: no cover - pump must survive
                    pass
            self._stop.wait(self.config.ship_interval_s)

    def _ship_round(self) -> None:
        try:
            self._buffer.poll()
        except FollowerResyncRequired:
            # Compaction folded undelivered records into the checkpoint:
            # restart the follower at the manifest watermark and resync
            # every replica that was behind it.
            from repro.durability import manifest as manifest_mod

            manifest = manifest_mod.read_manifest(self.directory)
            self._buffer.resync(manifest["seq"])
            for handle in self.handles:
                if handle.alive and handle.acked_seq < manifest["seq"]:
                    self._restart(handle)
            return
        except (JournalCorruptionError, OSError):
            return  # transient mid-rotation read; next round re-polls
        min_acked: int | None = None
        for handle in self.handles:
            if not handle.alive or handle.stalled or handle.promoted:
                continue
            records = self._buffer.records_after(handle.acked_seq)
            if records is None:
                self._restart(handle)
                continue
            # Bound one FRAMES message; the rest ships next round.
            records = records[:256]
            if records:
                try:
                    reply = handle.rpc(
                        {"t": MSG_FRAMES, "records": records},
                        timeout=self.config.rpc_timeout_s,
                    )
                except (ChannelClosed, TimeoutError, OSError):
                    continue
                if reply.get("t") == MSG_ACK:
                    handle.acked_seq = int(reply.get("applied_seq", 0))
                elif reply.get("t") == MSG_ERROR:
                    # A typed apply failure (stale epoch, corruption):
                    # the replica's store cannot follow this stream;
                    # restart it with a full catch-up.
                    handle.mark_dead(
                        str(reply.get("error", {}).get("message"))
                    )
            if min_acked is None or handle.acked_seq < min_acked:
                min_acked = handle.acked_seq
        if min_acked is not None:
            self._buffer.trim(min_acked)

    def _probe_round(self) -> None:
        primary_seq = self.last_committed_seq()
        for handle in self.handles:
            if handle.proc is not None and handle.proc.poll() is not None:
                handle.mark_dead(
                    f"process exited with {handle.proc.returncode}"
                )
            if not handle.alive:
                if self.config.restart_dead and not self._stop.is_set():
                    self._restart(handle)
                continue
            if handle.stalled:
                continue  # partitioned: no traffic, report goes stale
            try:
                reply = handle.rpc(
                    {"t": MSG_HEALTH, "primary_seq": primary_seq},
                    timeout=self.config.rpc_timeout_s,
                )
            except (ChannelClosed, TimeoutError, OSError):
                continue
            if reply.get("t") == MSG_HEALTH_REPORT:
                handle.last_report = HealthReport.from_dict(
                    reply.get("report", {})
                )
        if (
            not self.primary_alive
            and self.promoted_handle is None
            and self.config.auto_failover
            and not self._stop.is_set()
        ):
            try:
                self.failover()
            except (XQueryError, ChannelClosed):
                pass  # no candidate yet; next probe retries
        self._write_health_file(self._aggregate())

    # -- watermarks --------------------------------------------------------

    def last_committed_seq(self) -> int | None:
        """The write side's current watermark (None mid-failover)."""
        if self.primary_alive:
            return self.primary.journal.next_seq - 1
        promoted = self.promoted_handle
        if promoted is not None:
            return max(promoted.acked_seq, self._buffer.last_seq)
        return None

    def lag_of(self, handle: ReplicaHandle) -> int | None:
        primary_seq = self.last_committed_seq()
        if primary_seq is None:
            return None
        return max(0, primary_seq - handle.acked_seq)

    def replication_lag(self) -> dict[str, int | None]:
        """Per-replica lag watermark, the fleet's headline metric."""
        return {h.name: self.lag_of(h) for h in self.handles}

    # -- serving -----------------------------------------------------------

    def execute_write(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
    ):
        """Route an updating query to whoever currently owns the journal.

        Primary while it lives; the promoted replica after failover
        (over the channel); a transient typed
        :class:`~repro.errors.ReplicaLagError` during the failover gap.
        """
        if self.primary_alive:
            return self.primary.execute(
                query, bindings=bindings, timeout_ms=timeout_ms
            )
        promoted = self.promoted_handle
        if promoted is None:
            raise ReplicaLagError(
                "no write target: primary is down and failover has not "
                "completed",
                retry_after_ms=self.config.probe_interval_s * 1000.0,
            )
        return self.query_replica(
            promoted, query, bindings, timeout_ms=timeout_ms, write=True
        )

    def query_replica(
        self,
        handle: ReplicaHandle,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
        write: bool = False,
    ):
        """Run a query on one replica; typed errors re-raise in-process.

        Returns a :class:`~repro.cluster.router.RoutedResult`.  A dead
        channel maps to :class:`~repro.errors.ReplicaLagError`
        (transient — the supervisor restarts the replica).
        """
        from repro.cluster.router import RoutedResult

        message = {
            "t": MSG_EXEC if write else MSG_QUERY,
            "query": query,
            "bindings": bindings,
            "timeout_ms": timeout_ms,
        }
        timeout = self.config.rpc_timeout_s
        if timeout_ms is not None:
            timeout = max(timeout, timeout_ms / 1000.0 + 5.0)
        try:
            reply = handle.rpc(message, timeout=timeout)
        except (ChannelClosed, OSError) as exc:
            raise ReplicaLagError(
                f"{handle.name} is unreachable: {exc}",
                retry_after_ms=self.config.probe_interval_s * 1000.0,
            ) from exc
        except TimeoutError as exc:
            handle.mark_dead(f"rpc timeout: {exc}")
            raise ReplicaLagError(
                f"{handle.name} did not answer in time",
                retry_after_ms=self.config.probe_interval_s * 1000.0,
            ) from exc
        if reply.get("t") == MSG_ERROR:
            raise_remote(reply.get("error", {}))
        if reply.get("t") != MSG_RESULT:
            raise ReplicaLagError(
                f"{handle.name} answered {reply.get('t')!r} to a query"
            )
        return RoutedResult(
            strings=list(reply.get("strings", [])),
            xml=reply.get("xml"),
            backend=handle.name,
        )

    def read_candidates(
        self, max_lag_seq: int | None = None
    ) -> list[ReplicaHandle]:
        """Live, unstalled replicas within the staleness bound,
        freshest first."""
        bound = (
            max_lag_seq
            if max_lag_seq is not None
            else self.config.default_max_lag_seq
        )
        out: list[ReplicaHandle] = []
        for handle in self.handles:
            if not handle.alive or handle.stalled or handle.promoted:
                continue
            lag = self.lag_of(handle)
            if bound is not None and (lag is None or lag > bound):
                continue
            out.append(handle)
        out.sort(key=lambda h: -h.acked_seq)
        return out

    # -- chaos hooks -------------------------------------------------------

    def kill_replica(self, replica_id: int) -> None:
        """SIGKILL one replica process (chaos: replica death)."""
        handle = self.handles[replica_id]
        proc = handle.proc
        if proc is not None and proc.poll() is None:
            proc.kill()
        handle.mark_dead("killed by chaos")
        if self.tracer is not None:
            self.tracer.count("cluster.chaos.replica_kills")

    def stall_replica(self, replica_id: int, stalled: bool = True) -> None:
        """Open/close a partition window: the pump stops shipping to
        (and probing) the replica; its lag grows until the window
        closes and catch-up resumes over the same channel."""
        self.handles[replica_id].stalled = stalled

    def kill_primary(self) -> None:
        """Simulate primary process death (chaos: failover trigger).

        The primary engine stops being routed to and its journal handle
        is closed mid-flight — from the fleet's point of view the
        process died.  (The supervisor process itself survives: it is
        the control plane, the primary was just one engine inside it.)
        """
        self.primary_alive = False
        try:
            # Close under the store's write lock: a write already past
            # admission finishes its append first, so in-flight requests
            # still end in success or typed refusal — never a torn frame
            # or an untyped closed-handle error.
            with self.primary.engine.store.lock.write_locked():
                self.primary.journal.close()
        except OSError:
            pass
        if self.tracer is not None:
            self.tracer.count("cluster.chaos.primary_kills")

    # -- failover ----------------------------------------------------------

    def failover(self) -> ReplicaHandle:
        """Promote the freshest live replica under a bumped epoch.

        Raises :class:`~repro.errors.ReplicaLagError` when no live
        candidate exists (transient: restarts may yet produce one).
        """
        with self._failover_lock:
            if self.promoted_handle is not None:
                return self.promoted_handle
            candidates = [
                h
                for h in self.handles
                if h.alive and not h.stalled and not h.promoted
            ]
            if not candidates:
                raise ReplicaLagError(
                    "failover: no live replica to promote",
                    retry_after_ms=self.config.probe_interval_s * 1000.0,
                )
            chosen = max(candidates, key=lambda h: h.acked_seq)
            new_epoch = self.epoch + 1
            reply = chosen.rpc(
                {"t": MSG_PROMOTE, "epoch": new_epoch},
                timeout=self.config.promote_timeout_s,
            )
            if reply.get("t") == MSG_ERROR:
                raise_remote(reply.get("error", {}))
            if reply.get("t") != MSG_PROMOTED:
                raise StaleEpochError(
                    f"{chosen.name} answered {reply.get('t')!r} to "
                    "promote",
                    stale_epoch=self.epoch,
                    fence_epoch=new_epoch,
                )
            chosen.promoted = True
            chosen.acked_seq = int(reply.get("applied_seq", 0))
            chosen.epoch = new_epoch
            self.epoch = new_epoch
            self.primary_alive = False
            self.promoted_handle = chosen
            if self.tracer is not None:
                self.tracer.count("cluster.failovers")
            return chosen

    def fingerprint_of(self, handle: ReplicaHandle) -> str:
        """A replica's store digest (byte-agreement checks)."""
        reply = handle.rpc(
            {"t": MSG_FINGERPRINT}, timeout=self.config.promote_timeout_s
        )
        if reply.get("t") == MSG_ERROR:
            raise_remote(reply.get("error", {}))
        if reply.get("t") != MSG_FINGERPRINT_REPORT:
            raise ReplicaLagError(
                f"{handle.name} answered {reply.get('t')!r} to "
                "fingerprint"
            )
        return str(reply.get("sha256"))

    # -- health ------------------------------------------------------------

    def _aggregate(self) -> HealthReport:
        named: dict[str, HealthReport] = {}
        if self.primary_alive:
            named["primary"] = self.primary.health()
        else:
            role = (
                "promoted to "
                f"{self.promoted_handle.name}"
                if self.promoted_handle is not None
                else "failover pending"
            )
            named["primary"] = HealthReport(
                status=UNHEALTHY, sections={"process": {"state": role}}
            )
        primary_seq = self.last_committed_seq()
        for handle in self.handles:
            report = handle.last_report
            if not handle.alive:
                report = HealthReport(
                    status=UNHEALTHY,
                    sections={
                        "process": {
                            "state": "dead",
                            "reason": handle.last_error,
                            "restarts": handle.restarts,
                        }
                    },
                )
            elif report is None:
                report = HealthReport(sections={})
            # The supervisor's acked watermark is the authoritative lag
            # view (a stalled replica cannot self-report growing lag).
            replication = dict(report.sections.get("replication", {}))
            replication.update(
                {
                    "applied_seq": handle.acked_seq,
                    "lag_seq": self.lag_of(handle),
                    "stalled": handle.stalled,
                    "promoted": handle.promoted,
                    "restarts": handle.restarts,
                }
            )
            report.sections["replication"] = replication
            named[handle.name] = report
        fleet = aggregate_reports(named)
        fleet.sections["cluster"] = {
            "epoch": self.epoch,
            "primary_alive": self.primary_alive,
            "promoted": (
                self.promoted_handle.name
                if self.promoted_handle is not None
                else None
            ),
            "last_committed_seq": primary_seq,
            "replicas": len(self.handles),
        }
        self._last_health = fleet
        return fleet

    def health(self) -> HealthReport:
        """The fleet's aggregated health report (fresh probe views)."""
        return self._aggregate()

    def _write_health_file(self, report: HealthReport) -> None:
        """Publish the fleet report atomically (manifest.py discipline).

        Write-to-temp + fsync + ``os.replace`` + directory fsync: a
        reader racing the supervisor sees the old report or the new
        one, never a torn JSON file — and the rename itself is durable
        across a crash of the host.
        """
        path = os.path.join(self.directory, HEALTH_FILE)
        tmp = path + ".tmp"
        payload = {"format": _HEALTH_FORMAT, "report": report.to_dict()}
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            fsync_directory(self.directory)
        except OSError:  # pragma: no cover - health file is best effort
            pass

    def __repr__(self) -> str:
        return (
            f"ClusterSupervisor(directory={self.directory!r}, "
            f"epoch={self.epoch}, replicas={len(self.handles)}, "
            f"primary_alive={self.primary_alive})"
        )
