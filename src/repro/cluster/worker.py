"""The replica worker process: ``python -m repro.cluster.worker``.

One OS process per replica.  The supervisor launches this module with
an inherited socketpair fd (``--fd``, via ``Popen(pass_fds=...)``) and
drives it over the framed protocol of :mod:`repro.cluster.protocol`:

1. the supervisor sends ``init`` (module source to re-register, an
   optional crash-injection countdown for the fault tests);
2. the worker recovers its read-only view and answers ``hello`` with
   its applied watermark, witnessed epoch and pid;
3. a single-threaded request loop serves ``frames`` / ``query`` /
   ``health`` / ``promote`` / ``fingerprint`` / ``exec`` / ``shutdown``.

The loop is deliberately single-threaded: frame application and query
execution interleave at message granularity, so no store lock is
needed inside the worker and a reader can never observe a half-applied
commit group.  Typed failures cross back as ``error`` messages
(:func:`~repro.cluster.protocol.error_payload`); a dead supervisor
(EOF on the channel) exits the worker, so replicas cannot outlive
their fleet.

Exit codes: 0 clean shutdown, 1 transport loss, 2 bad invocation,
3 injected crash (the fault tests' simulated process death).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
from typing import Any

from repro.errors import XQueryError

from repro.cluster.protocol import (
    MSG_ACK,
    MSG_BYE,
    MSG_ERROR,
    MSG_EXEC,
    MSG_FINGERPRINT,
    MSG_FINGERPRINT_REPORT,
    MSG_FRAMES,
    MSG_HEALTH,
    MSG_HEALTH_REPORT,
    MSG_HELLO,
    MSG_INIT,
    MSG_PROMOTE,
    MSG_PROMOTED,
    MSG_QUERY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    ChannelClosed,
    FrameChannel,
    error_payload,
)
from repro.cluster.replica import ReplicaApplier
from repro.durability.faults import (
    CRASH_MID_REPLAY,
    FaultInjector,
    InjectedCrash,
)


def _result_payload(result: Any) -> dict:
    """Flatten a query result for the wire (strings + serialized XML)."""
    try:
        xml: str | None = result.serialize()
    except XQueryError:  # pragma: no cover - non-serializable items
        xml = None
    return {"t": MSG_RESULT, "strings": result.strings(), "xml": xml}


def build_applier(init: dict, directory: str) -> ReplicaApplier:
    """Construct the replica state machine an ``init`` message asks for.

    Shared by the worker process and the deterministic simulator's
    replica hosts, so both start a replica the exact same way
    (module re-registration, crash-countdown injection included).
    """
    faults: FaultInjector | None = None
    crash_after = init.get("crash_after_frames")
    if isinstance(crash_after, int) and crash_after > 0:
        faults = FaultInjector()
        faults.arm(CRASH_MID_REPLAY, after=crash_after)
    return ReplicaApplier(
        directory,
        module_source=init.get("module"),
        faults=faults,
    )


def hello_payload(applier: ReplicaApplier, replica_id: int) -> dict:
    """The ``hello`` handshake reply for a freshly recovered applier."""
    return {
        "t": MSG_HELLO,
        "id": replica_id,
        "applied_seq": applier.applied_seq,
        "epoch": applier.epoch,
        "pid": os.getpid(),
    }


def handle_message(
    applier: ReplicaApplier, message: dict
) -> tuple[dict, bool]:
    """Dispatch one protocol message; returns ``(reply, done)``.

    The single definition of replica request semantics: the worker's
    socket loop and the simulator's replica host both feed messages
    through here, so the simulated cluster cannot drift from the real
    one.  Typed failures become ``error`` replies (a failed frame
    batch drops its half-received group first, so a re-ship from the
    ACK watermark starts clean); :class:`InjectedCrash` propagates —
    it is a simulated process death, not a reply.
    """
    kind = message.get("t")
    try:
        if kind == MSG_FRAMES:
            watermark = applier.apply_records(message.get("records", []))
            return {"t": MSG_ACK, "applied_seq": watermark}, False
        if kind == MSG_QUERY:
            result = applier.execute(
                message.get("query", ""),
                bindings=message.get("bindings"),
                timeout_ms=message.get("timeout_ms"),
            )
            return _result_payload(result), False
        if kind == MSG_EXEC:
            if not applier.promoted:
                raise XQueryError(
                    "replica has not been promoted; writes must go "
                    "to the primary",
                    code="REPR0010",
                )
            result = applier.execute(
                message.get("query", ""),
                bindings=message.get("bindings"),
                timeout_ms=message.get("timeout_ms"),
            )
            return _result_payload(result), False
        if kind == MSG_HEALTH:
            report = applier.health(message.get("primary_seq"))
            return {"t": MSG_HEALTH_REPORT, "report": report.to_dict()}, False
        if kind == MSG_PROMOTE:
            watermark = applier.promote(int(message["epoch"]))
            return {"t": MSG_PROMOTED, "applied_seq": watermark}, False
        if kind == MSG_FINGERPRINT:
            return {
                "t": MSG_FINGERPRINT_REPORT,
                "sha256": applier.fingerprint(),
                "applied_seq": applier.applied_seq,
            }, False
        if kind == MSG_SHUTDOWN:
            applier.close()
            return {"t": MSG_BYE}, True
        return {
            "t": MSG_ERROR,
            "error": {
                "code": "REPR0000",
                "message": f"unknown message type {kind!r}",
            },
        }, False
    except XQueryError as exc:
        if kind == MSG_FRAMES:
            applier.reset_pending()
        return {"t": MSG_ERROR, "error": error_payload(exc)}, False


def serve(channel: FrameChannel, replica_id: int, directory: str) -> int:
    """The worker request loop (factored out for in-process tests)."""
    init = channel.recv(None)
    if init.get("t") != MSG_INIT:
        channel.send(
            {
                "t": MSG_ERROR,
                "error": {"code": "REPR0000", "message": "expected init"},
            }
        )
        return 2
    applier = build_applier(init, directory)
    channel.send(hello_payload(applier, replica_id))
    while True:
        message = channel.recv(None)
        reply, done = handle_message(applier, message)
        channel.send(reply)
        if done:
            return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="repro cluster replica worker (supervisor-launched)",
    )
    parser.add_argument("--dir", required=True, help="durable directory")
    parser.add_argument("--id", type=int, required=True, help="replica id")
    parser.add_argument(
        "--fd",
        type=int,
        required=True,
        help="inherited socketpair file descriptor to the supervisor",
    )
    args = parser.parse_args(argv)
    try:
        sock = socket.socket(fileno=args.fd)
    except OSError as exc:
        print(f"worker: cannot adopt fd {args.fd}: {exc}", file=sys.stderr)
        return 2
    channel = FrameChannel(sock)
    try:
        return serve(channel, args.id, args.dir)
    except ChannelClosed:
        return 1  # the supervisor died; a replica must not outlive it
    except InjectedCrash:
        return 3  # simulated process death (fault tests)
    finally:
        channel.close()


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
