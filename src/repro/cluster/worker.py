"""The replica worker process: ``python -m repro.cluster.worker``.

One OS process per replica.  The supervisor launches this module with
an inherited socketpair fd (``--fd``, via ``Popen(pass_fds=...)``) and
drives it over the framed protocol of :mod:`repro.cluster.protocol`:

1. the supervisor sends ``init`` (module source to re-register, an
   optional crash-injection countdown for the fault tests);
2. the worker recovers its read-only view and answers ``hello`` with
   its applied watermark, witnessed epoch and pid;
3. a single-threaded request loop serves ``frames`` / ``query`` /
   ``health`` / ``promote`` / ``fingerprint`` / ``exec`` / ``shutdown``.

The loop is deliberately single-threaded: frame application and query
execution interleave at message granularity, so no store lock is
needed inside the worker and a reader can never observe a half-applied
commit group.  Typed failures cross back as ``error`` messages
(:func:`~repro.cluster.protocol.error_payload`); a dead supervisor
(EOF on the channel) exits the worker, so replicas cannot outlive
their fleet.

Exit codes: 0 clean shutdown, 1 transport loss, 2 bad invocation,
3 injected crash (the fault tests' simulated process death).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
from typing import Any

from repro.errors import XQueryError

from repro.cluster.protocol import (
    MSG_ACK,
    MSG_BYE,
    MSG_ERROR,
    MSG_EXEC,
    MSG_FINGERPRINT,
    MSG_FINGERPRINT_REPORT,
    MSG_FRAMES,
    MSG_HEALTH,
    MSG_HEALTH_REPORT,
    MSG_HELLO,
    MSG_INIT,
    MSG_PROMOTE,
    MSG_PROMOTED,
    MSG_QUERY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    ChannelClosed,
    FrameChannel,
    error_payload,
)
from repro.cluster.replica import ReplicaApplier
from repro.durability.faults import (
    CRASH_MID_REPLAY,
    FaultInjector,
    InjectedCrash,
)


def _result_payload(result: Any) -> dict:
    """Flatten a query result for the wire (strings + serialized XML)."""
    try:
        xml: str | None = result.serialize()
    except XQueryError:  # pragma: no cover - non-serializable items
        xml = None
    return {"t": MSG_RESULT, "strings": result.strings(), "xml": xml}


def serve(channel: FrameChannel, replica_id: int, directory: str) -> int:
    """The worker request loop (factored out for in-process tests)."""
    init = channel.recv(None)
    if init.get("t") != MSG_INIT:
        channel.send(
            {
                "t": MSG_ERROR,
                "error": {"code": "REPR0000", "message": "expected init"},
            }
        )
        return 2
    faults: FaultInjector | None = None
    crash_after = init.get("crash_after_frames")
    if isinstance(crash_after, int) and crash_after > 0:
        faults = FaultInjector()
        faults.arm(CRASH_MID_REPLAY, after=crash_after)
    applier = ReplicaApplier(
        directory,
        module_source=init.get("module"),
        faults=faults,
    )
    channel.send(
        {
            "t": MSG_HELLO,
            "id": replica_id,
            "applied_seq": applier.applied_seq,
            "epoch": applier.epoch,
            "pid": os.getpid(),
        }
    )
    while True:
        message = channel.recv(None)
        kind = message.get("t")
        try:
            if kind == MSG_FRAMES:
                watermark = applier.apply_records(message.get("records", []))
                channel.send({"t": MSG_ACK, "applied_seq": watermark})
            elif kind == MSG_QUERY:
                result = applier.execute(
                    message.get("query", ""),
                    bindings=message.get("bindings"),
                    timeout_ms=message.get("timeout_ms"),
                )
                channel.send(_result_payload(result))
            elif kind == MSG_EXEC:
                if not applier.promoted:
                    raise XQueryError(
                        "replica has not been promoted; writes must go "
                        "to the primary",
                        code="REPR0010",
                    )
                result = applier.execute(
                    message.get("query", ""),
                    bindings=message.get("bindings"),
                    timeout_ms=message.get("timeout_ms"),
                )
                channel.send(_result_payload(result))
            elif kind == MSG_HEALTH:
                report = applier.health(message.get("primary_seq"))
                channel.send(
                    {"t": MSG_HEALTH_REPORT, "report": report.to_dict()}
                )
            elif kind == MSG_PROMOTE:
                watermark = applier.promote(int(message["epoch"]))
                channel.send(
                    {"t": MSG_PROMOTED, "applied_seq": watermark}
                )
            elif kind == MSG_FINGERPRINT:
                channel.send(
                    {
                        "t": MSG_FINGERPRINT_REPORT,
                        "sha256": applier.fingerprint(),
                        "applied_seq": applier.applied_seq,
                    }
                )
            elif kind == MSG_SHUTDOWN:
                channel.send({"t": MSG_BYE})
                applier.close()
                return 0
            else:
                channel.send(
                    {
                        "t": MSG_ERROR,
                        "error": {
                            "code": "REPR0000",
                            "message": f"unknown message type {kind!r}",
                        },
                    }
                )
        except XQueryError as exc:
            # A failed frame batch leaves a half-received group pending;
            # drop it so a re-ship from the ACK watermark starts clean.
            if kind == MSG_FRAMES:
                applier.reset_pending()
            channel.send({"t": MSG_ERROR, "error": error_payload(exc)})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="repro cluster replica worker (supervisor-launched)",
    )
    parser.add_argument("--dir", required=True, help="durable directory")
    parser.add_argument("--id", type=int, required=True, help="replica id")
    parser.add_argument(
        "--fd",
        type=int,
        required=True,
        help="inherited socketpair file descriptor to the supervisor",
    )
    args = parser.parse_args(argv)
    try:
        sock = socket.socket(fileno=args.fd)
    except OSError as exc:
        print(f"worker: cannot adopt fd {args.fd}: {exc}", file=sys.stderr)
        return 2
    channel = FrameChannel(sock)
    try:
        return serve(channel, args.id, args.dir)
    except ChannelClosed:
        return 1  # the supervisor died; a replica must not outlive it
    except InjectedCrash:
        return 3  # simulated process death (fault tests)
    finally:
        channel.close()


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
