"""Fencing epochs: making failover safe against a resurrected primary.

Promotion has a classic split-brain hazard: the old primary is declared
dead, a replica is promoted, and then the "dead" process wakes up (a GC
pause, a stalled disk, a debugger) and keeps appending to the journal —
interleaving two writers' frames in one file.  The cluster prevents
that with a monotone **fencing epoch** persisted next to the journal:

* every journal frame carries the epoch it was written under (``"ep"``
  in the payload — see :class:`~repro.durability.journal.Journal`);
* the ``EPOCH`` file in the durable directory publishes the highest
  epoch ever granted.  It only moves forward, through the same
  ``.tmp`` + ``os.replace`` + directory-fsync protocol the manifest
  uses, so a crash mid-advance leaves the old epoch, never garbage;
* :func:`make_fence` builds the check the journal runs **before every
  append**: when the published epoch exceeds the writer's own, the
  write is refused with a typed
  :class:`~repro.errors.StaleEpochError` (REPR0009) — permanently
  fatal, never retried (see :data:`repro.resilience.retry.NEVER_RETRY`).

Promotion order matters and is enforced here: the supervisor advances
the epoch *first* (fencing the old primary out), and only then lets the
promoted replica recover and reopen the journal under the new epoch.
:func:`advance_epoch` refuses to move the file backwards, so two racing
promotions cannot both win — the second one dies with the same typed
error a deposed primary gets.
"""

from __future__ import annotations

import json
import os
from typing import Callable

from repro.errors import DurabilityError, StaleEpochError

from repro.durability.journal import fsync_directory

EPOCH_NAME = "EPOCH"

_FORMAT = "repro.cluster.epoch/v1"


def _epoch_path(directory: str) -> str:
    return os.path.join(directory, EPOCH_NAME)


def read_epoch(directory: str) -> int:
    """The published fencing epoch for *directory* (0 when none has
    ever been granted — a single-process engine never writes one)."""
    try:
        with open(_epoch_path(directory), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return 0
    except (OSError, ValueError) as exc:
        raise DurabilityError(
            f"unreadable epoch file in {directory!r}: {exc}"
        ) from exc
    epoch = payload.get("epoch") if isinstance(payload, dict) else None
    if not isinstance(epoch, int) or epoch < 0:
        raise DurabilityError(
            f"malformed epoch file in {directory!r}: {payload!r}"
        )
    return epoch


def advance_epoch(directory: str, epoch: int) -> int:
    """Publish *epoch* as the new fencing epoch (the promotion grant).

    Strictly monotone: an attempt to publish an epoch at or below the
    current one loses the race and raises
    :class:`~repro.errors.StaleEpochError` — exactly one promotion can
    win any given epoch.  Durable before return (tmp + replace +
    directory fsync).  Returns the published epoch.
    """
    current = read_epoch(directory)
    if epoch <= current:
        raise StaleEpochError(
            f"cannot advance fencing epoch to {epoch}: epoch {current} "
            "is already published (a newer promotion won)",
            stale_epoch=epoch,
            fence_epoch=current,
        )
    path = _epoch_path(directory)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"format": _FORMAT, "epoch": epoch}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(directory)
    return epoch


def check_fence(directory: str, epoch: int) -> None:
    """Refuse the caller when its *epoch* has been superseded."""
    published = read_epoch(directory)
    if published > epoch:
        raise StaleEpochError(
            f"fencing epoch {published} has been published; writes under "
            f"epoch {epoch} are refused (this process was deposed)",
            stale_epoch=epoch,
            fence_epoch=published,
        )


def make_fence(directory: str, epoch: int) -> Callable[[], None]:
    """The per-append fence for a journal owned under *epoch*.

    Installed as ``journal.fence``; runs before every append.  One
    ``stat``-and-read of a tiny file per commit — cheap next to the
    fsync that follows, and it turns a resurrected old primary's first
    post-failover write into a typed refusal instead of split-brain.
    """

    def fence() -> None:
        check_fence(directory, epoch)

    return fence
