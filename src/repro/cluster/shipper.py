"""The shipping buffer: one journal tail-follow feeding many replicas.

The supervisor reads the journal exactly once per poll
(:class:`~repro.durability.journal.JournalFollower`) and fans the
records out to replicas at different watermarks through a bounded
in-memory window:

* records enter the window in strict sequence order (the follower
  already enforces contiguity and holds back unterminated groups);
* :meth:`records_after` slices the window for one replica's ACK
  watermark — or returns None when the replica has fallen *out* of the
  window (its next record was evicted), in which case the supervisor
  restarts it with a full from-disk catch-up rather than shipping a
  gap;
* :meth:`trim` evicts everything at or below the slowest live
  replica's watermark, and :attr:`capacity` bounds the window against
  a stalled replica pinning unbounded memory — the same
  restart-with-resync path handles a replica that out-stalls the
  window.

A checkpoint compaction that folds undelivered records into the
checkpoint surfaces as
:class:`~repro.durability.journal.FollowerResyncRequired` from
:meth:`poll`; the supervisor answers it by restarting the follower at
the manifest watermark and resyncing the replicas that were behind it.
"""

from __future__ import annotations

from collections import deque

from repro.durability.journal import JournalFollower


class ShipBuffer:
    """A bounded, seq-contiguous window over the journal tail."""

    def __init__(
        self,
        directory: str,
        *,
        after_seq: int = 0,
        capacity: int = 8192,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.directory = directory
        self.capacity = capacity
        self.follower = JournalFollower(directory, after_seq=after_seq)
        self._window: deque[dict] = deque()
        #: Sequence number of the first record still in the window
        #: (meaningful only when the window is non-empty).
        self.first_seq = after_seq + 1

    def __len__(self) -> int:
        return len(self._window)

    @property
    def last_seq(self) -> int:
        """The highest sequence number ever pulled from the journal."""
        return self.follower.watermark

    def poll(self) -> int:
        """Pull newly durable records into the window; returns count.

        Propagates :class:`FollowerResyncRequired` /
        :class:`~repro.errors.JournalCorruptionError` from the
        follower untouched — the supervisor owns the recovery decision.
        """
        records = self.follower.poll()
        for record in records:
            self._window.append(record)
        while len(self._window) > self.capacity:
            evicted = self._window.popleft()
            self.first_seq = evicted["seq"] + 1
        if self._window:
            self.first_seq = self._window[0]["seq"]
        return len(records)

    def resync(self, after_seq: int) -> None:
        """Restart the underlying follower (post-compaction resync)."""
        self.follower = JournalFollower(self.directory, after_seq=after_seq)
        self._window.clear()
        self.first_seq = after_seq + 1

    def records_after(self, acked_seq: int) -> list[dict] | None:
        """The records a replica acked through *acked_seq* still needs.

        None means the replica's next record was evicted from the
        window (or predates it): frame-granular shipping cannot
        continue and the replica must resync from disk.
        """
        if acked_seq >= self.last_seq:
            return []
        if not self._window or acked_seq + 1 < self._window[0]["seq"]:
            return None
        return [r for r in self._window if r["seq"] > acked_seq]

    def trim(self, min_acked_seq: int) -> None:
        """Evict records every live replica has acknowledged."""
        while self._window and self._window[0]["seq"] <= min_acked_seq:
            self._window.popleft()
        if self._window:
            self.first_seq = self._window[0]["seq"]
        else:
            self.first_seq = min_acked_seq + 1

    def __repr__(self) -> str:
        return (
            f"ShipBuffer(window={len(self._window)}, "
            f"first_seq={self.first_seq}, last_seq={self.last_seq})"
        )
