"""Pending update requests, update lists (Δ) and their application.

Section 3.2 of the paper:

* an *update request* is a tuple ``opname(par1, ..., parn)`` whose
  application is a partial function from stores to stores;
* an *update list* Δ is an ordered list of requests, collected during the
  evaluation inside a ``snap`` scope and applied when the scope closes;
* application supports three semantics — **ordered**, **nondeterministic**
  and **conflict-detection** — chosen per ``snap``.

Insert positions are *symbolic* (first/last/before/after a target node) and
resolve against the store **at application time**.  This realizes the
paper's Section 3.4 nested-snap example: with

    snap ordered { insert {<a/>} into $x,
                   snap { insert {<b/>} into $x },
                   insert {<c/>} into $x }

the inner snap applies ``<b/>`` while ``<a/>`` is still pending, and the
outer snap then *appends* ``<a/>`` and ``<c/>``, producing
``<b/><a/><c/>`` "in this order" — which requires ``as last`` to mean
"last at application time", exactly as in the later W3C XQuery Update
Facility that this paper influenced.

One deliberate generalization over the paper's Fig. 2: ``delete {Expr}``
accepts a node *sequence* and emits one request per node — the paper's own
use case (``snap delete $log/logentry``) requires this.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.errors import ExecutionControlError, UpdateApplicationError
from repro.xdm.store import NodeKind, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.journal import Journal
    from repro.obs.tracer import Tracer

# Group tokens tie together the request pair a single `replace` emits
# (Fig. 2: insert-after + delete of the same node).  The conflict checker
# exempts a pair sharing a group from the anchor-vs-delete rule — the pair
# is one logical write.  Tokens are engine-global and never reused.
_group_counter = itertools.count(1)


def next_group() -> int:
    """A fresh request-group token (see module docstring)."""
    return next(_group_counter)

# Symbolic insert positions.
INSERT_FIRST = "first"
INSERT_LAST = "last"
INSERT_BEFORE = "before"
INSERT_AFTER = "after"

_VALID_POSITIONS = (INSERT_FIRST, INSERT_LAST, INSERT_BEFORE, INSERT_AFTER)


class ApplySemantics(enum.Enum):
    """The three update-application semantics of Section 3.2."""

    ORDERED = "ordered"
    NONDETERMINISTIC = "nondeterministic"
    CONFLICT_DETECTION = "conflict-detection"

    @staticmethod
    def from_keyword(keyword: str | None) -> "ApplySemantics":
        """Map the optional snap keyword to a semantics (default ordered)."""
        if keyword is None:
            return ApplySemantics.ORDERED
        return ApplySemantics(keyword)


@dataclass(frozen=True)
class InsertRequest:
    """insert(nodeseq, position, target).

    For ``first``/``last`` the target is the future parent; for
    ``before``/``after`` it is the sibling anchor whose parent is resolved
    at application time.  Preconditions (checked on apply, per the paper's
    "partial function" reading): inserted nodes must be parentless, the
    parent must accept children, a sibling anchor must have a parent.
    """

    nodes: tuple[int, ...]
    position: str
    target: int
    group: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.position not in _VALID_POSITIONS:
            raise UpdateApplicationError(
                f"invalid insert position {self.position!r}"
            )

    def apply(self, store: Store) -> None:
        if self.position in (INSERT_FIRST, INSERT_LAST):
            parent = self.target
        else:
            parent = store.parent(self.target)
            if parent is None:
                raise UpdateApplicationError(
                    f"insert {self.position} anchor #{self.target} has no "
                    "parent at application time"
                )
        regular = []
        for node in self.nodes:
            if store.kind(node) is NodeKind.ATTRIBUTE:
                store.set_attribute(parent, node)
            else:
                regular.append(node)
        if not regular:
            return
        if self.position == INSERT_LAST:
            for node in regular:
                store.append_child(parent, node)
        elif self.position == INSERT_FIRST:
            for index, node in enumerate(regular):
                store.insert_child_at(parent, index, node)
        elif self.position == INSERT_AFTER:
            anchor = self.target
            for node in regular:
                store.insert_after(parent, anchor, node)
                anchor = node
        else:  # before
            for node in regular:
                store.insert_before(parent, self.target, node)

    def describe(self) -> str:
        return f"insert({list(self.nodes)} {self.position} #{self.target})"


@dataclass(frozen=True)
class DeleteRequest:
    """delete(node): detach *node* from its parent (Section 3.1)."""

    node: int
    group: Optional[int] = field(default=None, compare=False)

    def apply(self, store: Store) -> None:
        store.detach(self.node)

    def describe(self) -> str:
        return f"delete(#{self.node})"


@dataclass(frozen=True)
class SetValueRequest:
    """replace value of(node, text): overwrite the *content* of a node.

    An extension in the style of the later XQuery Update Facility: for a
    text/attribute/comment/PI node the string value is replaced; for an
    element (or document), its children are detached and replaced by one
    text node (created at application time).
    """

    node: int
    text: str

    def apply(self, store: Store) -> None:
        kind = store.kind(self.node)
        if kind in (NodeKind.ELEMENT, NodeKind.DOCUMENT):
            for child in store.children(self.node):
                store.detach(child)
            if self.text:
                store.append_child(self.node, store.create_text(self.text))
            return
        store.set_value(self.node, self.text)

    def describe(self) -> str:
        return f"set-value(#{self.node} to {self.text!r})"


@dataclass(frozen=True)
class RenameRequest:
    """rename(node, name)."""

    node: int
    name: str

    def apply(self, store: Store) -> None:
        store.rename(self.node, self.name)

    def describe(self) -> str:
        return f"rename(#{self.node} to {self.name!r})"


UpdateRequest = Union[
    InsertRequest, DeleteRequest, RenameRequest, SetValueRequest
]

# Δ is a plain Python list; order is the one the semantics rules specify.
UpdateList = list


def apply_one(store: Store, request: UpdateRequest) -> None:
    """Apply a single update request (raises on precondition violation)."""
    request.apply(store)


def apply_update_list(
    store: Store,
    delta: UpdateList,
    semantics: ApplySemantics = ApplySemantics.ORDERED,
    permutation: list[int] | None = None,
    atomic: bool = False,
    tracer: "Tracer | None" = None,
    journal: "Journal | None" = None,
    control=None,
    txn_log=None,
) -> None:
    """Apply Δ to the store under the chosen semantics.

    * ORDERED — requests are applied exactly in Δ order.
    * NONDETERMINISTIC — the engine may pick any order; this implementation
      applies Δ order by default, or the caller-supplied *permutation*
      (used by tests to exercise the semantics' full latitude).
    * CONFLICT_DETECTION — first proves Δ conflict-free (linear time, two
      hash tables — Section 4.1); raises
      :class:`~repro.errors.ConflictError` otherwise, then applies in any
      order (Δ order here, since order is immaterial once verified).

    With ``atomic=True`` a precondition failure mid-application rolls the
    store back to its pre-Δ state before re-raising — snap as a
    failure-containment boundary (an extension the paper's Section 5
    sketches for its full version).

    With a *journal*, the applied requests — in their resolved order,
    after conflict checking — are appended as one durable record before
    this function returns (snap as the unit of durability; see
    :mod:`repro.durability.journal`).  A Δ that fails a precondition is
    never journaled, and a journal append failure rolls the store back
    (when ``atomic``) and raises
    :class:`~repro.errors.DurabilityError`, so the in-memory store
    never acknowledges a snap the disk does not hold.

    With a *control* (an
    :class:`~repro.concurrent.control.ExecutionControl`), application
    stays interruptible even inside a huge Δ: the conflict scan polls it
    unconditionally (pure reads), and the apply loop polls it when the
    rollback checkpoint exists — a mid-apply interrupt then restores the
    pre-Δ store, preserving the all-or-nothing discipline.  Without a
    checkpoint the loop never polls (an interrupt there would half-apply).
    The control's admission guard, when present, bounds the Δ length
    before anything applies and the journal's circuit breaker, when
    present, refuses the commit with a typed
    :class:`~repro.errors.CircuitOpenError` while the durability path is
    known-bad — both refusals leave the store untouched.

    With a *txn_log* (the engine's
    :class:`~repro.txn.TransactionManager`), a fully applied non-empty Δ
    is published — in its resolved order — as one committed mini-
    transaction, so open MVCC transactions validate against direct
    (autocommit) writes too.  Nothing is published for a failed or
    rolled-back Δ.
    """
    from repro.semantics.conflicts import check_conflict_free

    delta = list(delta)  # accept both plain lists and Delta ropes
    if tracer is not None:
        # Every snap closure lands here, so this is *the* place the
        # "pending-update-list length per snap" histogram is fed.
        tracer.count("snap.count")
        tracer.observe("snap.pending_updates", len(delta))
    if control is not None and delta:
        guard = control.guard
        if guard is not None:
            # Admission bound on the pending-update-list length; a
            # refusal discards the Δ whole, store untouched.
            guard.check_delta(len(delta))
    if semantics is ApplySemantics.CONFLICT_DETECTION:
        check_conflict_free(delta, tracer=tracer, control=control)
    order = range(len(delta))
    if permutation is not None:
        if semantics is ApplySemantics.ORDERED:
            raise UpdateApplicationError(
                "ordered semantics does not permit reordering Δ"
            )
        if sorted(permutation) != list(range(len(delta))):
            raise UpdateApplicationError("invalid permutation of Δ")
        order = permutation  # type: ignore[assignment]
    breaker = journal.breaker if journal is not None else None
    if breaker is not None and delta:
        # Degraded read-only mode: while the durability circuit is open
        # a non-empty Δ is refused before anything touches the store.
        # Reads carry an empty Δ and never reach this gate.
        breaker.admit()
    entry = None
    if journal is not None and delta:
        # Built pre-apply: the entry captures the payload subtrees and
        # the id watermark as the replayed ops will find them.
        entry = journal.build_entry(
            store, [delta[index] for index in order], semantics
        )
    checkpoint = store.checkpoint() if atomic and delta else None
    indexes = getattr(store, "_indexes", None)
    maintained_before = indexes.maintained if indexes is not None else 0
    try:
        if checkpoint is None or control is None:
            for index in order:
                delta[index].apply(store)
        else:
            # Interruptible application: with a rollback checkpoint a
            # fired deadline/cancel/budget mid-Δ restores the pre-Δ
            # store, so polling here cannot half-apply a snap.
            for position, index in enumerate(order):
                if position % 64 == 0:
                    control.check()
                delta[index].apply(store)
    except UpdateApplicationError:
        # A failed snap journals nothing: the entry is discarded whole.
        if checkpoint is not None:
            store.restore(checkpoint)
        if breaker is not None and delta:
            # The journal was never exercised; a half-open probe slot
            # must not stay reserved for an outcome that never comes.
            breaker.release_probe()
        raise
    except ExecutionControlError:
        # Only reachable from the polling loop, which requires the
        # checkpoint: the Δ is un-applied whole, never half-applied.
        store.restore(checkpoint)
        if breaker is not None and delta:
            breaker.release_probe()
        raise
    if tracer is not None and indexes is not None:
        # O(|Δ|) incremental index maintenance done inside this snap —
        # the number the "no rebuild on the write path" claim rests on.
        tracer.observe(
            "index.maintained_per_snap",
            indexes.maintained - maintained_before,
        )
    if entry is not None:
        try:
            journal.commit(entry, store)
        except Exception as exc:
            from repro.errors import DurabilityError, StaleEpochError

            if isinstance(exc, StaleEpochError):
                # A deposed primary's fenced append: un-apply so the
                # dead engine's memory does not silently diverge, and
                # let the typed refusal through unwrapped.
                if checkpoint is not None:
                    store.restore(checkpoint)
                raise
            if not isinstance(exc, OSError):
                raise
            # The append failed but the process lives: un-apply (when we
            # can) so memory does not run ahead of disk, and surface a
            # typed error either way.
            if checkpoint is not None:
                store.restore(checkpoint)
            if breaker is not None:
                breaker.record_failure(f"journal append failed: {exc}")
            raise DurabilityError(
                f"journal append failed: {exc}"
                + ("" if checkpoint is not None else "; the in-memory "
                   "store kept the snap (atomic_snaps was off)")
            ) from exc
        if breaker is not None:
            breaker.record_success()
    elif breaker is not None and delta:
        # Journal present but entry None cannot happen for a non-empty
        # Δ today; keep the probe accounting robust regardless.
        breaker.release_probe()
    if txn_log is not None and delta:
        # The Δ is fully applied (and journaled when durable): publish it
        # for OCC validation by open transactions.
        txn_log.record_applied([delta[index] for index in order])
