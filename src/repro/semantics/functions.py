"""The built-in function library (fn:*).

Every built-in is *pure*: it returns a value and produces no update
requests, so built-in calls never contribute to Δ (the paper's Section 5
"updating flag" discussion only concerns user functions).

Functions are registered under their unprefixed local names; the registry
also accepts the ``fn:`` prefix.  The set covers everything the paper's use
cases, the XMark-style workloads and the test-suite need.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING

from repro.errors import CardinalityError, DynamicError, FunctionError, TypeError_
from repro.semantics.context import DynamicContext, FunctionRegistry
from repro.xdm.compare import atomic_equal, compare_atomic, deep_equal
from repro.xdm.nodes import Node
from repro.xdm.values import (
    XS_BOOLEAN,
    XS_DOUBLE,
    XS_INTEGER,
    XS_STRING,
    XS_UNTYPED,
    AtomicValue,
    Sequence,
    atomize,
    atomize_optional,
    cast_to_number,
    effective_boolean_value,
    is_numeric,
    item_string,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.evaluator import Evaluator


def default_registry() -> FunctionRegistry:
    """A registry populated with all built-ins."""
    registry = FunctionRegistry()
    for (name, arity), fn in _BUILTINS.items():
        registry.register_builtin(name, arity, fn)
    for name, fn in _VARIADIC.items():
        registry.register_variadic_builtin(name, fn)
    return registry


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _one_string(args: list[Sequence], index: int = 0, default: str = "") -> str:
    seq = args[index]
    if not seq:
        return default
    av = atomize_optional(seq, "string argument")
    return av.lexical() if av is not None else default


def _optional_number(seq: Sequence) -> float | None:
    av = atomize_optional(seq, "numeric argument")
    if av is None:
        return None
    return float(cast_to_number(av).value)


def _context_node(context: DynamicContext, name: str) -> Node:
    item = context.require_context_item()
    if not isinstance(item, Node):
        raise TypeError_(f"fn:{name}() requires a node context item")
    return item


def _item_or_context(
    args: list[Sequence], context: DynamicContext, name: str
) -> Node | None:
    if args:
        seq = args[0]
        if not seq:
            return None
        if len(seq) != 1 or not isinstance(seq[0], Node):
            raise TypeError_(f"fn:{name}() requires a single node")
        return seq[0]
    return _context_node(context, name)


# ----------------------------------------------------------------------
# Accessors / general
# ----------------------------------------------------------------------

def fn_count(ev: "Evaluator", ctx: DynamicContext, args: list[Sequence]) -> Sequence:
    return [AtomicValue.integer(len(args[0]))]


def fn_empty(ev, ctx, args):
    return [AtomicValue.boolean(not args[0])]


def fn_exists(ev, ctx, args):
    return [AtomicValue.boolean(bool(args[0]))]


def fn_not(ev, ctx, args):
    return [AtomicValue.boolean(not effective_boolean_value(args[0]))]


def fn_boolean(ev, ctx, args):
    return [AtomicValue.boolean(effective_boolean_value(args[0]))]


def fn_true(ev, ctx, args):
    return [AtomicValue.boolean(True)]


def fn_false(ev, ctx, args):
    return [AtomicValue.boolean(False)]


def fn_data(ev, ctx, args):
    return list(atomize(args[0]))


def fn_string(ev, ctx, args):
    if args:
        seq = args[0]
        if not seq:
            return [AtomicValue.string("")]
        if len(seq) != 1:
            raise CardinalityError("fn:string() requires at most one item")
        return [AtomicValue.string(item_string(seq[0]))]
    item = ctx.require_context_item()
    return [AtomicValue.string(item_string(item))]


def fn_number(ev, ctx, args):
    seq = args[0] if args else [ctx.require_context_item()]
    av = atomize_optional(seq, "fn:number argument")
    if av is None:
        return [AtomicValue.double(float("nan"))]
    try:
        return [AtomicValue.double(float(cast_to_number(av).value))]
    except (TypeError_, ValueError):
        return [AtomicValue.double(float("nan"))]


def fn_position(ev, ctx, args):
    if ctx.size == 0:
        raise DynamicError("fn:position() used outside a focus")
    return [AtomicValue.integer(ctx.position)]


def fn_last(ev, ctx, args):
    if ctx.size == 0:
        raise DynamicError("fn:last() used outside a focus")
    return [AtomicValue.integer(ctx.size)]


def fn_error(ev, ctx, args):
    message = _one_string(args) if args else "error raised by fn:error()"
    raise DynamicError(message, code="FOER0000")


def fn_trace(ev, ctx, args):
    label = _one_string(args, 1) if len(args) > 1 else ""
    rendered = ", ".join(
        item_string(item) for item in args[0]
    )
    ev.trace_sink(f"{label}{': ' if label else ''}{rendered}")
    return list(args[0])


# ----------------------------------------------------------------------
# Node functions
# ----------------------------------------------------------------------

def fn_name(ev, ctx, args):
    node = _item_or_context(args, ctx, "name")
    if node is None:
        return [AtomicValue.string("")]
    return [AtomicValue.string(node.name or "")]


def fn_local_name(ev, ctx, args):
    node = _item_or_context(args, ctx, "local-name")
    if node is None:
        return [AtomicValue.string("")]
    name = node.name or ""
    return [AtomicValue.string(name.split(":")[-1])]


def fn_node_name(ev, ctx, args):
    node = _item_or_context(args, ctx, "node-name")
    if node is None or node.name is None:
        return []
    return [AtomicValue.string(node.name)]


def fn_root(ev, ctx, args):
    node = _item_or_context(args, ctx, "root")
    if node is None:
        return []
    return [node.root]


def fn_string_length(ev, ctx, args):
    if args:
        return [AtomicValue.integer(len(_one_string(args)))]
    item = ctx.require_context_item()
    return [AtomicValue.integer(len(item_string(item)))]


# ----------------------------------------------------------------------
# Strings
# ----------------------------------------------------------------------

def fn_concat(ev, ctx, args):
    parts = []
    for seq in args:
        av = atomize_optional(seq, "fn:concat argument")
        if av is not None:
            parts.append(av.lexical())
    return [AtomicValue.string("".join(parts))]


def fn_string_join(ev, ctx, args):
    separator = _one_string(args, 1) if len(args) > 1 else ""
    parts = [av.lexical() for av in atomize(args[0])]
    return [AtomicValue.string(separator.join(parts))]


def fn_substring(ev, ctx, args):
    text = _one_string(args)
    start = _optional_number(args[1])
    if start is None:
        return [AtomicValue.string("")]
    begin = int(round(start)) - 1
    if len(args) > 2:
        length = _optional_number(args[2])
        if length is None:
            return [AtomicValue.string("")]
        end = begin + int(round(length))
    else:
        end = len(text)
    begin = max(begin, 0)
    return [AtomicValue.string(text[begin:max(end, begin)])]


def fn_contains(ev, ctx, args):
    return [AtomicValue.boolean(_one_string(args, 1) in _one_string(args, 0))]


def fn_starts_with(ev, ctx, args):
    return [
        AtomicValue.boolean(_one_string(args, 0).startswith(_one_string(args, 1)))
    ]


def fn_ends_with(ev, ctx, args):
    return [
        AtomicValue.boolean(_one_string(args, 0).endswith(_one_string(args, 1)))
    ]


def fn_upper_case(ev, ctx, args):
    return [AtomicValue.string(_one_string(args).upper())]


def fn_lower_case(ev, ctx, args):
    return [AtomicValue.string(_one_string(args).lower())]


def fn_normalize_space(ev, ctx, args):
    if args:
        text = _one_string(args)
    else:
        text = item_string(ctx.require_context_item())
    return [AtomicValue.string(" ".join(text.split()))]


def fn_translate(ev, ctx, args):
    text, src, dst = (_one_string(args, i) for i in range(3))
    table = {}
    for index, ch in enumerate(src):
        table[ord(ch)] = dst[index] if index < len(dst) else None
    return [AtomicValue.string(text.translate(table))]


def fn_substring_before(ev, ctx, args):
    text, sep = _one_string(args, 0), _one_string(args, 1)
    index = text.find(sep) if sep else -1
    return [AtomicValue.string(text[:index] if index >= 0 else "")]


def fn_substring_after(ev, ctx, args):
    text, sep = _one_string(args, 0), _one_string(args, 1)
    index = text.find(sep) if sep else -1
    return [AtomicValue.string(text[index + len(sep):] if index >= 0 else "")]


def fn_tokenize(ev, ctx, args):
    text, pattern = _one_string(args, 0), _one_string(args, 1)
    if not text:
        return []
    try:
        return [AtomicValue.string(part) for part in re.split(pattern, text)]
    except re.error as exc:
        raise FunctionError(f"invalid regex in fn:tokenize: {exc}") from None


def fn_matches(ev, ctx, args):
    text, pattern = _one_string(args, 0), _one_string(args, 1)
    try:
        return [AtomicValue.boolean(re.search(pattern, text) is not None)]
    except re.error as exc:
        raise FunctionError(f"invalid regex in fn:matches: {exc}") from None


def fn_replace(ev, ctx, args):
    text, pattern, replacement = (_one_string(args, i) for i in range(3))
    try:
        return [AtomicValue.string(re.sub(pattern, replacement, text))]
    except re.error as exc:
        raise FunctionError(f"invalid regex in fn:replace: {exc}") from None


# ----------------------------------------------------------------------
# Numerics / aggregates
# ----------------------------------------------------------------------

def _rewrap_numeric(av, value: float):
    """Build a numeric result of the same dynamic type as *av*."""
    if av.type == XS_INTEGER:
        return AtomicValue.integer(int(value))
    if av.type == "xs:decimal":
        return AtomicValue.decimal(value)
    return AtomicValue.double(float(value))


def fn_abs(ev, ctx, args):
    av = atomize_optional(args[0], "fn:abs argument")
    if av is None:
        return []
    av = cast_to_number(av)
    return [AtomicValue(av.type, abs(av.value))]


def fn_floor(ev, ctx, args):
    av = atomize_optional(args[0], "fn:floor argument")
    if av is None:
        return []
    av = cast_to_number(av)
    if av.type == XS_INTEGER:
        return [av]
    return [_rewrap_numeric(av, math.floor(float(av.value)))]


def fn_ceiling(ev, ctx, args):
    av = atomize_optional(args[0], "fn:ceiling argument")
    if av is None:
        return []
    av = cast_to_number(av)
    if av.type == XS_INTEGER:
        return [av]
    return [_rewrap_numeric(av, math.ceil(float(av.value)))]


def fn_round(ev, ctx, args):
    av = atomize_optional(args[0], "fn:round argument")
    if av is None:
        return []
    av = cast_to_number(av)
    if av.type == XS_INTEGER:
        return [av]
    # XQuery rounds .5 toward positive infinity.
    return [_rewrap_numeric(av, math.floor(float(av.value) + 0.5))]


def _numeric_values(seq: Sequence, what: str) -> list[AtomicValue]:
    values = []
    for av in atomize(seq):
        values.append(cast_to_number(av))
    return values


def fn_sum(ev, ctx, args):
    values = _numeric_values(args[0], "fn:sum")
    if not values:
        if len(args) > 1:
            return list(args[1])
        return [AtomicValue.integer(0)]
    if all(v.type == XS_INTEGER for v in values):
        return [AtomicValue.integer(sum(v.value for v in values))]
    if any(v.type == XS_DOUBLE for v in values):
        return [AtomicValue.double(sum(float(v.value) for v in values))]
    # integers + decimals: exact decimal sum (XQuery type-promotion rule).
    from decimal import Decimal

    total = sum((Decimal(str(v.value)) for v in values), Decimal(0))
    return [AtomicValue.decimal(total)]


def fn_avg(ev, ctx, args):
    values = _numeric_values(args[0], "fn:avg")
    if not values:
        return []
    if any(v.type == XS_DOUBLE for v in values):
        total = sum(float(v.value) for v in values)
        return [AtomicValue.double(total / len(values))]
    from decimal import Decimal

    total = sum((Decimal(str(v.value)) for v in values), Decimal(0))
    return [AtomicValue.decimal(total / len(values))]


def _extreme(seq: Sequence, pick_max: bool) -> Sequence:
    values = atomize(seq)
    if not values:
        return []
    if all(is_numeric(v) or v.type == XS_UNTYPED for v in values):
        numbers = [float(cast_to_number(v).value) for v in values]
        best = max(numbers) if pick_max else min(numbers)
        if all(cast_to_number(v).type == XS_INTEGER for v in values):
            return [AtomicValue.integer(int(best))]
        return [AtomicValue.double(best)]
    best_av = values[0]
    for av in values[1:]:
        c = compare_atomic(av, best_av)
        if (c > 0) == pick_max and c != 0:
            best_av = av
    return [best_av]


def fn_max(ev, ctx, args):
    return _extreme(args[0], pick_max=True)


def fn_min(ev, ctx, args):
    return _extreme(args[0], pick_max=False)


# ----------------------------------------------------------------------
# Sequences
# ----------------------------------------------------------------------

def fn_distinct_values(ev, ctx, args):
    seen: list[AtomicValue] = []
    out: Sequence = []
    for av in atomize(args[0]):
        if not any(atomic_equal(av, prev) for prev in seen):
            seen.append(av)
            out.append(av)
    return out


def fn_reverse(ev, ctx, args):
    return list(reversed(args[0]))


def fn_subsequence(ev, ctx, args):
    seq = args[0]
    start = _optional_number(args[1])
    if start is None:
        return []
    begin = int(round(start))
    if len(args) > 2:
        length = _optional_number(args[2])
        if length is None:
            return []
        end = begin + int(round(length))
    else:
        end = len(seq) + 1
    out = []
    for position, item in enumerate(seq, start=1):
        if position >= begin and position < end:
            out.append(item)
    return out


def fn_insert_before(ev, ctx, args):
    seq, inserts = args[0], args[2]
    position = _optional_number(args[1])
    index = max(int(position or 1) - 1, 0)
    return list(seq[:index]) + list(inserts) + list(seq[index:])


def fn_remove(ev, ctx, args):
    position = _optional_number(args[1])
    if position is None:
        return list(args[0])
    index = int(position) - 1
    return [item for i, item in enumerate(args[0]) if i != index]


def fn_index_of(ev, ctx, args):
    target = atomize_optional(args[1], "fn:index-of search value")
    if target is None:
        return []
    out = []
    for position, av in enumerate(atomize(args[0]), start=1):
        try:
            if atomic_equal(av, target):
                out.append(AtomicValue.integer(position))
        except TypeError_:
            continue
    return out


def fn_exactly_one(ev, ctx, args):
    if len(args[0]) != 1:
        raise CardinalityError("fn:exactly-one: sequence has wrong length")
    return list(args[0])


def fn_zero_or_one(ev, ctx, args):
    if len(args[0]) > 1:
        raise CardinalityError("fn:zero-or-one: more than one item")
    return list(args[0])


def fn_one_or_more(ev, ctx, args):
    if not args[0]:
        raise CardinalityError("fn:one-or-more: empty sequence")
    return list(args[0])


def fn_deep_equal(ev, ctx, args):
    return [AtomicValue.boolean(deep_equal(args[0], args[1]))]


def fn_unordered(ev, ctx, args):
    return list(args[0])


def fn_head(ev, ctx, args):
    return list(args[0][:1])


def fn_tail(ev, ctx, args):
    return list(args[0][1:])


def fn_compare(ev, ctx, args):
    a = atomize_optional(args[0], "fn:compare argument")
    b = atomize_optional(args[1], "fn:compare argument")
    if a is None or b is None:
        return []
    return [AtomicValue.integer(compare_atomic(a, b))]


def fn_codepoints_to_string(ev, ctx, args):
    points = []
    for av in atomize(args[0]):
        points.append(int(cast_to_number(av).value))
    try:
        return [AtomicValue.string("".join(chr(p) for p in points))]
    except (ValueError, OverflowError):
        raise FunctionError("invalid codepoint in codepoints-to-string") from None


def fn_string_to_codepoints(ev, ctx, args):
    text = _one_string(args)
    return [AtomicValue.integer(ord(c)) for c in text]


# ----------------------------------------------------------------------
# Documents
# ----------------------------------------------------------------------

def fn_doc(ev, ctx, args):
    """fn:doc — resolve a document from the engine's catalog (documents
    registered with Engine.load_document, keyed by name)."""
    name = _one_string(args)
    if not name:
        return []
    doc = ev.documents.get(name)
    if doc is None:
        raise DynamicError(f"no document registered as {name!r}", code="FODC0002")
    return [doc]


def fn_doc_available(ev, ctx, args):
    name = _one_string(args)
    return [AtomicValue.boolean(name in ev.documents)]


# ----------------------------------------------------------------------
# Casting-style constructors (xs:integer etc. used as functions)
# ----------------------------------------------------------------------

def xs_integer(ev, ctx, args):
    av = atomize_optional(args[0], "xs:integer argument")
    if av is None:
        return []
    return [AtomicValue.integer(int(float(cast_to_number(av).value)))]


def xs_decimal(ev, ctx, args):
    av = atomize_optional(args[0], "xs:decimal argument")
    if av is None:
        return []
    from repro.semantics.types import cast_atomic

    return [cast_atomic(av, "xs:decimal")]


def xs_double(ev, ctx, args):
    av = atomize_optional(args[0], "xs:double argument")
    if av is None:
        return []
    return [AtomicValue.double(float(cast_to_number(av).value))]


def xs_string(ev, ctx, args):
    av = atomize_optional(args[0], "xs:string argument")
    if av is None:
        return []
    return [AtomicValue.string(av.lexical())]


def xs_boolean(ev, ctx, args):
    av = atomize_optional(args[0], "xs:boolean argument")
    if av is None:
        return []
    if av.type == XS_BOOLEAN:
        return [av]
    if av.type in (XS_STRING, XS_UNTYPED):
        text = av.value.strip()
        if text in ("true", "1"):
            return [AtomicValue.boolean(True)]
        if text in ("false", "0"):
            return [AtomicValue.boolean(False)]
        raise TypeError_(f"cannot cast {text!r} to xs:boolean")
    return [AtomicValue.boolean(bool(av.value))]


_BUILTINS = {
    ("count", 1): fn_count,
    ("empty", 1): fn_empty,
    ("exists", 1): fn_exists,
    ("not", 1): fn_not,
    ("boolean", 1): fn_boolean,
    ("true", 0): fn_true,
    ("false", 0): fn_false,
    ("data", 1): fn_data,
    ("string", 0): fn_string,
    ("string", 1): fn_string,
    ("number", 0): fn_number,
    ("number", 1): fn_number,
    ("position", 0): fn_position,
    ("last", 0): fn_last,
    ("error", 0): fn_error,
    ("error", 1): fn_error,
    ("trace", 1): fn_trace,
    ("trace", 2): fn_trace,
    ("name", 0): fn_name,
    ("name", 1): fn_name,
    ("local-name", 0): fn_local_name,
    ("local-name", 1): fn_local_name,
    ("node-name", 1): fn_node_name,
    ("root", 0): fn_root,
    ("root", 1): fn_root,
    ("string-length", 0): fn_string_length,
    ("string-length", 1): fn_string_length,
    ("string-join", 1): fn_string_join,
    ("string-join", 2): fn_string_join,
    ("substring", 2): fn_substring,
    ("substring", 3): fn_substring,
    ("contains", 2): fn_contains,
    ("starts-with", 2): fn_starts_with,
    ("ends-with", 2): fn_ends_with,
    ("upper-case", 1): fn_upper_case,
    ("lower-case", 1): fn_lower_case,
    ("normalize-space", 0): fn_normalize_space,
    ("normalize-space", 1): fn_normalize_space,
    ("translate", 3): fn_translate,
    ("substring-before", 2): fn_substring_before,
    ("substring-after", 2): fn_substring_after,
    ("tokenize", 2): fn_tokenize,
    ("matches", 2): fn_matches,
    ("replace", 3): fn_replace,
    ("abs", 1): fn_abs,
    ("floor", 1): fn_floor,
    ("ceiling", 1): fn_ceiling,
    ("round", 1): fn_round,
    ("sum", 1): fn_sum,
    ("sum", 2): fn_sum,
    ("avg", 1): fn_avg,
    ("max", 1): fn_max,
    ("min", 1): fn_min,
    ("distinct-values", 1): fn_distinct_values,
    ("reverse", 1): fn_reverse,
    ("subsequence", 2): fn_subsequence,
    ("subsequence", 3): fn_subsequence,
    ("insert-before", 3): fn_insert_before,
    ("remove", 2): fn_remove,
    ("index-of", 2): fn_index_of,
    ("exactly-one", 1): fn_exactly_one,
    ("zero-or-one", 1): fn_zero_or_one,
    ("one-or-more", 1): fn_one_or_more,
    ("deep-equal", 2): fn_deep_equal,
    ("unordered", 1): fn_unordered,
    ("head", 1): fn_head,
    ("tail", 1): fn_tail,
    ("compare", 2): fn_compare,
    ("codepoints-to-string", 1): fn_codepoints_to_string,
    ("string-to-codepoints", 1): fn_string_to_codepoints,
    ("doc", 1): fn_doc,
    ("doc-available", 1): fn_doc_available,
    ("xs:integer", 1): xs_integer,
    ("xs:decimal", 1): xs_decimal,
    ("xs:double", 1): xs_double,
    ("xs:string", 1): xs_string,
    ("xs:boolean", 1): xs_boolean,
}

_VARIADIC = {
    "concat": fn_concat,
}
