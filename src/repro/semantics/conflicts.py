"""Conflict detection for the conflict-detection snap semantics.

Section 3.2: "the first phase tries to prove, by some simple rules, that the
update sequence is actually conflict-free, meaning that the ordered
application of every permutation of Δ would produce the same result";
Section 4.1: the check runs "in linear time, using a pair of hash-tables
over node ids".

The rules we implement (each is a sufficient condition for two requests to
commute; violating any rule raises :class:`~repro.errors.ConflictError`):

1. **rename/rename** — two renames of the same node conflict (the final
   name depends on order).
2. **insert/insert** — two inserts resolving to the same symbolic position
   — same ``(position-class, target)`` — conflict: the relative order of
   the inserted node groups is order-dependent.  (Two ``as last into`` the
   same parent conflict; inserts before/after *different* anchors under the
   same parent commute.)
3. **insert/delete** — an insert anchored ``before``/``after`` a node that
   some delete detaches conflicts: one order succeeds, the other violates
   the "anchor must have a parent" precondition.
4. **shared subject** — a node appearing in the ``nodes`` of two different
   inserts conflicts (the second application finds it already parented).

Deleting the same node twice is *not* a conflict: detach is idempotent.
Rename and delete of the same node commute (rename does not touch the
parent link) and are allowed.

The check uses exactly two hash tables: ``writes`` keyed by node id (name
writes, insert subjects, deletions) and ``positions`` keyed by
``(position-class, target node id)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConflictError
from repro.semantics.update import (
    INSERT_AFTER,
    INSERT_BEFORE,
    INSERT_FIRST,
    INSERT_LAST,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    SetValueRequest,
    UpdateList,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer


def check_conflict_free(
    delta: UpdateList, tracer: "Tracer | None" = None, control=None
) -> None:
    """Prove Δ conflict-free or raise :class:`ConflictError`.

    Runs in O(|Δ| + total inserted nodes) time.  With a *tracer*, records
    the check's hash-table sizes (``conflict.table.writes`` /
    ``conflict.table.positions``) and outcome counters
    (``conflict.checks`` / ``conflict.ok`` / ``conflict.detected``) — the
    paper's §4.1 "pair of hash-tables" made measurable.

    With a *control* (an
    :class:`~repro.concurrent.control.ExecutionControl`), the scan polls
    it periodically so a timeout or cancellation fires inside the check
    of a very large Δ, not only at the next tuple boundary.  The scan
    mutates nothing, so interrupting it anywhere is safe — the Δ is
    simply discarded unapplied.
    """
    # Table 1: per-node write records. Values are sets of tags:
    #   'name'    — some rename writes this node's name,
    #   'subject' — some insert attaches this node;
    # plus, per node, the group tokens of deletes targeting it.
    writes: dict[int, set[str]] = {}
    delete_groups: dict[int, list] = {}
    # Table 2: symbolic insert positions (position, target) -> group.
    positions: dict[tuple[str, int], object] = {}
    if tracer is None:
        _scan(delta, writes, delete_groups, positions, control)
        return
    tracer.count("conflict.checks")
    try:
        _scan(delta, writes, delete_groups, positions, control)
    except ConflictError:
        tracer.count("conflict.detected")
        raise
    finally:
        # Table sizes are meaningful on both outcomes: on a conflict they
        # show how far the scan got before the commutativity proof failed.
        tracer.observe("conflict.table.writes", len(writes))
        tracer.observe("conflict.table.positions", len(positions))
    tracer.count("conflict.ok")


def _scan(
    delta: UpdateList,
    writes: dict[int, set[str]],
    delete_groups: dict[int, list],
    positions: dict[tuple[str, int], object],
    control=None,
) -> None:
    def mark(node: int, tag: str, message: str) -> None:
        tags = writes.setdefault(node, set())
        if tag in tags:
            raise ConflictError(message)
        tags.add(tag)

    for position_index, request in enumerate(delta):
        if control is not None and position_index % 256 == 0:
            control.check()
        if isinstance(request, RenameRequest):
            mark(
                request.node,
                "name",
                f"two renames target node #{request.node}; the final name "
                "is order-dependent",
            )
        elif isinstance(request, SetValueRequest):
            mark(
                request.node,
                "content",
                f"two value replacements target node #{request.node}; the "
                "final content is order-dependent",
            )
        elif isinstance(request, DeleteRequest):
            # Repeated delete is idempotent: record, do not error.
            delete_groups.setdefault(request.node, []).append(request.group)
        elif isinstance(request, InsertRequest):
            key = (request.position, request.target)
            if key in positions:
                raise ConflictError(
                    f"two inserts resolve to the same position {key}; the "
                    "relative order of inserted nodes is order-dependent"
                )
            positions[key] = request.group
            for node in request.nodes:
                mark(
                    node,
                    "subject",
                    f"node #{node} is inserted by two different requests",
                )

    # Second pass over the two tables: anchor-vs-delete interference.  The
    # insert/delete pair emitted by a single `replace` shares a group token
    # and is one logical write — exempt exactly that pairing.
    for (position, target), group in positions.items():
        if position in (INSERT_FIRST, INSERT_LAST):
            # insert-into and a content overwrite of the same parent do not
            # commute (the overwrite detaches children).
            if "content" in writes.get(target, ()):
                raise ConflictError(
                    f"insert into node #{target} conflicts with a value "
                    "replacement of that node"
                )
            continue
        if position not in (INSERT_BEFORE, INSERT_AFTER):
            continue
        for delete_group in delete_groups.get(target, ()):
            if group is None or delete_group != group:
                raise ConflictError(
                    f"insert {position} node #{target} conflicts with a "
                    "delete of that node: application orders disagree"
                )


def is_conflict_free(delta: UpdateList) -> bool:
    """Boolean form of :func:`check_conflict_free`."""
    try:
        check_conflict_free(delta)
    except ConflictError:
        return False
    return True
