"""Conflict detection for the conflict-detection snap semantics.

Section 3.2: "the first phase tries to prove, by some simple rules, that the
update sequence is actually conflict-free, meaning that the ordered
application of every permutation of Δ would produce the same result";
Section 4.1: the check runs "in linear time, using a pair of hash-tables
over node ids".

The rules we implement (each is a sufficient condition for two requests to
commute; violating any rule raises :class:`~repro.errors.ConflictError`):

1. **rename/rename** — two renames of the same node conflict (the final
   name depends on order).
2. **insert/insert** — two inserts resolving to the same symbolic position
   — same ``(position-class, target)`` — conflict: the relative order of
   the inserted node groups is order-dependent.  (Two ``as last into`` the
   same parent conflict; inserts before/after *different* anchors under the
   same parent commute.)
3. **insert/delete** — an insert anchored ``before``/``after`` a node that
   some delete detaches conflicts: one order succeeds, the other violates
   the "anchor must have a parent" precondition.
4. **shared subject** — a node appearing in the ``nodes`` of two different
   inserts conflicts (the second application finds it already parented).

Deleting the same node twice is *not* a conflict: detach is idempotent.
Rename and delete of the same node commute (rename does not touch the
parent link) and are allowed.

The check uses exactly two hash tables: ``writes`` keyed by node id (name
writes, insert subjects, deletions) and ``positions`` keyed by
``(position-class, target node id)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConflictError
from repro.semantics.update import (
    INSERT_AFTER,
    INSERT_BEFORE,
    INSERT_FIRST,
    INSERT_LAST,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    SetValueRequest,
    UpdateList,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer


def check_conflict_free(
    delta: UpdateList, tracer: "Tracer | None" = None, control=None
) -> None:
    """Prove Δ conflict-free or raise :class:`ConflictError`.

    Runs in O(|Δ| + total inserted nodes) time.  With a *tracer*, records
    the check's hash-table sizes (``conflict.table.writes`` /
    ``conflict.table.positions``) and outcome counters
    (``conflict.checks`` / ``conflict.ok`` / ``conflict.detected``) — the
    paper's §4.1 "pair of hash-tables" made measurable.

    With a *control* (an
    :class:`~repro.concurrent.control.ExecutionControl`), the scan polls
    it periodically so a timeout or cancellation fires inside the check
    of a very large Δ, not only at the next tuple boundary.  The scan
    mutates nothing, so interrupting it anywhere is safe — the Δ is
    simply discarded unapplied.
    """
    # Table 1: per-node write records. Values are sets of tags:
    #   'name'    — some rename writes this node's name,
    #   'subject' — some insert attaches this node;
    # plus, per node, the group tokens of deletes targeting it.
    writes: dict[int, set[str]] = {}
    delete_groups: dict[int, list] = {}
    # Table 2: symbolic insert positions (position, target) -> group.
    positions: dict[tuple[str, int], object] = {}
    if tracer is None:
        _scan(delta, writes, delete_groups, positions, control)
        return
    tracer.count("conflict.checks")
    try:
        _scan(delta, writes, delete_groups, positions, control)
    except ConflictError:
        tracer.count("conflict.detected")
        raise
    finally:
        # Table sizes are meaningful on both outcomes: on a conflict they
        # show how far the scan got before the commutativity proof failed.
        tracer.observe("conflict.table.writes", len(writes))
        tracer.observe("conflict.table.positions", len(positions))
    tracer.count("conflict.ok")


def _scan(
    delta: UpdateList,
    writes: dict[int, set[str]],
    delete_groups: dict[int, list],
    positions: dict[tuple[str, int], object],
    control=None,
) -> None:
    def mark(node: int, tag: str, message: str) -> None:
        tags = writes.setdefault(node, set())
        if tag in tags:
            raise ConflictError(message)
        tags.add(tag)

    for position_index, request in enumerate(delta):
        if control is not None and position_index % 256 == 0:
            control.check()
        if isinstance(request, RenameRequest):
            mark(
                request.node,
                "name",
                f"two renames target node #{request.node}; the final name "
                "is order-dependent",
            )
        elif isinstance(request, SetValueRequest):
            mark(
                request.node,
                "content",
                f"two value replacements target node #{request.node}; the "
                "final content is order-dependent",
            )
        elif isinstance(request, DeleteRequest):
            # Repeated delete is idempotent: record, do not error.
            delete_groups.setdefault(request.node, []).append(request.group)
        elif isinstance(request, InsertRequest):
            key = (request.position, request.target)
            if key in positions:
                raise ConflictError(
                    f"two inserts resolve to the same position {key}; the "
                    "relative order of inserted nodes is order-dependent"
                )
            positions[key] = request.group
            for node in request.nodes:
                mark(
                    node,
                    "subject",
                    f"node #{node} is inserted by two different requests",
                )

    # Second pass over the two tables: anchor-vs-delete interference.  The
    # insert/delete pair emitted by a single `replace` shares a group token
    # and is one logical write — exempt exactly that pairing.
    for (position, target), group in positions.items():
        if position in (INSERT_FIRST, INSERT_LAST):
            # insert-into and a content overwrite of the same parent do not
            # commute (the overwrite detaches children).
            if "content" in writes.get(target, ()):
                raise ConflictError(
                    f"insert into node #{target} conflicts with a value "
                    "replacement of that node"
                )
            continue
        if position not in (INSERT_BEFORE, INSERT_AFTER):
            continue
        for delete_group in delete_groups.get(target, ()):
            if group is None or delete_group != group:
                raise ConflictError(
                    f"insert {position} node #{target} conflicts with a "
                    "delete of that node: application orders disagree"
                )


def _collect(
    delta: UpdateList,
) -> tuple[dict[int, set[str]], set[int], set[tuple[str, int]]]:
    """Build one Δ's conflict tables without judging the Δ itself.

    Same classification as :func:`_scan`, but repeats do not raise:
    the caller (:func:`check_cross_conflict_free`) examines *pairs* of
    transactions whose Δs were each already applied internally under
    their own semantics — intra-Δ order dependence is not re-examined.
    """
    writes: dict[int, set[str]] = {}
    deletes: set[int] = set()
    positions: set[tuple[str, int]] = set()
    for request in delta:
        if isinstance(request, RenameRequest):
            writes.setdefault(request.node, set()).add("name")
        elif isinstance(request, SetValueRequest):
            writes.setdefault(request.node, set()).add("content")
        elif isinstance(request, DeleteRequest):
            deletes.add(request.node)
        elif isinstance(request, InsertRequest):
            positions.add((request.position, request.target))
            for node in request.nodes:
                writes.setdefault(node, set()).add("subject")
    return writes, deletes, positions


def _check_one_way(
    positions: set[tuple[str, int]],
    other_writes: dict[int, set[str]],
    other_deletes: set[int],
) -> None:
    for position, target in positions:
        if position in (INSERT_FIRST, INSERT_LAST):
            if "content" in other_writes.get(target, ()):
                raise ConflictError(
                    f"insert into node #{target} conflicts with the other "
                    "transaction's value replacement of that node"
                )
            continue
        if position not in (INSERT_BEFORE, INSERT_AFTER):
            continue
        if target in other_deletes:
            raise ConflictError(
                f"insert {position} node #{target} conflicts with the "
                "other transaction's delete of that node: application "
                "orders disagree"
            )


def check_cross_conflict_free(delta_a: UpdateList, delta_b: UpdateList) -> None:
    """Prove two transactions' Δs pairwise commutative, or raise.

    The OCC validation phase of :mod:`repro.txn` — the paper's §3.2
    conflict rules replayed *across* transaction boundaries: a
    committing transaction's merged Δ is checked against the Δ of every
    transaction that committed after its snapshot was taken.  The rules
    are exactly those of :func:`check_conflict_free`, restricted to
    request pairs drawn one from each Δ (each Δ's internal order was
    already fixed by its own snap semantics), with one tightening: the
    replace-pair group exemption never applies across transactions —
    a group token ties together requests of *one* logical write.
    """
    writes_a, deletes_a, positions_a = _collect(delta_a)
    writes_b, deletes_b, positions_b = _collect(delta_b)
    # Rules 1 and 4 (and the content analogue): the same write tag on
    # the same node from both sides is order-dependent.
    small, large = (
        (writes_a, writes_b)
        if len(writes_a) <= len(writes_b)
        else (writes_b, writes_a)
    )
    for node, tags in small.items():
        common = tags & large.get(node, set())
        if common:
            tag = sorted(common)[0]
            raise ConflictError(
                f"both transactions write {tag!r} of node #{node}; the "
                "final state is commit-order-dependent"
            )
    # Rule 2: two inserts resolving to the same symbolic position.
    shared = positions_a & positions_b
    if shared:
        position, target = next(iter(shared))
        raise ConflictError(
            f"both transactions insert at position ({position!r}, "
            f"#{target}); the relative order of the inserted nodes is "
            "commit-order-dependent"
        )
    # Rule 3 (both directions): an anchored insert against the other
    # transaction's delete of the anchor, and insert-into against the
    # other's content overwrite of the parent.
    _check_one_way(positions_a, writes_b, deletes_b)
    _check_one_way(positions_b, writes_a, deletes_a)


def is_conflict_free(delta: UpdateList) -> bool:
    """Boolean form of :func:`check_conflict_free`."""
    try:
        check_conflict_free(delta)
    except ConflictError:
        return False
    return True
