"""Dynamic semantics of XQuery!.

Implements the paper's Section 3: the evaluation judgment
``store0; dynEnv |- Expr => value; Delta; store1``
(:mod:`repro.semantics.evaluator`), pending-update requests and the three
update-application semantics (:mod:`repro.semantics.update`,
:mod:`repro.semantics.conflicts`), the dynamic context
(:mod:`repro.semantics.context`) and the built-in function library
(:mod:`repro.semantics.functions`).
"""

from repro.semantics.context import DynamicContext, FunctionRegistry
from repro.semantics.evaluator import Evaluator, EvalResult
from repro.semantics.update import (
    ApplySemantics,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    UpdateList,
    UpdateRequest,
    apply_update_list,
)
from repro.semantics.conflicts import check_conflict_free

__all__ = [
    "DynamicContext",
    "FunctionRegistry",
    "Evaluator",
    "EvalResult",
    "ApplySemantics",
    "UpdateRequest",
    "InsertRequest",
    "DeleteRequest",
    "RenameRequest",
    "UpdateList",
    "apply_update_list",
    "check_conflict_free",
]
