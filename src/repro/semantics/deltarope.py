"""The update-list rope: the paper's "specialized tree structure".

Section 4.1: "The implementation of the ordered semantics is more
involved, as we need to rely on a specialized tree structure to represent
the update list in a way which allows the compiler to retain the order in
which each update must be applied."

A :class:`Delta` is an immutable binary rope over update requests:

* concatenation is **O(1)** (the Fig. 3 rules concatenate Δs at every
  sequence, FLWOR iteration and function call — with plain lists that is
  O(|Δ|·nesting-depth) copying; with the rope it is linear overall),
* iteration flattens lazily, left-to-right, in exactly the order the
  semantics rules prescribe,
* ``len`` is O(1) (size is cached per node).

The evaluator builds Δ exclusively through :data:`EMPTY`,
:meth:`Delta.leaf` and ``+``; update application flattens once.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Delta:
    """An immutable, O(1)-concatenation update list (rope)."""

    __slots__ = ("_left", "_right", "_request", "_size")

    def __init__(self, left=None, right=None, request=None, size=0):
        self._left = left
        self._right = right
        self._request = request
        self._size = size

    # -- constructors ------------------------------------------------------

    @staticmethod
    def leaf(request) -> "Delta":
        """A one-request Δ."""
        return Delta(request=request, size=1)

    @staticmethod
    def from_iterable(requests: Iterable) -> "Delta":
        """Build a Δ from an iterable of requests (left-to-right)."""
        out = EMPTY
        for request in requests:
            out = out + Delta.leaf(request)
        return out

    # -- algebra -------------------------------------------------------------

    def __add__(self, other: "Delta") -> "Delta":
        """Ordered concatenation; O(1)."""
        if not isinstance(other, Delta):
            return NotImplemented
        if self._size == 0:
            return other
        if other._size == 0:
            return self
        return Delta(left=self, right=other, size=self._size + other._size)

    # -- observation -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator:
        """Flatten left-to-right, iteratively (no recursion-depth limit)."""
        stack = [self]
        while stack:
            node = stack.pop()
            if node._size == 0:
                continue
            if node._request is not None:
                yield node._request
                continue
            # Push right first so left is visited first.
            stack.append(node._right)
            stack.append(node._left)

    def to_list(self) -> list:
        return list(self)

    def __repr__(self) -> str:
        if self._size <= 4:
            return f"Delta({self.to_list()!r})"
        return f"Delta(<{self._size} requests>)"

    def __eq__(self, other: object) -> bool:
        """Structural order-sensitive equality (by flattened contents)."""
        if isinstance(other, Delta):
            return self.to_list() == other.to_list()
        if isinstance(other, list):
            return self.to_list() == other
        return NotImplemented


#: The empty update list (shared singleton).
EMPTY = Delta()
