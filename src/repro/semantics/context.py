"""Dynamic context and function registry.

The dynamic context (``dynEnv`` in the paper's judgments) carries variable
bindings and the focus (context item / position / size).  Binding returns a
*new* context — the store is the only mutable state, exactly as in the
formal semantics where ``dynEnv + x => value`` extends the environment.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import (
    DynamicError,
    UndefinedFunctionError,
    UndefinedVariableError,
)
from repro.lang.core_ast import CFunction
from repro.xdm.values import Item, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.evaluator import Evaluator


class DynamicContext:
    """Immutable-by-convention evaluation context."""

    __slots__ = ("variables", "context_item", "position", "size")

    def __init__(
        self,
        variables: dict[str, Sequence] | None = None,
        context_item: Optional[Item] = None,
        position: int = 0,
        size: int = 0,
    ):
        self.variables = variables if variables is not None else {}
        self.context_item = context_item
        self.position = position
        self.size = size

    def bind(self, name: str, value: Sequence) -> "DynamicContext":
        """Return a context extended with ``$name := value``."""
        variables = dict(self.variables)
        variables[name] = value
        return DynamicContext(
            variables, self.context_item, self.position, self.size
        )

    def bind_many(self, bindings: dict[str, Sequence]) -> "DynamicContext":
        """Extend with several bindings at once."""
        variables = dict(self.variables)
        variables.update(bindings)
        return DynamicContext(
            variables, self.context_item, self.position, self.size
        )

    def with_focus(self, item: Item, position: int, size: int) -> "DynamicContext":
        """Return a context whose focus (., position(), last()) is set."""
        return DynamicContext(self.variables, item, position, size)

    def variable(self, name: str) -> Sequence:
        try:
            return self.variables[name]
        except KeyError:
            raise UndefinedVariableError(f"undefined variable ${name}") from None

    def require_context_item(self) -> Item:
        if self.context_item is None:
            raise DynamicError(
                "the context item is undefined here", code="XPDY0002"
            )
        return self.context_item


# A built-in function takes (evaluator, context, argument values) and
# returns a value.  Built-ins are pure: they produce no update requests.
Builtin = Callable[["Evaluator", DynamicContext, list], Sequence]


class FunctionRegistry:
    """Resolves function names to user declarations or built-ins.

    Lookup is by (local name, arity) with the ``fn:`` prefix optional for
    built-ins, matching common XQuery usage (``count(...)`` ==
    ``fn:count(...)``).  User functions are registered under their declared
    name (including any prefix, e.g. ``local:get_item``).
    """

    def __init__(self) -> None:
        self._builtins: dict[tuple[str, int], Builtin] = {}
        self._variadic_builtins: dict[str, Builtin] = {}
        self._user: dict[tuple[str, int], CFunction] = {}
        # Bumped whenever the set of user functions *changes* (new name or
        # a different declaration object under an existing name).  The
        # prepared-query cache keys its entries against this: stale name
        # resolution or purity verdicts are re-derived after a bump.
        # Re-registering the identical declaration — which every prepared
        # execution does for its own prolog — is generation-neutral.
        self.generation = 0
        # Guards registration, snapshot and restore: the check-then-bump
        # in register_user is a read-modify-write, and restore swaps the
        # table and counter as a pair.  Plain dict lookups stay lock-free.
        self._mutex = threading.Lock()

    # -- registration ----------------------------------------------------

    def register_builtin(self, name: str, arity: int, fn: Builtin) -> None:
        self._builtins[(name, arity)] = fn

    def register_variadic_builtin(self, name: str, fn: Builtin) -> None:
        self._variadic_builtins[name] = fn

    def register_user(self, function: CFunction) -> None:
        key = (function.name, len(function.params))
        with self._mutex:
            if self._user.get(key) is not function:
                self.generation += 1
            self._user[key] = function

    def register_user_as(self, name: str, function: CFunction) -> None:
        """Register *function* under an alternate name (used by module
        imports to expose a library function under the importer's
        prefix)."""
        key = (name, len(function.params))
        with self._mutex:
            if self._user.get(key) is not function:
                self.generation += 1
            self._user[key] = function

    def user_functions(self) -> list[CFunction]:
        """All registered user functions (used by the purity analysis)."""
        return list(self._user.values())

    # -- scoped registration ---------------------------------------------

    def snapshot(self) -> tuple[dict[tuple[str, int], CFunction], int]:
        """Capture the user-function table and generation counter.

        ``Engine.prepare``/``compile`` register prolog functions *before*
        static checks and compilation can still fail; restoring the
        snapshot on error rolls those registrations back so a failed
        compilation neither leaks half a prolog into the shared registry
        nor bumps the generation (which would evict every prepared-cache
        entry).
        """
        with self._mutex:
            return (dict(self._user), self.generation)

    def restore(
        self, snapshot: tuple[dict[tuple[str, int], CFunction], int]
    ) -> None:
        """Reset user functions and generation to a prior snapshot."""
        users, generation = snapshot
        with self._mutex:
            self._user = dict(users)
            self.generation = generation

    # -- lookup ------------------------------------------------------------

    @staticmethod
    def _strip_fn(name: str) -> str:
        return name[3:] if name.startswith("fn:") else name

    def lookup_user(self, name: str, arity: int) -> CFunction | None:
        direct = self._user.get((name, arity))
        if direct is not None:
            return direct
        # Allow calling 'local:f' as 'f' and vice versa.  list() takes a
        # GIL-atomic copy so concurrent registration cannot invalidate
        # the iterator mid-scan.
        if ":" not in name:
            for (qname, a), fn in list(self._user.items()):
                if a == arity and qname.split(":")[-1] == name:
                    return fn
        return None

    def lookup_builtin(self, name: str, arity: int) -> Builtin | None:
        stripped = self._strip_fn(name)
        fn = self._builtins.get((stripped, arity))
        if fn is not None:
            return fn
        return self._variadic_builtins.get(stripped)

    def resolve(self, name: str, arity: int) -> CFunction | Builtin:
        """Resolve a call.

        Precedence: exact user declaration, then built-ins, then the
        convenience suffix match for unprefixed calls to prefixed user
        functions — so ``count(...)`` always means fn:count even when a
        ``my:count`` is declared.
        """
        direct = self._user.get((name, arity))
        if direct is not None:
            return direct
        builtin = self.lookup_builtin(name, arity)
        if builtin is not None:
            return builtin
        user = self.lookup_user(name, arity)
        if user is not None:
            return user
        raise UndefinedFunctionError(
            f"undefined function {name}#{arity}"
        )
