"""Numeric operator semantics (+, -, *, div, idiv, mod).

Implements the XQuery 1.0 dynamic rules the paper's examples rely on:
untypedAtomic operands are cast to numbers, integer arithmetic stays in
xs:integer, ``div`` of two integers produces xs:decimal, xs:decimal is
computed **exactly** (Python :class:`decimal.Decimal` — ``65.95 * 0.9`` is
``59.3550``, not ``59.355000000000004``), division by zero raises FOAR0001
for exact types and yields ±INF/NaN for xs:double.
"""

from __future__ import annotations

import math
from decimal import Decimal, DivisionByZero, InvalidOperation

from repro.errors import ArithmeticError_, TypeError_
from repro.xdm.values import (
    XS_DECIMAL,
    XS_DOUBLE,
    XS_INTEGER,
    AtomicValue,
    cast_to_number,
)

_ORDER = {XS_INTEGER: 0, XS_DECIMAL: 1, XS_DOUBLE: 2}


def arithmetic(op: str, left: AtomicValue, right: AtomicValue) -> AtomicValue:
    """Apply binary arithmetic *op* to two atomized operands."""
    a = cast_to_number(left)
    b = cast_to_number(right)
    if a.type not in _ORDER or b.type not in _ORDER:
        raise TypeError_(f"arithmetic on non-numeric types {a.type}, {b.type}")
    target = a.type if _ORDER[a.type] >= _ORDER[b.type] else b.type
    if op == "div" and target == XS_INTEGER:
        target = XS_DECIMAL  # integer div integer is xs:decimal
    if target == XS_INTEGER:
        return AtomicValue.integer(_int_op(op, int(a.value), int(b.value)))
    if target == XS_DOUBLE:
        result = _double_op(op, float(a.value), float(b.value))
        if op == "idiv":
            return AtomicValue.integer(int(result))
        return AtomicValue.double(result)
    result = _decimal_op(op, _as_decimal(a.value), _as_decimal(b.value))
    if op == "idiv":
        return AtomicValue.integer(int(result))
    return AtomicValue(XS_DECIMAL, result)


def _as_decimal(value) -> Decimal:
    if isinstance(value, Decimal):
        return value
    if isinstance(value, int):
        return Decimal(value)
    return Decimal(repr(value))


def _int_op(op: str, x: int, y: int) -> int:
    if op == "+":
        return x + y
    if op == "-":
        return x - y
    if op == "*":
        return x * y
    if op == "idiv":
        if y == 0:
            raise ArithmeticError_("integer division by zero")
        return _trunc_div(x, y)
    if op == "mod":
        if y == 0:
            raise ArithmeticError_("modulus by zero")
        # XQuery mod takes the sign of the dividend.
        return x - _trunc_div(x, y) * y
    raise TypeError_(f"unknown arithmetic operator {op!r}")


def _trunc_div(x: int, y: int) -> int:
    """Integer division truncating toward zero (XQuery idiv)."""
    q = abs(x) // abs(y)
    return q if (x >= 0) == (y >= 0) else -q


def _decimal_op(op: str, x: Decimal, y: Decimal) -> Decimal:
    try:
        if op == "+":
            return x + y
        if op == "-":
            return x - y
        if op == "*":
            return x * y
        if op == "div":
            if y == 0:
                raise ArithmeticError_("decimal division by zero")
            return x / y
        if op == "idiv":
            if y == 0:
                raise ArithmeticError_("integer division by zero")
            return (x / y).to_integral_value(rounding="ROUND_DOWN")
        if op == "mod":
            if y == 0:
                raise ArithmeticError_("modulus by zero")
            return x % y  # Decimal % keeps the dividend's sign (XQuery rule)
    except (DivisionByZero, InvalidOperation) as exc:
        raise ArithmeticError_(f"decimal arithmetic failed: {exc}") from None
    raise TypeError_(f"unknown arithmetic operator {op!r}")


def _double_op(op: str, x: float, y: float) -> float:
    if op == "+":
        return x + y
    if op == "-":
        return x - y
    if op == "*":
        return x * y
    if op == "div":
        if y == 0:
            if x == 0 or math.isnan(x):
                return float("nan")
            return math.inf if x > 0 else -math.inf
        return x / y
    if op == "idiv":
        if y == 0 or math.isnan(x) or math.isinf(x):
            raise ArithmeticError_("invalid operands to idiv")
        return float(math.trunc(x / y))
    if op == "mod":
        if y == 0:
            return float("nan")
        return math.fmod(x, y)
    raise TypeError_(f"unknown arithmetic operator {op!r}")
