"""Dynamic sequence-type matching and atomic casting.

Supports ``instance of``, ``castable as`` and ``cast as`` over the engine's
dynamic type universe.  The paper leaves *static* typing for future work
(Section 6); these are the standard XQuery 1.0 dynamic operators.
"""

from __future__ import annotations

from repro.errors import TypeError_
from repro.lang.ast import SequenceType
from repro.xdm.nodes import Node
from repro.xdm.store import NodeKind
from repro.xdm.values import (
    XS_BOOLEAN,
    XS_DECIMAL,
    XS_DOUBLE,
    XS_INTEGER,
    XS_STRING,
    XS_UNTYPED,
    AtomicValue,
    Item,
    Sequence,
)

# Derivation chains: a value of the key type is also an instance of every
# type listed (xs:integer derives from xs:decimal in the XML Schema
# hierarchy).
_SUPERTYPES = {
    XS_INTEGER: {XS_INTEGER, XS_DECIMAL, "xs:anyAtomicType"},
    XS_DECIMAL: {XS_DECIMAL, "xs:anyAtomicType"},
    XS_DOUBLE: {XS_DOUBLE, "xs:anyAtomicType"},
    XS_STRING: {XS_STRING, "xs:anyAtomicType"},
    XS_BOOLEAN: {XS_BOOLEAN, "xs:anyAtomicType"},
    XS_UNTYPED: {XS_UNTYPED, "xs:anyAtomicType"},
}

_NODE_KIND_TESTS = {
    "node": None,
    "text": NodeKind.TEXT,
    "comment": NodeKind.COMMENT,
    "element": NodeKind.ELEMENT,
    "attribute": NodeKind.ATTRIBUTE,
    "document-node": NodeKind.DOCUMENT,
    "processing-instruction": NodeKind.PROCESSING_INSTRUCTION,
}


def item_matches(item: Item, kind: str, name: str | None) -> bool:
    """Does *item* match the item test ``kind(name)``?"""
    if kind == "item":
        return True
    if kind in _NODE_KIND_TESTS:
        if not isinstance(item, Node):
            return False
        expected = _NODE_KIND_TESTS[kind]
        if expected is not None and item.kind is not expected:
            return False
        if name not in (None, "*") and item.name != name:
            return False
        return True
    # Atomic type test.
    if isinstance(item, Node):
        return False
    return kind in _SUPERTYPES.get(item.type, {"xs:anyAtomicType"}) or (
        kind == "xs:anyAtomicType"
    )


def matches_sequence_type(seq: Sequence, type_: SequenceType) -> bool:
    """The 'instance of' judgment."""
    if type_.kind == "empty-sequence":
        return not seq
    occurrence = type_.occurrence
    if not seq:
        return occurrence in ("?", "*")
    if len(seq) > 1 and occurrence not in ("*", "+"):
        return False
    return all(item_matches(item, type_.kind, type_.name) for item in seq)


def cast_atomic(av: AtomicValue, type_name: str) -> AtomicValue:
    """'cast as' for a single atomic value; raises TypeError_ on failure."""
    text = av.lexical()
    try:
        if type_name in ("xs:string", "string"):
            return AtomicValue.string(text)
        if type_name in ("xs:untypedAtomic", "untypedAtomic"):
            return AtomicValue.untyped(text)
        if type_name in ("xs:integer", "integer"):
            if av.type in (XS_DOUBLE, XS_DECIMAL):
                return AtomicValue.integer(int(av.value))
            if av.type == XS_BOOLEAN:
                return AtomicValue.integer(1 if av.value else 0)
            return AtomicValue.integer(int(text.strip()))
        if type_name in ("xs:decimal", "decimal"):
            if av.type == XS_BOOLEAN:
                return AtomicValue.decimal(1 if av.value else 0)
            return AtomicValue.decimal(text.strip())
        if type_name in ("xs:double", "double"):
            if av.type == XS_BOOLEAN:
                return AtomicValue.double(1.0 if av.value else 0.0)
            stripped = text.strip()
            if stripped == "INF":
                return AtomicValue.double(float("inf"))
            if stripped == "-INF":
                return AtomicValue.double(float("-inf"))
            return AtomicValue.double(float(stripped))
        if type_name in ("xs:boolean", "boolean"):
            if av.type == XS_BOOLEAN:
                return av
            if av.type in (XS_INTEGER, XS_DECIMAL, XS_DOUBLE):
                return AtomicValue.boolean(bool(av.value) and av.value == av.value)
            stripped = text.strip()
            if stripped in ("true", "1"):
                return AtomicValue.boolean(True)
            if stripped in ("false", "0"):
                return AtomicValue.boolean(False)
            raise ValueError(stripped)
    except (ValueError, OverflowError, ArithmeticError):
        raise TypeError_(
            f"cannot cast {text!r} to {type_name}", code="FORG0001"
        ) from None
    raise TypeError_(f"unknown cast target type {type_name}", code="XPST0051")
