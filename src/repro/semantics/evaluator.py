"""The dynamic semantics of XQuery! core.

Implements the paper's evaluation judgment (Section 3.4):

    store0; dynEnv |- Expr  =>  value; Δ; store1

Each ``_eval_*`` method returns ``EvalResult(value, delta)``; the store is
threaded implicitly (it is the single mutable object), which matches the
formal rules exactly: an expression may modify the store (through node
construction or a nested ``snap``) *and* return pending update requests
that have not been applied yet.

Evaluation order is fully specified, left-to-right, as the rules of Figs. 2
and 3 require — the premises of each rule are executed top-to-bottom.
``and`` / ``or`` short-circuit left-to-right (a *defined* order, hence
permissible under the paper's "precise evaluation order" stance).
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.errors import (
    DynamicError,
    TypeError_,
    UpdateTargetError,
)
from repro.lang import core_ast as core
from repro.semantics.arithmetic import arithmetic
from repro.semantics.context import DynamicContext, FunctionRegistry
from repro.semantics.deltarope import EMPTY as _EMPTY_DELTA
from repro.semantics.deltarope import Delta
from repro.semantics.update import (
    ApplySemantics,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    SetValueRequest,
    UpdateList,
    apply_update_list,
    next_group,
)
from repro.xdm.compare import (
    compare_atomic,
    general_compare,
    nodes_in_document_order,
    value_compare,
)
from repro.xdm.nodes import Node
from repro.xdm.store import NodeKind, Store
from repro.xdm.values import (
    XS_INTEGER,
    XS_STRING,
    XS_UNTYPED,
    AtomicValue,
    Sequence,
    UntypedAtomic,
    atomize_optional,
    atomize_single,
    cast_to_number,
    effective_boolean_value,
    is_numeric,
    node_sequence,
    sequence_string,
    single_node,
)


class EvalResult(NamedTuple):
    """The (value, Δ) pair of the evaluation judgment.

    Δ is a :class:`~repro.semantics.deltarope.Delta` rope — the paper's
    Section 4.1 "specialized tree structure": concatenation is O(1), so
    the pervasive Δ-concatenation of the Fig. 2/3 rules costs linear time
    overall instead of O(|Δ| x nesting depth).
    """

    value: Sequence
    delta: Delta


_EMPTY = _EMPTY_DELTA


class Evaluator:
    """Tree-walking evaluator over core expressions.

    One evaluator instance owns one store; the dynamic context is passed
    per call.  ``globals`` holds the module-level variable bindings visible
    inside function bodies.
    """

    def __init__(
        self,
        store: Store,
        functions: FunctionRegistry | None = None,
        trace_sink: Callable[[str], None] | None = None,
        atomic_snaps: bool = False,
        use_name_index: bool = True,
    ):
        self.store = store
        if functions is None:
            from repro.semantics.functions import default_registry

            functions = default_registry()
        self.functions = functions
        self.globals: dict[str, Sequence] = {}
        # fn:doc catalog: document name -> document node handle.
        self.documents: dict[str, Node] = {}
        self.trace_sink = trace_sink or (lambda message: None)
        # With atomic_snaps, every snap rolls back on a failed application
        # (failure containment; see apply_update_list).
        self.atomic_snaps = atomic_snaps
        # Use the store's element-name index to answer descendant::name
        # steps (O(candidates x depth) instead of an O(subtree) walk).
        self.use_name_index = use_name_index
        # Use the value indexes (repro.index) for equality and contains
        # probes on descendant steps.  Installed per call from
        # ExecutionOptions(use_indexes=...); with False the evaluator
        # runs the generic scan paths — the reference semantics the
        # equivalence property compares against.
        self.use_indexes = use_name_index
        # Observability: a repro.obs.Tracer while a traced execution is in
        # flight, else None (the default — hot paths guard on None).
        self.tracer = None
        # Execution control: a repro.concurrent.ExecutionControl while a
        # deadline/cancellable execution is in flight, else None.  Polled
        # at iteration boundaries (guarded on None, same discipline as
        # the tracer) so a fired deadline stops the query cooperatively
        # without ever landing inside a snap application.
        self.control = None
        # Durability: a repro.durability.Journal while the engine is
        # journaled, else None (same None-guard discipline).  Every snap
        # application — top-level, nested, algebra-driven — threads it
        # into apply_update_list, which appends one record per non-empty
        # Δ before the snap is acknowledged.
        self.journal = None
        # Transactions: the engine's TransactionManager once sessions are
        # in use, else None.  A fully applied autocommit Δ is published to
        # it so open MVCC transactions validate against direct writes.
        # Session-private evaluators (which apply to a TransactionView,
        # not the live store) leave this None.
        self.txn_log = None
        self._dispatch = {
            core.CLiteral: self._eval_literal,
            core.CVar: self._eval_var,
            core.CContext: self._eval_context,
            core.CEmpty: self._eval_empty,
            core.CRoot: self._eval_root,
            core.CSequence: self._eval_sequence,
            core.CSequenced: self._eval_sequence,  # ';' == ',' dynamically
            core.CRange: self._eval_range,
            core.CArith: self._eval_arith,
            core.CUnary: self._eval_unary,
            core.CComparison: self._eval_comparison,
            core.CBool: self._eval_bool,
            core.CSet: self._eval_set,
            core.CIf: self._eval_if,
            core.CFor: self._eval_for,
            core.CLet: self._eval_let,
            core.COrderedFLWOR: self._eval_ordered_flwor,
            core.CQuantified: self._eval_quantified,
            core.CAxisStep: self._eval_axis_step,
            core.CPath: self._eval_path,
            core.CFilter: self._eval_filter,
            core.CCall: self._eval_call,
            core.CElem: self._eval_elem,
            core.CAttr: self._eval_attr,
            core.CText: self._eval_text,
            core.CComment: self._eval_comment,
            core.CDoc: self._eval_doc,
            core.CPI: self._eval_pi,
            core.CCopy: self._eval_copy,
            core.CInsert: self._eval_insert,
            core.CDelete: self._eval_delete,
            core.CReplace: self._eval_replace,
            core.CReplaceValue: self._eval_replace_value,
            core.CRename: self._eval_rename,
            core.CSnap: self._eval_snap,
            core.CInstanceOf: self._eval_instance_of,
            core.CCast: self._eval_cast,
            core.CTypeswitch: self._eval_typeswitch,
            core.CTreat: self._eval_treat,
        }

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def evaluate(self, expr: core.CoreExpr, context: DynamicContext) -> EvalResult:
        """Evaluate *expr*, returning its value and pending update list."""
        method = self._dispatch.get(type(expr))
        if method is None:
            raise DynamicError(f"no evaluation rule for {type(expr).__name__}")
        return method(expr, context)

    def run_snapped(
        self,
        expr: core.CoreExpr,
        context: DynamicContext,
        mode: ApplySemantics = ApplySemantics.ORDERED,
    ) -> Sequence:
        """Evaluate under the implicit top-level snap (Section 2.3: "a snap
        is always implicitly present around the top-level query")."""
        tracer = self.tracer
        if tracer is None:
            value, delta = self.evaluate(expr, context)
            # Last check before committing: a fired deadline discards the
            # pending Δ here, so a timed-out query never half-applies.
            if self.control is not None:
                self.control.check()
            apply_update_list(
                self.store, delta, mode,
                atomic=self.atomic_snaps, journal=self.journal,
                control=self.control, txn_log=self.txn_log,
            )
            return value
        with tracer.span("evaluate"):
            value, delta = self.evaluate(expr, context)
        if self.control is not None:
            self.control.check()
        with tracer.span("snap-apply"):
            apply_update_list(
                self.store, delta, mode,
                atomic=self.atomic_snaps, tracer=tracer,
                journal=self.journal, control=self.control,
                txn_log=self.txn_log,
            )
        return value

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------

    def _eval_literal(self, expr: core.CLiteral, context: DynamicContext) -> EvalResult:
        return EvalResult([expr.value], _EMPTY)

    def _eval_var(self, expr: core.CVar, context: DynamicContext) -> EvalResult:
        return EvalResult(list(context.variable(expr.name)), _EMPTY)

    def _eval_context(self, expr: core.CContext, context: DynamicContext) -> EvalResult:
        return EvalResult([context.require_context_item()], _EMPTY)

    def _eval_empty(self, expr: core.CEmpty, context: DynamicContext) -> EvalResult:
        return EvalResult([], _EMPTY)

    def _eval_root(self, expr: core.CRoot, context: DynamicContext) -> EvalResult:
        item = context.require_context_item()
        if not isinstance(item, Node):
            raise TypeError_("'/' requires the context item to be a node")
        return EvalResult([item.root], _EMPTY)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def _eval_sequence(self, expr: core.CSequence, context: DynamicContext) -> EvalResult:
        """Fig. 3 sequence rule: Expr1 fully evaluated before Expr2; values
        and deltas concatenated in order."""
        value: Sequence = []
        delta = _EMPTY
        for item_expr in expr.items:
            item_value, item_delta = self.evaluate(item_expr, context)
            value.extend(item_value)
            delta = delta + item_delta
        return EvalResult(value, delta)

    def _eval_range(self, expr: core.CRange, context: DynamicContext) -> EvalResult:
        lo_value, delta1 = self.evaluate(expr.lo, context)
        hi_value, delta2 = self.evaluate(expr.hi, context)
        delta = delta1 + delta2
        lo = atomize_optional(lo_value, "range start")
        hi = atomize_optional(hi_value, "range end")
        if lo is None or hi is None:
            return EvalResult([], delta)
        lo_n = _require_integer(lo, "range start")
        hi_n = _require_integer(hi, "range end")
        value = [AtomicValue.integer(i) for i in range(lo_n, hi_n + 1)]
        return EvalResult(value, delta)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _eval_arith(self, expr: core.CArith, context: DynamicContext) -> EvalResult:
        left_value, delta1 = self.evaluate(expr.left, context)
        right_value, delta2 = self.evaluate(expr.right, context)
        delta = delta1 + delta2
        left = atomize_optional(left_value, "left operand")
        right = atomize_optional(right_value, "right operand")
        if left is None or right is None:
            return EvalResult([], delta)
        return EvalResult([arithmetic(expr.op, left, right)], delta)

    def _eval_unary(self, expr: core.CUnary, context: DynamicContext) -> EvalResult:
        value, delta = self.evaluate(expr.operand, context)
        av = atomize_optional(value, "unary operand")
        if av is None:
            return EvalResult([], delta)
        av = cast_to_number(av)
        if expr.op == "-":
            # Negation preserves the numeric type (int/Decimal/float all
            # support unary minus directly).
            result = AtomicValue(av.type, -av.value)
        else:
            result = av
        return EvalResult([result], delta)

    # ------------------------------------------------------------------
    # Comparisons and logic
    # ------------------------------------------------------------------

    def _eval_comparison(self, expr: core.CComparison, context: DynamicContext) -> EvalResult:
        left_value, delta1 = self.evaluate(expr.left, context)
        right_value, delta2 = self.evaluate(expr.right, context)
        delta = delta1 + delta2
        if expr.style == "general":
            result = general_compare(expr.op, left_value, right_value)
            return EvalResult([AtomicValue.boolean(result)], delta)
        if expr.style == "value":
            return EvalResult(value_compare(expr.op, left_value, right_value), delta)
        # Node comparison: is, <<, >>.
        if not left_value or not right_value:
            return EvalResult([], delta)
        left_node = single_node(left_value, "node comparison operand")
        right_node = single_node(right_value, "node comparison operand")
        if expr.op == "is":
            result = left_node == right_node
        else:
            order = self.store.compare_order(left_node.nid, right_node.nid)
            result = order < 0 if expr.op == "precedes" else order > 0
        return EvalResult([AtomicValue.boolean(result)], delta)

    def _eval_bool(self, expr: core.CBool, context: DynamicContext) -> EvalResult:
        left_value, delta = self.evaluate(expr.left, context)
        left = effective_boolean_value(left_value)
        if expr.op == "and" and not left:
            return EvalResult([AtomicValue.boolean(False)], delta)
        if expr.op == "or" and left:
            return EvalResult([AtomicValue.boolean(True)], delta)
        right_value, delta2 = self.evaluate(expr.right, context)
        right = effective_boolean_value(right_value)
        return EvalResult([AtomicValue.boolean(right)], delta + delta2)

    def _eval_set(self, expr: core.CSet, context: DynamicContext) -> EvalResult:
        left_value, delta1 = self.evaluate(expr.left, context)
        right_value, delta2 = self.evaluate(expr.right, context)
        delta = delta1 + delta2
        left_nodes = node_sequence(left_value, f"{expr.op} operand")
        right_nodes = node_sequence(right_value, f"{expr.op} operand")
        if expr.op == "union":
            combined = left_nodes + right_nodes
        elif expr.op == "intersect":
            right_ids = {n.nid for n in right_nodes}
            combined = [n for n in left_nodes if n.nid in right_ids]
        else:  # except
            right_ids = {n.nid for n in right_nodes}
            combined = [n for n in left_nodes if n.nid not in right_ids]
        return EvalResult(list(nodes_in_document_order(combined)), delta)

    # ------------------------------------------------------------------
    # Control (Fig. 3)
    # ------------------------------------------------------------------

    def _eval_if(self, expr: core.CIf, context: DynamicContext) -> EvalResult:
        cond_value, delta1 = self.evaluate(expr.cond, context)
        branch = expr.then if effective_boolean_value(cond_value) else expr.orelse
        value, delta2 = self.evaluate(branch, context)
        return EvalResult(value, delta1 + delta2)

    def _eval_for(self, expr: core.CFor, context: DynamicContext) -> EvalResult:
        """Fig. 3 for rule: the source delta first, then per-iteration
        deltas in binding order."""
        source_value, delta = self.evaluate(expr.source, context)
        value: Sequence = []
        control = self.control
        for index, item in enumerate(source_value):
            if control is not None:
                control.check()
            inner = context.bind(expr.var, [item])
            if expr.position_var is not None:
                inner = inner.bind(
                    expr.position_var, [AtomicValue.integer(index + 1)]
                )
            item_value, item_delta = self.evaluate(expr.body, inner)
            value.extend(item_value)
            delta = delta + item_delta
        return EvalResult(value, delta)

    def _eval_let(self, expr: core.CLet, context: DynamicContext) -> EvalResult:
        source_value, delta1 = self.evaluate(expr.source, context)
        inner = context.bind(expr.var, source_value)
        value, delta2 = self.evaluate(expr.body, inner)
        return EvalResult(value, delta1 + delta2)

    def _eval_ordered_flwor(
        self, expr: core.COrderedFLWOR, context: DynamicContext
    ) -> EvalResult:
        """FLWOR with order by: generate the tuple stream, filter, sort,
        then evaluate the return clause in sorted order.  Deltas from the
        generation phase come first (generation order), then return-clause
        deltas in sorted order."""
        delta = _EMPTY
        control = self.control
        tuples: list[DynamicContext] = [context]
        for clause in expr.clauses:
            new_tuples: list[DynamicContext] = []
            if isinstance(clause, core.CForClause):
                for tup in tuples:
                    if control is not None:
                        control.check()
                    source_value, source_delta = self.evaluate(clause.source, tup)
                    delta = delta + source_delta
                    for index, item in enumerate(source_value):
                        bound = tup.bind(clause.var, [item])
                        if clause.position_var is not None:
                            bound = bound.bind(
                                clause.position_var,
                                [AtomicValue.integer(index + 1)],
                            )
                        new_tuples.append(bound)
            else:
                for tup in tuples:
                    if control is not None:
                        control.check()
                    source_value, source_delta = self.evaluate(clause.source, tup)
                    delta = delta + source_delta
                    new_tuples.append(tup.bind(clause.var, source_value))
            tuples = new_tuples
        if expr.where is not None:
            kept: list[DynamicContext] = []
            for tup in tuples:
                cond_value, cond_delta = self.evaluate(expr.where, tup)
                delta = delta + cond_delta
                if effective_boolean_value(cond_value):
                    kept.append(tup)
            tuples = kept
        # Compute the sort keys for every tuple.
        keyed: list[tuple[list, DynamicContext]] = []
        for tup in tuples:
            keys: list = []
            for spec in expr.specs:
                key_value, key_delta = self.evaluate(spec.expr, tup)
                delta = delta + key_delta
                keys.append(atomize_optional(key_value, "order by key"))
            keyed.append((keys, tup))
        # Stable multi-key sort: sort by the last key first.
        for index in range(len(expr.specs) - 1, -1, -1):
            spec = expr.specs[index]
            keyed.sort(
                key=lambda pair: _OrderKey(pair[0][index], spec),
                reverse=spec.descending,
            )
        value: Sequence = []
        for _, tup in keyed:
            if control is not None:
                control.check()
            ret_value, ret_delta = self.evaluate(expr.ret, tup)
            value.extend(ret_value)
            delta = delta + ret_delta
        return EvalResult(value, delta)

    def _eval_quantified(self, expr: core.CQuantified, context: DynamicContext) -> EvalResult:
        """some/every with left-to-right, short-circuit evaluation."""
        delta = _EMPTY
        want = expr.kind == "some"

        def recurse(bindings: list[tuple[str, core.CoreExpr]], ctx: DynamicContext) -> bool:
            nonlocal delta
            if not bindings:
                value, inner_delta = self.evaluate(expr.satisfies, ctx)
                delta = delta + inner_delta
                return effective_boolean_value(value)
            var, source = bindings[0]
            source_value, source_delta = self.evaluate(source, ctx)
            delta = delta + source_delta
            control = self.control
            for item in source_value:
                if control is not None:
                    control.check()
                result = recurse(bindings[1:], ctx.bind(var, [item]))
                if result == want:
                    return want
            return not want

        result = recurse(expr.bindings, context)
        return EvalResult([AtomicValue.boolean(result)], delta)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _eval_axis_step(self, expr: core.CAxisStep, context: DynamicContext) -> EvalResult:
        item = context.require_context_item()
        if not isinstance(item, Node):
            raise TypeError_(
                f"axis step {expr.axis}::... requires a node context item"
            )
        if self.use_indexes and len(expr.predicates) == 1:
            fast = self._indexed_predicate_step(
                item, expr.axis, expr.test, expr.predicates[0], context
            )
            if fast is not None:
                return EvalResult(fast, _EMPTY)
        candidates = self._axis_candidates(item, expr)
        if len(expr.predicates) == 1 and candidates:
            kept = self._attr_compare_filter(
                expr.predicates[0], candidates, context
            )
            if kept is not None:
                return EvalResult(list(nodes_in_document_order(kept)), _EMPTY)
        delta = _EMPTY
        for predicate in expr.predicates:
            candidates, delta = self._apply_predicate(
                predicate, candidates, context, delta
            )
        value = list(nodes_in_document_order(candidates))
        return EvalResult(value, delta)

    @staticmethod
    def _attr_compare_operand(side: core.CoreExpr) -> str | None:
        """The attribute name when *side* is a bare ``@name`` step."""
        if (
            isinstance(side, core.CAxisStep)
            and side.axis == "attribute"
            and side.test.kind == "name"
            and side.test.name not in (None, "*")
            and not side.predicates
        ):
            return side.test.name
        return None

    def _attr_compare_filter(
        self,
        predicate: core.CoreExpr,
        items: list,
        context: DynamicContext,
    ) -> list | None:
        """Direct-store filtering for the key-lookup predicate shape
        ``step[@name <op> $var]`` (either operand order; literals too).

        The generic path pays a dynamic-context + dispatch round trip per
        candidate; here the attribute value is read straight off the store
        record and compared with the exact ``general_compare`` semantics,
        so the result (value, Δ = empty, errors) is identical — the
        comparison is boolean-valued (never positional), both operands are
        effect-free, and a missing attribute compares as the empty
        sequence, i.e. false.  Returns None when the shape doesn't apply.
        """
        if not (
            isinstance(predicate, core.CComparison)
            and predicate.style == "general"
        ):
            return None
        left_name = self._attr_compare_operand(predicate.left)
        right_name = self._attr_compare_operand(predicate.right)
        if left_name is not None and isinstance(
            predicate.right, (core.CVar, core.CLiteral)
        ):
            name, other, flipped = left_name, predicate.right, False
        elif right_name is not None and isinstance(
            predicate.left, (core.CVar, core.CLiteral)
        ):
            name, other, flipped = right_name, predicate.left, True
        else:
            return None
        if any(node.kind is not NodeKind.ELEMENT for node in items):
            return None
        other_value, _ = self.evaluate(other, context)
        store = self.store
        op = predicate.op
        kept = []
        if (
            op == "eq"  # symmetric: operand order is irrelevant
            and len(other_value) == 1
            and isinstance(other_value[0], AtomicValue)
            and other_value[0].type in (XS_STRING, XS_UNTYPED)
        ):
            # The key-lookup case: untyped attribute content against a
            # string/untyped value compares as raw strings (_coerce_pair),
            # so the whole comparison collapses to one str equality.
            target = str(other_value[0].value)
            for node in items:
                aid = store.attribute_named(node.nid, name)
                if aid is None:
                    continue
                raw = store.value(aid)
                if ("" if raw is None else raw) == target:
                    kept.append(node)
            return kept
        for node in items:
            aid = store.attribute_named(node.nid, name)
            attr_value: Sequence = (
                [] if aid is None else [UntypedAtomic(store.value(aid) or "")]
            )
            if flipped:
                matched = general_compare(op, other_value, attr_value)
            else:
                matched = general_compare(op, attr_value, other_value)
            if matched:
                kept.append(node)
        return kept

    # ------------------------------------------------------------------
    # Value-index probe fast paths (repro.index)
    #
    # Three predicate shapes on descendant(-or-self)::name steps go
    # through the store's value indexes instead of materializing every
    # named descendant and filtering:
    #
    #   (A)  name[@attr = $v]            — attribute-value hash probe
    #   (B)  name[contains(string(.), $v)] — token-index probe
    #   (C)  name[child = $v]            — token-index probe on the
    #                                      child's full string value
    #
    # Each probe yields a candidate *superset* (the indexes are content-
    # keyed and store-wide); candidates are verified against the exact
    # predicate semantics before acceptance, so results are identical to
    # the generic path — only the work is proportional to matches, not
    # to the subtree.  Every shape falls back (returns None) whenever
    # any precondition is not met: non-string comparand, unanchorable
    # needle, snapshot-local context (base indexes do not cover the
    # snapshot's construction space), or a store without probes.
    # ------------------------------------------------------------------

    def _indexed_predicate_step(
        self,
        item,
        axis: str,
        test: core.CNodeTest,
        predicate: core.CoreExpr,
        context: DynamicContext,
    ) -> list | None:
        if axis not in ("descendant", "descendant-or-self"):
            return None
        if test.kind != "name" or test.name in (None, "*"):
            return None
        store = self.store
        if getattr(store, "attr_eq_probe", None) is None:
            return None
        is_local = getattr(store, "_is_local", None)
        if is_local is not None and is_local(item.nid):
            return None
        or_self = axis == "descendant-or-self"
        name = test.name
        if (
            isinstance(predicate, core.CComparison)
            and predicate.style == "general"
            and predicate.op == "eq"
        ):
            out = self._probe_attr_eq(
                store, item, name, or_self, predicate, context
            )
            if out is None:
                out = self._probe_child_eq(
                    store, item, name, or_self, predicate, context
                )
            return out
        if (
            isinstance(predicate, core.CCall)
            and predicate.name == "contains"
            and len(predicate.args) == 2
        ):
            return self._probe_contains(
                store, item, name, or_self, predicate, context
            )
        return None

    @staticmethod
    def _eq_comparand(
        predicate: core.CComparison, operand_of: Callable
    ) -> tuple[str, core.CoreExpr] | None:
        """Match one side of a general '=' with *operand_of* (a bare
        ``@attr`` or ``child`` step recognizer) when the other side is a
        variable or literal; '=' is symmetric in the collapse case."""
        left = operand_of(predicate.left)
        if left is not None and isinstance(
            predicate.right, (core.CVar, core.CLiteral)
        ):
            return left, predicate.right
        right = operand_of(predicate.right)
        if right is not None and isinstance(
            predicate.left, (core.CVar, core.CLiteral)
        ):
            return right, predicate.left
        return None

    def _string_target(
        self, other: core.CoreExpr, context: DynamicContext
    ) -> str | None:
        """The raw-string comparand of the key-lookup collapse case (see
        _attr_compare_filter): a singleton string/untyped atomic."""
        other_value, _ = self.evaluate(other, context)
        if (
            len(other_value) == 1
            and isinstance(other_value[0], AtomicValue)
            and other_value[0].type in (XS_STRING, XS_UNTYPED)
        ):
            return str(other_value[0].value)
        return None

    @staticmethod
    def _contained(store, nid: int, root: int, or_self: bool) -> bool:
        if nid == root:
            return or_self
        cur = store.parent(nid)
        while cur is not None:
            if cur == root:
                return True
            cur = store.parent(cur)
        return False

    @staticmethod
    def _ancestor_chain(store, tid: int, root: int) -> list[int] | None:
        """Ancestors of *tid* from its parent up to and including *root*;
        None when *tid* is not in *root*'s subtree."""
        chain: list[int] = []
        cur = store.parent(tid)
        while cur is not None:
            chain.append(cur)
            if cur == root:
                return chain
            cur = store.parent(cur)
        return None

    @staticmethod
    def _probe_result(store, nids) -> list:
        return [Node(store, nid) for nid in store.sort_document_order(nids)]

    def _indexed_descendant_path(
        self, expr: core.CPath, context: DynamicContext
    ) -> EvalResult | None:
        """The uncollapsed ``B//name[P]`` shape.

        ``B//name[P]`` compiles to
        ``CPath(CPath(B, descendant-or-self::node()), child::name[P])``
        and the simplifier leaves it that way when it cannot prove ``P``
        non-positional.  The probe shapes recognized by
        :meth:`_indexed_predicate_step` are all boolean-valued, for
        which the composition is exactly ``B/descendant::name[P]`` — so
        the same index fast paths apply.  ``B`` is restricted to
        variable/context/root references: they are pure and idempotent,
        so falling back to the generic path after evaluating them here
        cannot duplicate side effects.
        """
        inner = expr.base
        if not isinstance(inner, core.CPath):
            return None
        if not isinstance(inner.base, (core.CVar, core.CContext, core.CRoot)):
            return None
        dos = inner.step
        if not (
            isinstance(dos, core.CAxisStep)
            and dos.axis == "descendant-or-self"
            and dos.test.kind == "node"
            and not dos.predicates
        ):
            return None
        step = expr.step
        if not (
            isinstance(step, core.CAxisStep)
            and step.axis == "child"
            and step.test.kind == "name"
            and len(step.predicates) == 1
        ):
            return None
        base_value, delta = self.evaluate(inner.base, context)
        base_nodes = node_sequence(base_value, "path step input")
        base_nodes = list(nodes_in_document_order(base_nodes))
        results: Sequence = []
        size = len(base_nodes)
        for position, node in enumerate(base_nodes, start=1):
            focus = DynamicContext(context.variables, node, position, size)
            fast = self._indexed_predicate_step(
                node, "descendant", step.test, step.predicates[0], focus
            )
            if fast is None:
                return None
            results.extend(fast)
        return EvalResult(list(nodes_in_document_order(results)), delta)

    def _probe_attr_eq(
        self, store, item, name, or_self, predicate, context
    ) -> list | None:
        matched = self._eq_comparand(predicate, self._attr_compare_operand)
        if matched is None:
            return None
        attr_name, other = matched
        target = self._string_target(other, context)
        if target is None:
            return None
        aids = store.attr_eq_probe(attr_name, target)
        if aids is None:
            return None
        out = []
        for aid in aids:
            owner = store.parent(aid)
            if owner is None or store.name(owner) != name:
                continue
            if store.kind(owner) is not NodeKind.ELEMENT:
                continue
            if self._contained(store, owner, item.nid, or_self):
                out.append(owner)
        return self._probe_result(store, out)

    @staticmethod
    def _child_step_operand(side: core.CoreExpr) -> str | None:
        """The element name when *side* is a bare ``child`` name step."""
        if (
            isinstance(side, core.CAxisStep)
            and side.axis == "child"
            and side.test.kind == "name"
            and side.test.name not in (None, "*")
            and not side.predicates
        ):
            return side.test.name
        return None

    def _probe_child_eq(
        self, store, item, name, or_self, predicate, context
    ) -> list | None:
        matched = self._eq_comparand(predicate, self._child_step_operand)
        if matched is None:
            return None
        child_name, other = matched
        target = self._string_target(other, context)
        if not target:  # empty string: no text to witness it — scan
            return None
        tids = store.token_probe(target)
        if tids is None:
            return None
        candidates: set[int] = set()
        for tid in tids:
            chain = self._ancestor_chain(store, tid, item.nid)
            if chain is None:
                continue
            for i in range(len(chain) - 1):
                child, parent = chain[i], chain[i + 1]
                if (
                    store.name(child) == child_name
                    and store.kind(child) is NodeKind.ELEMENT
                    and store.name(parent) == name
                    and store.kind(parent) is NodeKind.ELEMENT
                    and (parent != item.nid or or_self)
                ):
                    candidates.add(parent)
        out = []
        for nid in candidates:
            for cid in store.children(nid):
                if (
                    store.kind(cid) is NodeKind.ELEMENT
                    and store.name(cid) == child_name
                    and store.string_value(cid) == target
                ):
                    out.append(nid)
                    break
        return self._probe_result(store, out)

    @staticmethod
    def _is_context_string(expr: core.CoreExpr) -> bool:
        """``.`` or ``string(.)``/``string()`` — shapes whose value under
        a node focus is exactly the node's string value."""
        if isinstance(expr, core.CContext):
            return True
        return (
            isinstance(expr, core.CCall)
            and expr.name == "string"
            and (
                not expr.args
                or (
                    len(expr.args) == 1
                    and isinstance(expr.args[0], core.CContext)
                )
            )
        )

    def _probe_contains(
        self, store, item, name, or_self, predicate, context
    ) -> list | None:
        haystack, needle_expr = predicate.args
        if not self._is_context_string(haystack):
            return None
        if not isinstance(needle_expr, (core.CVar, core.CLiteral)):
            return None
        needle_value, _ = self.evaluate(needle_expr, context)
        if len(needle_value) != 1 or not isinstance(
            needle_value[0], AtomicValue
        ):
            return None
        needle = needle_value[0].lexical()
        if not needle:  # contains(s, "") is uniformly true — scan
            return None
        tids = store.token_probe(needle)
        if tids is None:
            return None
        candidates: set[int] = set()
        for tid in tids:
            chain = self._ancestor_chain(store, tid, item.nid)
            if chain is None:
                continue
            for nid in chain:
                if nid == item.nid and not or_self:
                    continue
                if (
                    store.kind(nid) is NodeKind.ELEMENT
                    and store.name(nid) == name
                ):
                    candidates.add(nid)
        out = [
            nid for nid in candidates if needle in store.string_value(nid)
        ]
        return self._probe_result(store, out)

    def _axis_candidates(self, item: Node, expr: core.CAxisStep) -> list:
        """Nodes of the step's axis passing its node test, in axis order.

        For ``descendant(-or-self)::name`` steps the store's element-name
        index answers the question without walking the subtree; the result
        is doc-order sorted, which *is* axis order for forward axes.
        """
        if (
            self.use_name_index
            and expr.axis in ("descendant", "descendant-or-self")
            and expr.test.kind == "name"
            and expr.test.name not in (None, "*")
        ):
            ids = self.store.descendants_named(item.nid, expr.test.name)
            if (
                expr.axis == "descendant-or-self"
                and item.kind is NodeKind.ELEMENT
                and item.name == expr.test.name
            ):
                ids.append(item.nid)
            ids = self.store.sort_document_order(ids)
            return [Node(self.store, nid) for nid in ids]
        return [
            node
            for node in _axis_nodes(item, expr.axis)
            if _node_test(node, expr.axis, expr.test)
        ]

    def _apply_predicate(
        self,
        predicate: core.CoreExpr,
        items: list,
        context: DynamicContext,
        delta: Delta,
    ) -> tuple[list, Delta]:
        """Filter *items* by one predicate with positional semantics; the
        enclosing variables remain visible inside the predicate.  Returns
        the kept items and the delta extended with predicate effects."""
        kept = []
        size = len(items)
        for position, item in enumerate(items, start=1):
            focus = DynamicContext(context.variables, item, position, size)
            pred_value, pred_delta = self.evaluate(predicate, focus)
            delta = delta + pred_delta
            if _predicate_truth(pred_value, position):
                kept.append(item)
        return kept, delta

    def _eval_path(self, expr: core.CPath, context: DynamicContext) -> EvalResult:
        if self.use_indexes:
            fast = self._indexed_descendant_path(expr, context)
            if fast is not None:
                return fast
        base_value, delta = self.evaluate(expr.base, context)
        base_nodes = node_sequence(base_value, "path step input")
        base_nodes = list(nodes_in_document_order(base_nodes))
        results: Sequence = []
        size = len(base_nodes)
        for position, node in enumerate(base_nodes, start=1):
            focus = DynamicContext(context.variables, node, position, size)
            step_value, step_delta = self.evaluate(expr.step, focus)
            results.extend(step_value)
            delta = delta + step_delta
        has_nodes = any(isinstance(item, Node) for item in results)
        has_atomics = any(not isinstance(item, Node) for item in results)
        if has_nodes and has_atomics:
            raise TypeError_(
                "path step produced both nodes and atomic values"
            )
        if has_nodes:
            results = list(nodes_in_document_order(results))
        return EvalResult(results, delta)

    def _eval_filter(self, expr: core.CFilter, context: DynamicContext) -> EvalResult:
        value, delta = self.evaluate(expr.base, context)
        items = list(value)
        for predicate in expr.predicates:
            items, delta = self._apply_predicate(predicate, items, context, delta)
        return EvalResult(items, delta)

    # ------------------------------------------------------------------
    # Function calls (Fig. 3)
    # ------------------------------------------------------------------

    def _eval_call(self, expr: core.CCall, context: DynamicContext) -> EvalResult:
        resolved = self.functions.resolve(expr.name, len(expr.args))
        # Fig. 3: arguments are evaluated left to right, their deltas are
        # concatenated, then the body delta follows.
        arg_values: list[Sequence] = []
        delta = _EMPTY
        for arg in expr.args:
            arg_value, arg_delta = self.evaluate(arg, context)
            arg_values.append(arg_value)
            delta = delta + arg_delta
        if isinstance(resolved, core.CFunction):
            bindings = dict(zip(resolved.params, arg_values))
            body_context = DynamicContext(dict(self.globals)).bind_many(bindings)
            body_value, body_delta = self.evaluate(resolved.body, body_context)
            return EvalResult(body_value, delta + body_delta)
        # Built-in: pure by construction (no update requests).
        return EvalResult(resolved(self, context, arg_values), delta)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    def _resolve_ctor_name(
        self, name: str | core.CoreExpr, context: DynamicContext, what: str
    ) -> tuple[str, UpdateList]:
        if isinstance(name, str):
            return name, _EMPTY
        value, delta = self.evaluate(name, context)
        av = atomize_single(value, f"{what} name")
        text = av.lexical().strip()
        if not text:
            raise TypeError_(f"empty {what} name")
        return text, delta

    def _eval_elem(self, expr: core.CElem, context: DynamicContext) -> EvalResult:
        """Element construction: content nodes are deep-copied into the new
        element (the XQuery 1.0 copy semantics the paper leans on in its
        normalization rule); adjacent atomics become one text node."""
        name, delta = self._resolve_ctor_name(expr.name, context, "element")
        items: Sequence = []
        for content_expr in expr.content:
            content_value, content_delta = self.evaluate(content_expr, context)
            items.extend(content_value)
            delta = delta + content_delta
        element = self.store.create_element(name)
        self._populate_element(element, items)
        return EvalResult([Node(self.store, element)], delta)

    def _populate_element(self, element: int, items: Sequence) -> None:
        store = self.store
        pending_atomics: list[AtomicValue] = []
        seen_content = False

        def flush_atomics() -> None:
            nonlocal pending_atomics
            if pending_atomics:
                text = " ".join(av.lexical() for av in pending_atomics)
                store.append_child(element, store.create_text(text))
                pending_atomics = []

        for item in items:
            if isinstance(item, AtomicValue):
                seen_content = True
                pending_atomics.append(item)
                continue
            node: Node = item
            kind = node.kind
            if kind is NodeKind.ATTRIBUTE:
                if seen_content:
                    raise TypeError_(
                        "attribute constructors must precede other element "
                        "content (XQTY0024)"
                    )
                copy = store.deep_copy(node.nid)
                store.set_attribute(element, copy)
                continue
            flush_atomics()
            seen_content = True
            if kind is NodeKind.DOCUMENT:
                for child in node.children:
                    store.append_child(element, store.deep_copy(child.nid))
            else:
                store.append_child(element, store.deep_copy(node.nid))
        flush_atomics()

    def _eval_attr(self, expr: core.CAttr, context: DynamicContext) -> EvalResult:
        name, delta = self._resolve_ctor_name(expr.name, context, "attribute")
        parts: list[str] = []
        for part in expr.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                part_value, part_delta = self.evaluate(part, context)
                delta = delta + part_delta
                parts.append(sequence_string(part_value))
        attr = self.store.create_attribute(name, "".join(parts))
        return EvalResult([Node(self.store, attr)], delta)

    def _eval_text(self, expr: core.CText, context: DynamicContext) -> EvalResult:
        if expr.content is None:
            return EvalResult([], _EMPTY)
        value, delta = self.evaluate(expr.content, context)
        if not value:
            return EvalResult([], delta)
        text = sequence_string(value)
        node = self.store.create_text(text)
        return EvalResult([Node(self.store, node)], delta)

    def _eval_comment(self, expr: core.CComment, context: DynamicContext) -> EvalResult:
        if expr.content is None:
            return EvalResult([], _EMPTY)
        value, delta = self.evaluate(expr.content, context)
        node = self.store.create_comment(sequence_string(value))
        return EvalResult([Node(self.store, node)], delta)

    def _eval_doc(self, expr: core.CDoc, context: DynamicContext) -> EvalResult:
        doc = self.store.create_document()
        delta = _EMPTY
        if expr.content is not None:
            value, delta = self.evaluate(expr.content, context)
            # Content is processed like element content (adjacent atomics
            # merge into one space-separated text node); attributes are
            # rejected by the store (documents cannot carry them).
            self._populate_element(doc, value)
        return EvalResult([Node(self.store, doc)], delta)

    def _eval_pi(self, expr: core.CPI, context: DynamicContext) -> EvalResult:
        target, delta = self._resolve_ctor_name(expr.target, context, "PI")
        text = ""
        if expr.content is not None:
            value, content_delta = self.evaluate(expr.content, context)
            delta = delta + content_delta
            text = sequence_string(value)
        node = self.store.create_processing_instruction(target, text)
        return EvalResult([Node(self.store, node)], delta)

    # ------------------------------------------------------------------
    # XQuery! operations (Fig. 2)
    # ------------------------------------------------------------------

    def _eval_copy(self, expr: core.CCopy, context: DynamicContext) -> EvalResult:
        """copy{Expr}: deep copy via the data-model operation; atomic items
        pass through unchanged."""
        value, delta = self.evaluate(expr.source, context)
        copied: Sequence = []
        for item in value:
            if isinstance(item, Node):
                copied.append(Node(self.store, self.store.deep_copy(item.nid)))
            else:
                copied.append(item)
        return EvalResult(copied, delta)

    def _eval_insert(self, expr: core.CInsert, context: DynamicContext) -> EvalResult:
        """Fig. 2 insert rule: evaluate the (already copy-wrapped) source,
        then the target, then run the InsertLocation judgment and emit the
        insert request.  The *target* is validated now; the exact slot
        (e.g. which child is currently last) resolves at application time —
        see :mod:`repro.semantics.update` for why the paper's own Section
        3.4 example requires this."""
        source_value, delta1 = self.evaluate(expr.source, context)
        target_value, delta2 = self.evaluate(expr.target, context)
        nodes = self._content_to_nodes(source_value)
        target = single_node(target_value, "insert target")
        if expr.position in ("first", "last"):
            if target.kind not in (NodeKind.ELEMENT, NodeKind.DOCUMENT):
                raise UpdateTargetError(
                    "insert into requires an element or document target"
                )
        else:
            if self.store.parent(target.nid) is None:
                raise UpdateTargetError(
                    f"insert {expr.position} requires a target with a parent"
                )
        request = InsertRequest(
            nodes=tuple(node.nid for node in nodes),
            position=expr.position,
            target=target.nid,
        )
        return EvalResult([], delta1 + delta2 + Delta.leaf(request))

    def _content_to_nodes(self, value: Sequence) -> list[Node]:
        """Convert an insert/replace source to nodes: atomic values become
        text nodes (runs of adjacent atomics are space-joined, as in
        element content construction), nodes pass through."""
        nodes: list[Node] = []
        pending: list[AtomicValue] = []

        def flush() -> None:
            if pending:
                text = " ".join(av.lexical() for av in pending)
                nodes.append(Node(self.store, self.store.create_text(text)))
                pending.clear()

        for item in value:
            if isinstance(item, AtomicValue):
                pending.append(item)
            else:
                flush()
                nodes.append(item)
        flush()
        return nodes

    def _eval_delete(self, expr: core.CDelete, context: DynamicContext) -> EvalResult:
        """Fig. 2 delete rule, generalized to node sequences (the paper's
        own use case deletes ``$log/logentry``, a sequence)."""
        value, delta = self.evaluate(expr.target, context)
        nodes = node_sequence(value, "delete target")
        requests = [DeleteRequest(node.nid) for node in nodes]
        return EvalResult([], delta + Delta.from_iterable(requests))

    def _eval_replace(self, expr: core.CReplace, context: DynamicContext) -> EvalResult:
        """Fig. 2 replace rule:
        Δ3 = (Δ1, Δ2, insert(nodeseq, nodepar, node), delete(node))."""
        target_value, delta1 = self.evaluate(expr.target, context)
        source_value, delta2 = self.evaluate(expr.source, context)
        target = single_node(target_value, "replace target")
        nodes = self._content_to_nodes(source_value)
        parent = self.store.parent(target.nid)
        if parent is None:
            raise UpdateTargetError("replace target must have a parent")
        # The insert/delete pair of one replace shares a group token so the
        # conflict checker treats it as a single logical write.
        group = next_group()
        if target.kind is NodeKind.ATTRIBUTE:
            # Attribute replacement: the new nodes become attributes of the
            # parent element; there is no sibling anchor.
            request = InsertRequest(
                nodes=tuple(node.nid for node in nodes),
                position="last",
                target=parent,
                group=group,
            )
        else:
            # Fig. 2: insert(nodeseq, nodepar, node) then delete(node) —
            # the new nodes land right after the node being replaced.
            request = InsertRequest(
                nodes=tuple(node.nid for node in nodes),
                position="after",
                target=target.nid,
                group=group,
            )
        delta = (
            delta1
            + delta2
            + Delta.leaf(request)
            + Delta.leaf(DeleteRequest(target.nid, group=group))
        )
        return EvalResult([], delta)

    def _eval_replace_value(
        self, expr: core.CReplaceValue, context: DynamicContext
    ) -> EvalResult:
        """replace value of {t} with {s}: atomize the source to a string
        and request a content overwrite of the target node."""
        target_value, delta1 = self.evaluate(expr.target, context)
        source_value, delta2 = self.evaluate(expr.source, context)
        target = single_node(target_value, "replace value of target")
        text = sequence_string(source_value)
        request = SetValueRequest(target.nid, text)
        return EvalResult([], delta1 + delta2 + Delta.leaf(request))

    def _eval_rename(self, expr: core.CRename, context: DynamicContext) -> EvalResult:
        target_value, delta1 = self.evaluate(expr.target, context)
        name_value, delta2 = self.evaluate(expr.name, context)
        target = single_node(target_value, "rename target")
        name = atomize_single(name_value, "rename name").lexical().strip()
        if not name:
            raise UpdateTargetError("rename requires a non-empty name")
        request = RenameRequest(target.nid, name)
        return EvalResult([], delta1 + delta2 + Delta.leaf(request))

    def _eval_snap(self, expr: core.CSnap, context: DynamicContext) -> EvalResult:
        """Fig. 2 snap rule: evaluate the body, apply its Δ to the (possibly
        already modified) store, return the value with an empty Δ.  The
        stack-like nesting behaviour falls out of the recursion."""
        value, delta = self.evaluate(expr.body, context)
        # Check before applying: an interrupt must discard this snap's Δ,
        # never land mid-application.
        if self.control is not None:
            self.control.check()
        apply_update_list(
            self.store,
            delta,
            ApplySemantics.from_keyword(expr.mode),
            atomic=self.atomic_snaps,
            tracer=self.tracer,
            journal=self.journal,
            control=self.control,
            txn_log=self.txn_log,
        )
        return EvalResult(value, _EMPTY)


    def _eval_typeswitch(self, expr: core.CTypeswitch, context: DynamicContext) -> EvalResult:
        """typeswitch: operand evaluated once; first matching case wins;
        untaken branches are not evaluated (their effects never fire)."""
        from repro.semantics.types import matches_sequence_type

        operand_value, delta = self.evaluate(expr.operand, context)
        for case in expr.cases:
            if matches_sequence_type(operand_value, case.type_):
                inner = context
                if case.var is not None:
                    inner = context.bind(case.var, operand_value)
                value, case_delta = self.evaluate(case.ret, inner)
                return EvalResult(value, delta + case_delta)
        inner = context
        if expr.default_var is not None:
            inner = context.bind(expr.default_var, operand_value)
        value, default_delta = self.evaluate(expr.default, inner)
        return EvalResult(value, delta + default_delta)

    # ------------------------------------------------------------------
    # Dynamic typing operators
    # ------------------------------------------------------------------

    def _eval_instance_of(self, expr: core.CInstanceOf, context: DynamicContext) -> EvalResult:
        from repro.semantics.types import matches_sequence_type

        value, delta = self.evaluate(expr.operand, context)
        result = matches_sequence_type(value, expr.type_)
        return EvalResult([AtomicValue.boolean(result)], delta)

    def _eval_treat(self, expr: core.CTreat, context: DynamicContext) -> EvalResult:
        """treat as: identity when the value matches, XPDY0050 otherwise."""
        from repro.semantics.types import matches_sequence_type

        value, delta = self.evaluate(expr.operand, context)
        if not matches_sequence_type(value, expr.type_):
            raise TypeError_(
                f"treat as {expr.type_}: value does not match", code="XPDY0050"
            )
        return EvalResult(value, delta)

    def _eval_cast(self, expr: core.CCast, context: DynamicContext) -> EvalResult:
        from repro.semantics.types import cast_atomic

        value, delta = self.evaluate(expr.operand, context)
        av = atomize_optional(value, "cast operand")
        if av is None:
            if expr.castable:
                return EvalResult([AtomicValue.boolean(expr.optional)], delta)
            if expr.optional:
                return EvalResult([], delta)
            raise TypeError_("cast of an empty sequence requires '?'")
        if expr.castable:
            try:
                cast_atomic(av, expr.type_name)
                return EvalResult([AtomicValue.boolean(True)], delta)
            except TypeError_:
                return EvalResult([AtomicValue.boolean(False)], delta)
        return EvalResult([cast_atomic(av, expr.type_name)], delta)


# ----------------------------------------------------------------------
# Axis iteration and node tests
# ----------------------------------------------------------------------

def _axis_nodes(node: Node, axis: str):
    """Yield the nodes of *axis* from *node*, in axis order (reverse axes
    nearest-first; results are doc-order sorted by the step afterwards)."""
    if axis == "child":
        yield from node.children
    elif axis == "descendant":
        yield from node.descendants()
    elif axis == "descendant-or-self":
        yield from node.descendants(include_self=True)
    elif axis == "attribute":
        yield from node.attributes
    elif axis == "self":
        yield node
    elif axis == "parent":
        parent = node.parent
        if parent is not None:
            yield parent
    elif axis == "ancestor":
        yield from node.ancestors()
    elif axis == "ancestor-or-self":
        yield from node.ancestors(include_self=True)
    elif axis == "following-sibling":
        yield from _siblings(node, after=True)
    elif axis == "preceding-sibling":
        yield from reversed(list(_siblings(node, after=False)))
    elif axis == "following":
        yield from _following(node)
    elif axis == "preceding":
        yield from reversed(list(_preceding(node)))
    else:
        raise DynamicError(f"unsupported axis {axis!r}")


def _siblings(node: Node, after: bool):
    parent = node.parent
    if parent is None or node.kind is NodeKind.ATTRIBUTE:
        return
    found = False
    for sibling in parent.children:
        if sibling == node:
            found = True
            continue
        if found == after:
            yield sibling


def _following(node: Node):
    for ancestor in node.ancestors(include_self=True):
        for sibling in _siblings(ancestor, after=True):
            yield sibling
            yield from sibling.descendants()


def _preceding(node: Node):
    ancestor_ids = {a.nid for a in node.ancestors()}
    for ancestor in node.ancestors(include_self=True):
        for sibling in _siblings(ancestor, after=False):
            if sibling.nid in ancestor_ids:
                continue
            yield sibling
            yield from sibling.descendants()


_PRINCIPAL_ATTRIBUTE_AXES = ("attribute",)


def _node_test(node: Node, axis: str, test: core.CNodeTest) -> bool:
    kind = node.kind
    if test.kind == "name":
        if axis in _PRINCIPAL_ATTRIBUTE_AXES:
            if kind is not NodeKind.ATTRIBUTE:
                return False
        elif kind is not NodeKind.ELEMENT:
            return False
        return test.name == "*" or node.name == test.name
    if test.kind == "node":
        return True
    if test.kind == "text":
        return kind is NodeKind.TEXT
    if test.kind == "comment":
        return kind is NodeKind.COMMENT
    if test.kind == "processing-instruction":
        if kind is not NodeKind.PROCESSING_INSTRUCTION:
            return False
        return test.name is None or node.name == test.name
    if test.kind == "element":
        if kind is not NodeKind.ELEMENT:
            return False
        return test.name in (None, "*") or node.name == test.name
    if test.kind == "attribute":
        if kind is not NodeKind.ATTRIBUTE:
            return False
        return test.name in (None, "*") or node.name == test.name
    if test.kind == "document-node":
        return kind is NodeKind.DOCUMENT
    raise DynamicError(f"unsupported node test {test.kind!r}")


# ----------------------------------------------------------------------
# Predicates and ordering keys
# ----------------------------------------------------------------------

def _predicate_truth(value: Sequence, position: int) -> bool:
    """Positional semantics: a numeric singleton predicate selects by
    position; anything else goes through the effective boolean value."""
    if len(value) == 1 and isinstance(value[0], AtomicValue) and is_numeric(value[0]):
        return float(value[0].value) == float(position)
    return effective_boolean_value(value)


def _require_integer(av: AtomicValue, what: str) -> int:
    av = cast_to_number(av)
    if av.type == XS_INTEGER:
        return int(av.value)
    if float(av.value).is_integer():
        return int(av.value)
    raise TypeError_(f"{what} must be an integer, got {av.lexical()}")


class _OrderKey:
    """Comparable wrapper for order-by keys with empty-sequence handling.

    The comparison is defined in *ascending semantic space*: with ``empty
    least`` (the default) the empty sequence is less than every value, with
    ``empty greatest`` it is greater.  ``list.sort(reverse=True)`` then
    realizes descending order — which correctly puts an 'empty least' key
    *last* on a descending sort, per the XQuery rules.
    """

    __slots__ = ("av", "spec")

    def __init__(self, av: AtomicValue | None, spec: core.COrderSpec):
        self.av = av
        self.spec = spec

    def _empty_is_least(self) -> bool:
        return True if self.spec.empty_least is None else self.spec.empty_least

    def __lt__(self, other: "_OrderKey") -> bool:
        if self.av is None and other.av is None:
            return False
        if self.av is None:
            return self._empty_is_least()
        if other.av is None:
            return not self._empty_is_least()
        try:
            return compare_atomic(self.av, other.av) < 0
        except TypeError_:
            return False
