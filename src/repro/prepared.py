"""Prepared queries: compile once, execute many times.

The paper's motivating workload (Section 2: the auction Web service with
``get_item``, logging and snap-controlled archiving) is a *server*
scenario — the same handful of updating queries runs over and over
against a live store.  Re-running the full frontend (lex → parse →
normalize → simplify → static check → compile) on every call makes the
per-request cost frontend-bound instead of store/Δ-bound.

:class:`PreparedQuery` holds the frontend's output — the normalized core
module and, when requested, the optimized algebra plan — so repeated
execution pays only the dynamic cost.  :class:`PreparedQueryCache` is the
bounded LRU the engine routes ``execute()`` through, keyed by
``(query_text, optimize, snap semantics)``.

Parameter binding follows the prepared-statement idiom (the
``XQPreparedExpression.bindString`` pattern of XQJ): a query references
free ``$variables`` and each :meth:`PreparedQuery.execute` call supplies
their values out-of-band, so user input is never spliced into query text
and can never change the query's structure::

    pq = engine.prepare('get_item($itemid, $userid)')
    pq.execute(bindings={"itemid": "item3", "userid": "person7"})

Bindings are scoped to the call: they are installed for the duration of
the execution (visible to the body *and* to called functions, which read
module globals) and restored afterwards.

Durability note: a prepared query needs no extra plumbing to be durable —
the journal hook lives on the evaluator
(:attr:`~repro.semantics.evaluator.Evaluator.journal`), which every
execution path shares, so snaps committed through a
:class:`~repro.durability.DurableEngine` are journaled whether the query
went through ``execute()`` or a long-lived :class:`PreparedQuery`.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Mapping, Optional

from repro.concurrent.control import ExecutionControl
from repro.errors import DynamicError
from repro.lang import core_ast as core
from repro.obs.tracer import Tracer, maybe_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.plan import Plan
    from repro.engine import Engine, ExecutionOptions, PythonValue, QueryResult
    from repro.semantics.update import ApplySemantics


_MISSING = object()


class PreparedQuery:
    """A query with its frontend work done once.

    Instances are created by :meth:`Engine.prepare`; they stay tied to the
    engine that prepared them (plans embed that engine's store handles and
    function registry).  Executing re-runs only the *dynamic* prolog steps
    the paper's semantics require per run — variable-declaration
    initializers evaluate under the implicit snap on every call, exactly
    as a fresh ``Engine.execute`` would — while parse trees and plans are
    reused untouched.
    """

    __slots__ = (
        "_engine",
        "_module",
        "_plan",
        "query_text",
        "optimize",
        "_generation",
        "_semantics",
        "_readonly",
    )

    def __init__(
        self,
        engine: "Engine",
        query_text: str,
        module: core.CModule,
        plan: Optional["Plan"],
        optimize: bool,
        generation: int,
        semantics: Optional["ApplySemantics"] = None,
    ):
        self._engine = engine
        self._module = module
        self._plan = plan
        self.query_text = query_text
        self.optimize = optimize
        # Function-registry generation at prepare time; the engine cache
        # re-prepares when new user functions change name resolution.
        self._generation = generation
        # Update-application semantics resolved at prepare time (a plan
        # bakes the snap mode in; the cache key includes it).  None means
        # "the engine's default at execute time".
        self._semantics = semantics
        # Lazily computed purity verdict (see is_readonly).
        self._readonly: bool | None = None

    @property
    def external_variables(self) -> tuple[str, ...]:
        """Names of ``declare variable $x external;`` declarations (the
        variables a caller is expected to supply via *bindings*).  Free
        variables that are never declared do not appear here — they
        resolve against engine globals or per-call bindings at runtime."""
        return tuple(
            decl.name
            for decl in self._module.declarations
            if isinstance(decl, core.CVarDecl) and decl.expr is None
        )

    def is_readonly(self) -> bool:
        """Conservative purity verdict for the whole prepared module.

        True only when the effect analysis (:mod:`repro.algebra.properties`)
        proves that neither the query body, nor any variable-declaration
        initializer, may update the store or contain an explicit ``snap``.
        The concurrent executor uses this to route a query to the
        lock-free snapshot path; "don't know" safely reports False.
        """
        cached = self._readonly
        if cached is not None:
            return cached
        from repro.algebra.properties import EffectAnalyzer

        analyzer = EffectAnalyzer(self._engine.functions)
        verdict = True
        for decl in self._module.declarations:
            if isinstance(decl, core.CVarDecl) and decl.expr is not None:
                if not analyzer.analyze(decl.expr).pure:
                    verdict = False
                    break
        if verdict and self._module.body is not None:
            verdict = analyzer.analyze(self._module.body).pure
        self._readonly = verdict
        return verdict

    def execute(
        self,
        bindings: Mapping[str, "PythonValue"] | None = None,
        *,
        options: Optional["ExecutionOptions"] = None,
        _tracer: Tracer | None = None,
    ) -> "QueryResult":
        """Run the prepared query.

        *bindings* maps variable names (without ``$``) to Python values;
        they are coerced with :func:`repro.engine.to_sequence`, installed
        for the duration of this call, and restored afterwards.  The query
        text is never touched — bound values are data, not syntax.

        *options* carries the per-execution fields of
        :class:`~repro.engine.ExecutionOptions`: ``bindings`` (the
        positional argument wins on a name collision), ``collect_stats``
        (attach :class:`~repro.obs.report.QueryStats` to the result) and
        ``explain``.  ``optimize``/``semantics`` were fixed at prepare
        time and are ignored here.  ``_tracer`` is the engine-internal
        handoff of a tracer that already recorded the frontend phases.
        """
        from repro.engine import QueryResult, to_sequence

        engine = self._engine
        tracer = _tracer
        if options is not None:
            if options.bindings:
                merged = dict(options.bindings)
                if bindings:
                    merged.update(bindings)
                bindings = merged
            if tracer is None and options.collect_stats:
                tracer = Tracer()
        hook = engine.on_slow_query
        start = (
            time.perf_counter()
            if (hook is not None and tracer is None)
            else None
        )
        semantics = self._semantics or engine.default_semantics
        globals_ = engine.evaluator.globals
        saved: dict[str, object] = {}
        if bindings:
            for name, value in bindings.items():
                saved[name] = globals_.get(name, _MISSING)
                globals_[name] = to_sequence(value)
        declared: set[str] = set()
        if tracer is not None:
            # Install the tracer on the two hot components for the span of
            # this call; both guard on None, so the disabled path stays a
            # single pointer compare.
            engine.evaluator.tracer = tracer
            engine.store._obs = tracer
        control = ExecutionControl.from_options(options)
        if control is not None:
            # Same install-for-the-call discipline as the tracer: the
            # evaluator (and the algebra interpreter, which reads it from
            # there) polls at iteration boundaries.  Covers the dynamic
            # prolog too — a variable initializer can loop as well.
            engine.evaluator.control = control
        saved_use_indexes = engine.evaluator.use_indexes
        if options is not None:
            # Per-call index switch: the evaluator's fast paths and the
            # IndexScan executor both read this flag, so one install
            # point covers interpreted and compiled execution.
            engine.evaluator.use_indexes = options.use_indexes
        try:
            # Imports and function registration are idempotent after the
            # first call (dict writes of the same objects) but keep the
            # exact visible behavior of a fresh execute: a later module
            # load that shadowed one of this query's prolog functions is
            # overridden back for this query, as re-parsing would.
            engine._resolve_imports(self._module)
            for decl in self._module.declarations:
                if isinstance(decl, core.CFunction):
                    engine.functions.register_user(decl)
            with maybe_span(tracer, "prolog"):
                for decl in self._module.declarations:
                    if not isinstance(decl, core.CVarDecl):
                        continue
                    if decl.expr is None:
                        if decl.name not in globals_:
                            raise DynamicError(
                                f"external variable ${decl.name} is not "
                                "bound; pass it via execute(bindings={...}) "
                                "or Engine.bind()"
                            )
                        continue
                    value = engine.evaluator.run_snapped(
                        decl.expr, engine._context(), semantics
                    )
                    globals_[decl.name] = value
                    declared.add(decl.name)
            if self._module.body is None:
                result = QueryResult([], engine)
            elif self._plan is not None:
                from repro.algebra.execute import execute_plan

                items = execute_plan(self._plan, engine, tracer=tracer)
                result = QueryResult(items, engine)
            else:
                items = engine.evaluator.run_snapped(
                    self._module.body,
                    engine._context(),
                    semantics,
                )
                result = QueryResult(items, engine)
        finally:
            if tracer is not None:
                engine.evaluator.tracer = None
                engine.store._obs = None
            if control is not None:
                engine.evaluator.control = None
            engine.evaluator.use_indexes = saved_use_indexes
            for name, old in saved.items():
                if name in declared:
                    # The prolog re-declared a bound name; the declaration
                    # wins, as it would under plain execute.
                    continue
                if old is _MISSING:
                    globals_.pop(name, None)
                else:
                    globals_[name] = old
        if tracer is not None:
            from repro.obs.report import QueryStats

            result.stats = QueryStats.from_tracer(tracer)
        if (
            options is not None
            and options.explain
            and self._module.body is not None
        ):
            result.explain = engine.explain(self.query_text)
        if hook is not None:
            elapsed_ms = (
                tracer.elapsed_ms()
                if tracer is not None
                else (time.perf_counter() - start) * 1000.0
            )
            if elapsed_ms >= engine.slow_query_ms:
                from repro.obs.report import SlowQueryRecord

                hook(
                    SlowQueryRecord(
                        query_text=self.query_text,
                        duration_ms=elapsed_ms,
                        threshold_ms=engine.slow_query_ms,
                        stats=result.stats,
                        timestamp=SlowQueryRecord.now(),
                    )
                )
        return result

    def __repr__(self) -> str:
        head = self.query_text.strip().splitlines()[0][:60]
        return (
            f"PreparedQuery({head!r}, optimize={self.optimize}, "
            f"plan={'yes' if self._plan is not None else 'no'})"
        )


class CacheStats:
    """Counters for the prepared-query cache (mutable, engine-lifetime)."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations})"
        )


class PreparedQueryCache:
    """A bounded LRU of :class:`PreparedQuery` objects.

    Keys are ``(query_text, optimize, semantics)`` — the inputs that
    change what the frontend produces.  Entries also remember the
    function-registry generation they were built against; a lookup whose
    entry predates a registry change is treated as a miss (new user
    functions can change name resolution and the optimizer's purity
    verdicts), mirroring how ``register_module``/``load_module`` clear the
    cache wholesale.
    """

    def __init__(self, maxsize: int = 128):
        from collections import OrderedDict

        if maxsize < 1:
            raise ValueError("prepared-query cache needs maxsize >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, PreparedQuery]" = OrderedDict()
        self.stats = CacheStats()
        # OrderedDict.move_to_end during a concurrent re-link corrupts the
        # LRU order (unlike plain dict ops it is a multi-step re-link), so
        # every cache operation takes this mutex.  Uncontended acquisition
        # is tens of nanoseconds — noise next to a query execution.
        self._mutex = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def lookup(self, key: tuple, generation: int) -> PreparedQuery | None:
        """Return the cached entry for *key* if still valid, else None."""
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry._generation != generation:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def store(self, key: tuple, prepared: PreparedQuery) -> None:
        with self._mutex:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> int:
        """Drop every entry (counted as invalidations); returns how many."""
        with self._mutex:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped

    def keys(self) -> list[tuple]:
        """Cache keys, least- to most-recently used (for tests/REPL)."""
        with self._mutex:
            return list(self._entries)

    def __repr__(self) -> str:
        return (
            f"PreparedQueryCache(size={len(self)}/{self.maxsize}, "
            f"{self.stats!r})"
        )
