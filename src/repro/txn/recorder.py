"""Per-statement Δ buffering for transactions.

A transaction's statements run through the normal snap machinery — the
session's private evaluator calls
:func:`~repro.semantics.update.apply_update_list` exactly like any
other execution — but against the :class:`~repro.txn.view.
TransactionView` instead of the live store, and with a
:class:`TxnRecorder` installed where a
:class:`~repro.durability.journal.Journal` would sit.  The recorder
duck-types the journal's two-call commit protocol
(``build_entry`` before the Δ applies, ``commit`` after it applied
cleanly), so it observes precisely the statements that *succeeded*, in
order, each with:

* its update requests in applied order (view node ids),
* persist-style rows for every constructed subtree the requests
  reference, captured **pre-apply** (the journal's own discipline —
  replay must materialize payloads in the state the ops will find
  them), captured at most once per transaction (a later statement
  referencing the same tree would otherwise capture post-mutation
  rows), and
* the view's local id watermark before/after the statement, so commit
  can replay allocation deterministically against the live store.

A statement that fails a precondition never reaches ``commit`` and
leaves no trace here — same contract as the real journal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.semantics.update import ApplySemantics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.txn.view import TransactionView


class BufferedStatement:
    """One successfully applied statement's worth of buffered Δ."""

    __slots__ = ("requests", "semantics", "rows", "pre_local", "post_local")

    def __init__(
        self,
        requests: list,
        semantics: ApplySemantics,
        rows: list[list],
        pre_local: int,
        post_local: int | None = None,
    ):
        self.requests = requests
        self.semantics = semantics
        self.rows = rows
        self.pre_local = pre_local
        self.post_local = post_local


def view_subtree_rows(view: "TransactionView", root: int) -> list[list]:
    """Persist-style rows for the whole subtree rooted at *root*,
    resolved through the view (sees buffered mutations and local
    construction alike)."""
    rows: list[list] = []
    stack = [root]
    while stack:
        nid = stack.pop()
        rec = view._rec(nid)
        rows.append(
            [
                nid,
                rec.kind.value,
                rec.name,
                rec.parent,
                list(rec.children),
                list(rec.attributes),
                rec.value,
            ]
        )
        stack.extend(rec.attributes)
        stack.extend(rec.children)
    return rows


class TxnRecorder:
    """Journal-shaped buffer installed on a session's private evaluator."""

    def __init__(self, view: "TransactionView"):
        self._view = view
        self.statements: list[BufferedStatement] = []
        # Payload roots already captured by an earlier statement of this
        # transaction: commit replays statements in order, so the rows
        # the first referencing statement captured are the ones replay
        # must materialize.
        self._captured: set[int] = set()
        # Journal-protocol surface consulted by apply_update_list.
        self.breaker: Any | None = None

    def build_entry(
        self,
        store: "TransactionView",
        requests: list,
        semantics: ApplySemantics,
    ) -> BufferedStatement | None:
        """Capture one statement's Δ pre-apply (None for an empty Δ)."""
        if not requests:
            return None
        view = self._view
        from repro.durability.journal import encode_request

        rows: list[list] = []
        for request in requests:
            _, refs = encode_request(request)
            for ref in refs:
                root = view.root(ref)
                if root < view.ceiling or root in self._captured:
                    continue
                self._captured.add(root)
                rows.extend(view_subtree_rows(view, root))
        return BufferedStatement(
            requests=list(requests),
            semantics=semantics,
            rows=rows,
            pre_local=view._local_next,
        )

    def commit(
        self, entry: BufferedStatement, store: "TransactionView"
    ) -> None:
        """The statement applied cleanly against the view: buffer it."""
        entry.post_local = self._view._local_next
        self.statements.append(entry)

    @property
    def total_ops(self) -> int:
        return sum(len(stmt.requests) for stmt in self.statements)
