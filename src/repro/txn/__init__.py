"""Sessions and MVCC transactions with paper-native OCC validation."""

from repro.txn.recorder import BufferedStatement, TxnRecorder
from repro.txn.session import Session, Transaction, TransactionManager
from repro.txn.view import TransactionView, begin_transaction_view

__all__ = [
    "BufferedStatement",
    "Session",
    "Transaction",
    "TransactionManager",
    "TransactionView",
    "TxnRecorder",
    "begin_transaction_view",
]
