"""Sessions and optimistic multi-snap transactions.

The paper's snap gives one statement atomicity; this module composes
*statements* into transactions the paper's §3.2 machinery can validate:

* A :class:`Session` (obtained from ``engine.session()``) owns at most
  one open :class:`Transaction` at a time and carries the policy knobs
  (default semantics, tracer, admission limits, post-commit hook).
* A :class:`Transaction` pins a
  :class:`~repro.txn.view.TransactionView` — an O(1) MVCC snapshot of
  the store at begin time — and runs every ``execute()`` against it
  with a private evaluator, buffering each statement's Δ through a
  :class:`~repro.txn.recorder.TxnRecorder`.  Statements see their own
  writes (the view resolves mutated records first) and nothing that
  commits concurrently (snapshot isolation while open).
* ``commit()`` is first-committer-wins OCC: under the store write lock
  the transaction's merged Δ is checked — via
  :func:`~repro.semantics.conflicts.check_cross_conflict_free`, the
  §3.2 rules replayed across transaction boundaries — against the Δ of
  every transaction that committed after this one's snapshot.  A rule
  violation aborts with :class:`~repro.errors.TransactionConflictError`
  (REPR0008, classified *transient* by the retry policy: rerun the
  transaction on a fresh snapshot).  A clean validation replays the
  buffered statements against the live store (id-translated by a
  constant offset), maintains the value indexes atomically under the
  same lock hold, journals the whole commit as **one atomic frame
  group** when the engine is durable, and publishes the Δ for later
  validators.

Aborted or rolled-back transactions leave no trace: the view dies with
the transaction, the store and journal were never touched.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.concurrent.control import ExecutionControl
from repro.errors import (
    ConflictError,
    DurabilityError,
    DynamicError,
    StaleEpochError,
    TransactionConflictError,
    UpdateApplicationError,
    XQueryError,
)
from repro.lang import core_ast as core
from repro.obs.tracer import Tracer, maybe_span
from repro.semantics.conflicts import check_cross_conflict_free
from repro.semantics.update import (
    ApplySemantics,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    SetValueRequest,
)
from repro.txn.recorder import TxnRecorder
from repro.txn.view import TransactionView, begin_transaction_view
from repro.xdm.nodes import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import QueryResult


def _rehandle(value, store) -> list:
    """Copy a sequence, pointing every Node handle at *store*."""
    out = []
    for item in value:
        if isinstance(item, Node):
            out.append(Node(store, item.nid))
        else:
            out.append(item)
    return out


def _map_request(request, mapper: Callable[[int], Any]):
    """Rebuild a request with every node reference passed through
    *mapper* (commit-time id translation, or hashable placeholders for
    validation — the conflict tables only need hashability)."""
    if isinstance(request, InsertRequest):
        return InsertRequest(
            nodes=tuple(mapper(node) for node in request.nodes),
            position=request.position,
            target=mapper(request.target),
            group=request.group,
        )
    if isinstance(request, DeleteRequest):
        return DeleteRequest(node=mapper(request.node), group=request.group)
    if isinstance(request, RenameRequest):
        return RenameRequest(node=mapper(request.node), name=request.name)
    if isinstance(request, SetValueRequest):
        return SetValueRequest(node=mapper(request.node), text=request.text)
    raise TypeError(f"cannot translate request {request!r}")


def _map_row(row: list, mapper: Callable[[int], int]) -> list:
    nid, kind, name, parent, children, attributes, value = row
    return [
        mapper(nid),
        kind,
        name,
        None if parent is None else mapper(parent),
        [mapper(child) for child in children],
        [mapper(attr) for attr in attributes],
        value,
    ]


class _Committed:
    """One committed transaction's published Δ (live node ids)."""

    __slots__ = ("seq", "requests")

    def __init__(self, seq: int, requests: tuple):
        self.seq = seq
        self.requests = requests


class TransactionManager:
    """Per-engine OCC bookkeeping: commit sequencing and the committed
    log the validation phase replays against.

    The log is pruned to what some *active* transaction might still
    validate against (entries at or below the oldest active begin
    sequence can never conflict with anyone).  Direct, non-session
    writes (plain ``engine.execute`` autocommits) are published here
    too — via the evaluator's ``txn_log`` hook — so an open transaction
    cannot miss a conflict with them.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.commit_seq = 0
        self._log: list[_Committed] = []
        self._active: dict[int, int] = {}
        self._next_token = 0

    def register(self, begin_seq: int) -> int:
        with self._mutex:
            self._next_token += 1
            token = self._next_token
            self._active[token] = begin_seq
            return token

    def unregister(self, token: int) -> None:
        with self._mutex:
            self._active.pop(token, None)
            self._prune_locked()

    def committed_after(self, begin_seq: int) -> list[_Committed]:
        with self._mutex:
            return [c for c in self._log if c.seq > begin_seq]

    def record_commit(self, requests: list) -> int:
        with self._mutex:
            self.commit_seq += 1
            if self._active:
                self._log.append(
                    _Committed(self.commit_seq, tuple(requests))
                )
            self._prune_locked()
            return self.commit_seq

    def record_applied(self, requests: list) -> None:
        """Evaluator ``txn_log`` hook: an autocommitted (non-session) Δ
        just applied to the live store."""
        if requests:
            self.record_commit(requests)

    def _prune_locked(self) -> None:
        if not self._log:
            return
        floor = min(self._active.values(), default=self.commit_seq)
        drop = 0
        for committed in self._log:
            if committed.seq > floor:
                break
            drop += 1
        if drop:
            del self._log[:drop]

    @property
    def active_count(self) -> int:
        with self._mutex:
            return len(self._active)

    @property
    def log_length(self) -> int:
        with self._mutex:
            return len(self._log)


class Transaction:
    """One optimistic transaction: a pinned snapshot view, buffered Δs,
    and a first-committer-wins commit.  Obtain via
    :meth:`Session.begin` / :meth:`Session.transaction`."""

    def __init__(self, session: "Session"):
        self._session = session
        engine = session._engine
        store = engine.store
        self._store = store
        self._manager: TransactionManager = session._manager
        self._active = True
        self._statements = 0
        self.commit_seq: int | None = None
        shared = engine.evaluator
        with store.lock.write_locked():
            view = begin_transaction_view(store)
            self._begin_seq = self._manager.commit_seq
            globals_ = {
                name: _rehandle(value, view)
                for name, value in shared.globals.items()
            }
            documents = {
                name: Node(view, node.nid)
                for name, node in shared.documents.items()
            }
        self._view: TransactionView = view
        self._token = self._manager.register(self._begin_seq)
        from repro.semantics.evaluator import Evaluator

        evaluator = Evaluator(
            view,
            engine.functions,
            trace_sink=shared.trace_sink,
            # Statement-level failure containment: a failed statement
            # rolls the *view* back and the transaction stays usable.
            atomic_snaps=True,
            use_name_index=shared.use_name_index,
        )
        evaluator.globals = globals_
        evaluator.documents = documents
        # Value-index probes cannot see buffered writes; the view
        # refuses them and the evaluator falls back to scans.
        evaluator.use_indexes = False
        self._recorder = TxnRecorder(view)
        evaluator.journal = self._recorder
        self._evaluator = evaluator
        session._tracer.count("txn.begin")

    # -- introspection ----------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    @property
    def statements(self) -> int:
        """Statements executed so far in this transaction."""
        return self._statements

    @property
    def pending_ops(self) -> int:
        """Buffered update requests awaiting commit."""
        return self._recorder.total_ops

    def _require_active(self) -> None:
        if not self._active:
            raise XQueryError(
                "this transaction is no longer active (already committed, "
                "rolled back, or aborted); begin a new one on the session"
            )

    # -- statements -------------------------------------------------------

    def execute(
        self,
        query: str,
        bindings: Mapping | None = None,
        *,
        semantics: str | None = None,
        timeout_ms: float | None = None,
        cancel=None,
        options=None,
    ) -> "QueryResult":
        """Run one statement inside the transaction.

        Reads resolve against the transaction's snapshot plus its own
        buffered writes (read-your-writes); updates buffer their Δ for
        commit.  Result node handles point into the transaction's view
        and are session-scoped: after commit, re-read through the
        engine.  Bindings passed here stay installed for the rest of
        the transaction.
        """
        self._require_active()
        from repro.engine import QueryResult, _merge_options, to_sequence
        from repro.semantics.context import DynamicContext

        session = self._session
        engine = session._engine
        view = self._view
        if view.detached:
            raise TransactionConflictError(
                "the store was restored while this transaction was open; "
                "its snapshot is detached — retry on a fresh transaction"
            )
        opts = _merge_options(
            options,
            semantics=semantics,
            timeout_ms=timeout_ms,
            cancel=cancel,
        )
        mode = (
            opts.resolved_semantics
            or session._semantics
            or engine.default_semantics
        )
        prepared = engine.prepare(query)
        module = prepared._module
        evaluator = self._evaluator
        control = ExecutionControl.from_options(opts)
        evaluator.control = control
        try:
            merged: dict = {}
            if opts.bindings:
                merged.update(opts.bindings)
            if bindings:
                merged.update(bindings)
            for name, value in merged.items():
                evaluator.globals[name] = _rehandle(
                    to_sequence(value), view
                )
            for decl in module.declarations:
                if not isinstance(decl, core.CVarDecl):
                    continue
                if decl.expr is None:
                    if decl.name not in evaluator.globals:
                        raise DynamicError(
                            f"external variable ${decl.name} is not "
                            "bound; pass it via bindings"
                        )
                    continue
                context = DynamicContext(dict(evaluator.globals))
                evaluator.globals[decl.name] = evaluator.run_snapped(
                    decl.expr, context, mode
                )
            if module.body is None:
                items: list = []
            else:
                context = DynamicContext(dict(evaluator.globals))
                items = evaluator.run_snapped(module.body, context, mode)
        finally:
            evaluator.control = None
        self._statements += 1
        session._tracer.count("txn.statements")
        return QueryResult(items, engine)

    # -- outcome ----------------------------------------------------------

    def commit(self) -> None:
        """Validate, apply, journal and publish the buffered Δ.

        First-committer-wins: raises
        :class:`~repro.errors.TransactionConflictError` when the §3.2
        cross-transaction rules find this transaction's Δ in conflict
        with any Δ committed since this transaction began (the store
        and journal are untouched).  On a durable engine the whole
        commit lands as one atomic journal frame group.  Either way the
        transaction is finished afterwards — begin a new one to retry.
        """
        self._require_active()
        session = self._session
        engine = session._engine
        store = self._store
        manager = self._manager
        tracer = session._tracer
        statements = self._recorder.statements
        total_ops = self._recorder.total_ops
        committed = False
        try:
            if total_ops == 0:
                # Read-only transaction: nothing to validate, apply or
                # journal — trivially serializable at its begin point.
                tracer.count("txn.commits")
                committed = True
                return
            span_tracer = tracer if type(tracer) is Tracer else None
            with store.lock.write_locked():
                view = self._view
                if view.detached:
                    tracer.count("txn.aborts")
                    raise TransactionConflictError(
                        "the store was restored while this transaction "
                        "was open; its buffered Δ no longer has a base "
                        "to validate against"
                    )
                ceiling = view.ceiling
                token = self._token

                def placeholder(nid: int):
                    # Transaction-local ids must not collide with live
                    # ids in the shared conflict tables; the tables
                    # only need hashable keys.
                    if nid >= ceiling:
                        return ("txn", token, nid)
                    return nid

                mine = [
                    _map_request(request, placeholder)
                    for stmt in statements
                    for request in stmt.requests
                ]
                with maybe_span(span_tracer, "txn.validate"):
                    for other in manager.committed_after(self._begin_seq):
                        try:
                            check_cross_conflict_free(
                                list(other.requests), mine
                            )
                        except ConflictError as exc:
                            tracer.count("txn.conflicts")
                            tracer.count("txn.aborts")
                            raise TransactionConflictError(
                                "transaction aborted by first-committer-"
                                f"wins validation: {exc.message}",
                                conflicts_with_seq=other.seq,
                                detail=exc.message,
                            ) from exc
                if session._limits is not None:
                    guard = session._limits.guard(store)
                    if guard is not None:
                        # Admission bound on the merged Δ, same knob
                        # that bounds a single snap's pending list.
                        guard.check_delta(total_ops)
                journal = engine.evaluator.journal
                breaker = journal.breaker if journal is not None else None
                if breaker is not None:
                    # Degraded read-only mode applies to transactions
                    # too: refuse before anything touches the store.
                    breaker.admit()
                # Constant-offset id translation: view-local ids (at or
                # above the ceiling) land at nid+offset; base ids are
                # live ids already.  Re-seeding the allocator at each
                # statement's translated pre-watermark makes apply-time
                # allocations land exactly where the view's did, so
                # every cross-statement reference stays consistent.
                offset = store._next_id - ceiling

                def to_live(nid: int) -> int:
                    return nid + offset if nid >= ceiling else nid

                live_statements = [
                    (
                        [
                            _map_request(request, to_live)
                            for request in stmt.requests
                        ],
                        [_map_row(row, to_live) for row in stmt.rows],
                        stmt.pre_local + offset,
                        (stmt.post_local or stmt.pre_local) + offset,
                        stmt.semantics,
                    )
                    for stmt in statements
                ]
                from repro.durability.journal import (
                    JournalEntry,
                    encode_request,
                    materialize_rows,
                )

                checkpoint = store.checkpoint()
                applied: list = []
                try:
                    with maybe_span(span_tracer, "txn.apply"):
                        for requests, rows, pre, post, _sem in (
                            live_statements
                        ):
                            materialize_rows(store, rows)
                            store._reset_ids(pre)
                            for request in requests:
                                request.apply(store)
                            if store._next_id != post:
                                raise UpdateApplicationError(
                                    "transaction replay diverged: store "
                                    f"watermark {store._next_id} != "
                                    f"expected {post}"
                                )
                            applied.extend(requests)
                except XQueryError as exc:
                    # Validation is Δ-vs-Δ; a precondition the rules
                    # cannot see (e.g. an anchor moved by a commuting
                    # commit) can still fail here.  All-or-nothing:
                    # restore and abort as a (retryable) conflict.
                    store.restore(checkpoint)
                    if breaker is not None:
                        breaker.release_probe()
                    tracer.count("txn.aborts")
                    raise TransactionConflictError(
                        "transaction aborted: a buffered update failed "
                        f"against the committed store ({exc})",
                        detail=str(exc),
                    ) from exc
                if journal is not None:
                    entries = [
                        JournalEntry(
                            seq=0,  # assigned by commit_group
                            pre_next_id=pre,
                            semantics=sem.value,
                            ops=[
                                encode_request(request)[0]
                                for request in requests
                            ],
                            nodes=rows,
                            post_next_id=post,
                        )
                        for requests, rows, pre, post, sem in (
                            live_statements
                        )
                    ]
                    try:
                        with maybe_span(span_tracer, "txn.journal"):
                            journal.commit_group(
                                entries, store, txn_id=token
                            )
                    except OSError as exc:
                        store.restore(checkpoint)
                        if breaker is not None:
                            breaker.record_failure(
                                f"journal group append failed: {exc}"
                            )
                        tracer.count("txn.aborts")
                        raise DurabilityError(
                            f"journal group append failed: {exc}"
                        ) from exc
                    except StaleEpochError:
                        # A deposed primary's fenced group commit:
                        # un-apply and let the typed refusal through.
                        store.restore(checkpoint)
                        tracer.count("txn.aborts")
                        raise
                    if breaker is not None:
                        breaker.record_success()
                elif breaker is not None:
                    breaker.release_probe()
                self.commit_seq = manager.record_commit(applied)
            tracer.count("txn.commits")
            tracer.count("txn.ops_committed", total_ops)
            committed = True
        finally:
            self._finish()
        if committed and session._on_commit is not None:
            session._on_commit()

    def rollback(self) -> None:
        """Discard the buffered Δ; the store never saw it (no-op when
        the transaction already finished)."""
        if not self._active:
            return
        self._session._tracer.count("txn.aborts")
        self._finish()

    def _finish(self) -> None:
        if not self._active:
            return
        self._active = False
        self._store.release_snapshot(self._view)
        self._manager.unregister(self._token)
        session = self._session
        if session._txn is self:
            session._txn = None


class Session:
    """An interactive connection to one engine: begin/execute/commit.

    Obtained from ``engine.session(...)`` (one keyword-only surface on
    :class:`~repro.engine.Engine`,
    :class:`~repro.durability.durable.DurableEngine` and
    :class:`~repro.concurrent.executor.ConcurrentExecutor`).  A session
    is a cheap, single-threaded handle; open as many as needed — their
    transactions validate against each other through the engine's
    shared :class:`TransactionManager`.

    ``execute()`` outside an explicit :meth:`begin` auto-begins a
    transaction; nothing is visible to other sessions until
    :meth:`commit`.  Using the session as a context manager rolls back
    an uncommitted transaction on exit (commit is always explicit).
    """

    def __init__(
        self,
        engine,
        *,
        semantics: str | None = None,
        tracer=None,
        limits=None,
        on_commit: Callable[[], None] | None = None,
    ):
        if semantics is not None and not isinstance(
            semantics, ApplySemantics
        ):
            semantics = ApplySemantics(semantics)
        self._engine = engine
        self._semantics = semantics
        self._tracer = tracer if tracer is not None else Tracer()
        self._limits = limits
        self._on_commit = on_commit
        self._manager: TransactionManager = engine.txn_manager
        self._txn: Transaction | None = None
        self._closed = False

    # -- lifecycle --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def transaction_active(self) -> bool:
        return self._txn is not None and self._txn.active

    def begin(self) -> Transaction:
        """Open a transaction (snapshot pinned now).  One at a time."""
        if self._closed:
            raise XQueryError("this session is closed")
        if self.transaction_active:
            raise XQueryError(
                "a transaction is already active on this session; "
                "commit or roll it back first"
            )
        self._txn = Transaction(self)
        return self._txn

    def _current(self) -> Transaction:
        if self._txn is not None and self._txn.active:
            return self._txn
        return self.begin()

    def execute(
        self,
        query: str,
        bindings: Mapping | None = None,
        **kwargs,
    ) -> "QueryResult":
        """Run a statement in the current transaction (auto-begins)."""
        return self._current().execute(query, bindings, **kwargs)

    def commit(self) -> None:
        """Commit the current transaction (error when none is open)."""
        if not self.transaction_active:
            raise XQueryError("no transaction is active on this session")
        assert self._txn is not None
        self._txn.commit()

    def rollback(self) -> None:
        """Roll back the current transaction (no-op when none is open)."""
        if self._txn is not None:
            self._txn.rollback()

    @contextmanager
    def transaction(self):
        """Scope one transaction: commit on clean exit, roll back on
        exception (and on an explicit in-scope ``rollback()``, commit
        is skipped)."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if txn.active:
                txn.rollback()
            raise
        if txn.active:
            txn.commit()

    def close(self) -> None:
        """Roll back any open transaction and refuse further use."""
        if self._txn is not None:
            self._txn.rollback()
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "in-transaction" if self.transaction_active else "idle"
        )
        return f"Session(engine={type(self._engine).__name__}, {state})"
