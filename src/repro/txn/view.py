"""A writable MVCC view: the read/write workspace of one transaction.

A :class:`~repro.concurrent.snapshot.StoreSnapshot` already gives a
transaction everything but writes: an O(1) frozen view of the store at
begin time (pre-image overlay, ceiling) plus a local id space for
construction.  :class:`TransactionView` extends it with *buffered
mutability*: the mutators' single record-resolution gateway
(``_local_rec``) is overridden to copy a base record into the local
space on first write — copy-on-first-write at transaction granularity —
after which every read through the view resolves the local (mutated)
record first.  That is exactly read-your-writes: statements inside the
transaction see their own effects, while the base store and every other
snapshot stay untouched until commit replays the buffered Δ under the
store write lock.

The view also supports :meth:`checkpoint`/:meth:`restore` over its
*local* state only, so ``apply_update_list(atomic=True)`` gives each
statement inside the transaction the same failure containment a snap
has against the live store: a failed statement rolls the view back and
leaves the transaction usable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.concurrent.snapshot import StoreSnapshot
from repro.errors import StoreError
from repro.xdm.store import NodeKind, _NodeRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xdm.store import Store


class _ViewCheckpoint:
    """Frozen copy of a view's local (mutable) state."""

    __slots__ = ("records", "local_next", "name_index", "materialized")

    def __init__(
        self,
        records: dict[int, tuple],
        local_next: int,
        name_index: dict[str, set[int]],
        materialized: set[int],
    ):
        self.records = records
        self.local_next = local_next
        self.name_index = name_index
        self.materialized = materialized


class TransactionView(StoreSnapshot):
    """A snapshot that buffers writes instead of refusing them.

    Open one with :func:`begin_transaction_view` (which registers it for
    pre-image feeding like any snapshot).  All of the base class's
    derived-data memos assume base records are immutable; here a write
    can touch a base record's local copy, so the memos are dropped on
    every mutation once any base record has been materialized, and the
    descendant name lookup always consults the local index (a locally
    constructed element can now live *under* a base node).
    """

    def __init__(
        self,
        store: "Store",
        records: dict[int, _NodeRecord],
        ceiling: int,
        version: int,
    ):
        super().__init__(store, records, ceiling, version)
        # Base ids whose records were copied into the local space for
        # mutation.  Empty ⇒ the view behaves exactly like a snapshot
        # (pure construction), and the memo fast paths stay on.
        self._materialized: set[int] = set()

    # -- the copy-on-first-write gateway ----------------------------------

    def _forget_memos(self) -> None:
        if self._string_values:
            self._string_values.clear()
        if self._descendants_named:
            self._descendants_named.clear()

    def _local_rec(self, nid: int) -> _NodeRecord:
        rec = self._local.get(nid)
        if rec is None:
            # Resolve the snapshot-time record (StoreError for unknown
            # ids — same failure the live store's mutators give) and
            # copy it into the local space.  From here on the view
            # reads the mutable copy.
            snap = self._rec(nid)
            rec = _NodeRecord(snap.kind, snap.name, snap.value)
            rec.parent = snap.parent
            rec.children = list(snap.children)
            rec.attributes = list(snap.attributes)
            self._local[nid] = rec
            self._materialized.add(nid)
            if snap.kind is NodeKind.ELEMENT and snap.name:
                self._local_name_index.setdefault(snap.name, set()).add(nid)
        if self._materialized:
            # Once any base record is writable the immutability premise
            # behind the shared memos is gone: a mutation of a local
            # node attached under a base node changes base string
            # values and descendant sets too.  Dropping the memos on
            # every mutation is cheap (dict.clear) and always safe.
            self._forget_memos()
        return rec

    # -- derived data that must see buffered writes -----------------------

    def descendants_named(self, nid: int, name: str) -> list[int]:
        # The base implementation consults the local name index only for
        # local context nodes; in a transaction view, locally created
        # (or materialized) elements can sit under *any* node, and
        # nothing may be memoized across mutations.
        candidates: set[int] = set()
        ceiling = self._ceiling
        live = self.store._name_index.get(name)
        if live:
            for c in tuple(live):
                if c < ceiling:
                    candidates.add(c)
        for c, pre in list(self._overlay.items()):
            if pre.kind is NodeKind.ELEMENT and pre.name == name:
                candidates.add(c)
        for c in tuple(self._local_name_index.get(name, ())):
            candidates.add(c)
        out = []
        for candidate in candidates:
            if candidate == nid:
                continue
            try:
                crec = self._rec(candidate)
            except StoreError:
                continue
            if crec.kind is not NodeKind.ELEMENT or crec.name != name:
                continue
            cur = crec.parent
            while cur is not None:
                if cur == nid:
                    out.append(candidate)
                    break
                cur = self._rec(cur).parent
        return out

    def string_value(self, nid: int) -> str:
        # Same computation as the base class, but never memoized: the
        # value can change under buffered writes.
        from repro.xdm.store import _HAS_CHILDREN, _HAS_VALUE

        rec = self._rec(nid)
        if rec.kind in _HAS_VALUE:
            return rec.value or ""
        parts: list[str] = []
        stack = list(reversed(rec.children))
        while stack:
            cur = self._rec(stack.pop())
            if cur.kind is NodeKind.TEXT:
                parts.append(cur.value or "")
            elif cur.kind in _HAS_CHILDREN:
                stack.extend(reversed(cur.children))
        return "".join(parts)

    def attr_eq_probe(self, name: str, value: str) -> tuple[int, ...] | None:
        # The live value indexes know nothing about buffered writes
        # (changed attribute values, locally attached attributes), so
        # index probes are disabled inside a transaction — the caller
        # falls back to the generic scan, which reads through _rec and
        # therefore sees the buffered state.
        return None

    def token_probe(self, needle: str) -> tuple[int, ...] | None:
        return None

    # -- statement-level failure containment -------------------------------

    def checkpoint(self) -> _ViewCheckpoint:
        records = {
            nid: (
                rec.kind,
                rec.name,
                rec.parent,
                tuple(rec.children),
                tuple(rec.attributes),
                rec.value,
            )
            for nid, rec in self._local.items()
        }
        return _ViewCheckpoint(
            records,
            self._local_next,
            {name: set(ids) for name, ids in self._local_name_index.items()},
            set(self._materialized),
        )

    def restore(self, checkpoint: _ViewCheckpoint) -> None:
        local: dict[int, _NodeRecord] = {}
        for nid, row in checkpoint.records.items():
            kind, name, parent, children, attributes, value = row
            rec = _NodeRecord(kind, name, value)
            rec.parent = parent
            rec.children = list(children)
            rec.attributes = list(attributes)
            local[nid] = rec
        self._local = local
        self._local_next = checkpoint.local_next
        self._local_name_index = {
            name: set(ids) for name, ids in checkpoint.name_index.items()
        }
        self._materialized = set(checkpoint.materialized)
        self._forget_memos()
        self._order_cache.clear()
        self._cached_roots.clear()

    def __repr__(self) -> str:
        return (
            f"TransactionView(ceiling={self._ceiling}, "
            f"local={len(self._local)}, "
            f"materialized={len(self._materialized)}, "
            f"detached={self._detached})"
        )


def begin_transaction_view(store: "Store") -> TransactionView:
    """Open a :class:`TransactionView` of *store*'s current state.

    Mirrors :meth:`Store.begin_snapshot` (the view participates in the
    same pre-image feed); the caller must hold the store write lock so
    the (records, ceiling, version) triple is consistent, and must hand
    the view back with :meth:`Store.release_snapshot`.
    """
    view = TransactionView(
        store=store,
        records=store._records,
        ceiling=store._next_id,
        version=store._version,
    )
    store._snapshots.append(view)
    return view
