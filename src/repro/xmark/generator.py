"""Generator for XMark-style auction documents.

Produces the subset of the XMark schema [23] that the paper's queries
touch::

    <site>
      <regions>
        <namerica> <item id="item0"> <name/> <payment/> ... </item> ... </namerica>
        <europe>   ...                                               </europe>
      </regions>
      <people>
        <person id="person0"> <name/> <emailaddress/> <city/> ... </person> ...
      </people>
      <open_auctions>
        <open_auction id="open_auction0">
          <itemref item="..."/> <initial/> <bidder><increase/></bidder>* <current/>
        </open_auction> ...
      </open_auctions>
      <closed_auctions>
        <closed_auction>
          <seller person="..."/> <buyer person="..."/> <itemref item="..."/> <price/>
        </closed_auction> ...
      </closed_auctions>
    </site>

All randomness is driven by ``random.Random(seed)`` — identical configs
produce identical documents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_FIRST_NAMES = (
    "Kasidit", "Vivian", "Takehisa", "Jinpo", "Farrel", "Mehrdad", "Yolanda",
    "Dilip", "Sibel", "Auric", "Umesh", "Matilde", "Piotr", "Rosalia",
    "Chenyi", "Amadou", "Ingrid", "Bogdan", "Noriko", "Severin",
)

_LAST_NAMES = (
    "Luangjina", "Casareale", "Yamaguchi", "Zhu", "Stemple", "Saberi",
    "Brender", "Nagarkar", "Ozsoyoglu", "Goldberg", "Dayal", "Santoro",
    "Kowalczyk", "Ventura", "Feng", "Diallo", "Nyberg", "Ionescu",
    "Watanabe", "Keller",
)

_CITIES = (
    "Pisa", "Seattle", "Hawthorne", "Darmstadt", "Amsterdam", "Lyon",
    "Bologna", "Kyoto", "Aarhus", "Porto", "Krakow", "Tampere",
)

_ITEM_WORDS = (
    "bicycle", "guitar", "teapot", "lamp", "camera", "atlas", "clock",
    "stamp", "painting", "radio", "violin", "telescope", "globe", "chair",
)

_REGIONS = ("namerica", "europe")


@dataclass(frozen=True)
class XMarkConfig:
    """Scale knobs.  ``scale(f)`` mimics XMark's scale factor: f=1.0 is
    around 25,500 persons in real XMark; here the default miniature keeps
    unit tests fast while benchmarks pass explicit sizes."""

    persons: int = 50
    items: int = 40
    open_auctions: int = 20
    closed_auctions: int = 60
    max_bidders: int = 4
    seed: int = 20060329  # EDBT 2006 vintage

    @staticmethod
    def scale(factor: float, seed: int = 20060329) -> "XMarkConfig":
        """A config whose table sizes grow linearly with *factor*."""
        return XMarkConfig(
            persons=max(1, int(255 * factor)),
            items=max(1, int(217 * factor)),
            open_auctions=max(1, int(120 * factor)),
            closed_auctions=max(1, int(97 * factor)),
            seed=seed,
        )


def generate_auction_xml(config: XMarkConfig | None = None) -> str:
    """Generate an auction document; returns the XML text."""
    config = config or XMarkConfig()
    rng = random.Random(config.seed)
    parts: list[str] = ['<site>']
    _regions(parts, config, rng)
    _people(parts, config, rng)
    _open_auctions(parts, config, rng)
    _closed_auctions(parts, config, rng)
    parts.append("</site>")
    return "".join(parts)


def _name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def _regions(parts: list[str], config: XMarkConfig, rng: random.Random) -> None:
    parts.append("<regions>")
    per_region: dict[str, list[int]] = {region: [] for region in _REGIONS}
    for index in range(config.items):
        per_region[rng.choice(_REGIONS)].append(index)
    for region in _REGIONS:
        parts.append(f"<{region}>")
        for index in per_region[region]:
            word = rng.choice(_ITEM_WORDS)
            quantity = rng.randint(1, 5)
            parts.append(
                f'<item id="item{index}">'
                f"<name>{word} #{index}</name>"
                f"<quantity>{quantity}</quantity>"
                f"<payment>Creditcard</payment>"
                f"<description><text>A fine {word}.</text></description>"
                f"</item>"
            )
        parts.append(f"</{region}>")
    parts.append("</regions>")


def _people(parts: list[str], config: XMarkConfig, rng: random.Random) -> None:
    parts.append("<people>")
    for index in range(config.persons):
        name = _name(rng)
        email = name.lower().replace(" ", ".")
        city = rng.choice(_CITIES)
        income = round(rng.uniform(9876.0, 98765.0), 2)
        parts.append(
            f'<person id="person{index}">'
            f"<name>{name}</name>"
            f"<emailaddress>mailto:{email}@example.com</emailaddress>"
            f"<city>{city}</city>"
            f"<income>{income}</income>"
            f"</person>"
        )
    parts.append("</people>")


def _open_auctions(parts: list[str], config: XMarkConfig, rng: random.Random) -> None:
    parts.append("<open_auctions>")
    for index in range(config.open_auctions):
        item = rng.randrange(config.items)
        initial = round(rng.uniform(1.0, 100.0), 2)
        current = initial
        bidders = []
        for _ in range(rng.randint(0, config.max_bidders)):
            increase = round(rng.uniform(1.0, 20.0), 2)
            current = round(current + increase, 2)
            person = rng.randrange(config.persons)
            bidders.append(
                f'<bidder><personref person="person{person}"/>'
                f"<increase>{increase}</increase></bidder>"
            )
        parts.append(
            f'<open_auction id="open_auction{index}">'
            f'<itemref item="item{item}"/>'
            f"<initial>{initial}</initial>"
            f"{''.join(bidders)}"
            f"<current>{current}</current>"
            f"</open_auction>"
        )
    parts.append("</open_auctions>")


def _closed_auctions(parts: list[str], config: XMarkConfig, rng: random.Random) -> None:
    parts.append("<closed_auctions>")
    for index in range(config.closed_auctions):
        seller = rng.randrange(config.persons)
        buyer = rng.randrange(config.persons)
        item = rng.randrange(config.items)
        price = round(rng.uniform(5.0, 250.0), 2)
        parts.append(
            "<closed_auction>"
            f'<seller person="person{seller}"/>'
            f'<buyer person="person{buyer}"/>'
            f'<itemref item="item{item}"/>'
            f"<price>{price}</price>"
            f"<date>{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/2005</date>"
            "</closed_auction>"
        )
    parts.append("</closed_auctions>")
