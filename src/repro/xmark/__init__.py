"""XMark-style synthetic data (substitute for the XMark benchmark [23]).

The paper's examples and its Section 4.3 optimization argument run over
the XMark auction document (persons, items, open and closed auctions).
This package generates schema-compatible documents of any scale with a
seeded PRNG, so every experiment is reproducible.
"""

from repro.xmark.generator import XMarkConfig, generate_auction_xml

__all__ = ["XMarkConfig", "generate_auction_xml"]
