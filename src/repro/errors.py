"""Error hierarchy for the XQuery! engine.

Error codes loosely follow the W3C XQuery convention (``XPST``/``XPDY``/
``XQDY`` prefixes for static, dynamic and update errors) plus ``XUDY`` codes
for update-application failures, which the paper leaves implementation
defined (Section 3.2: "When the preconditions are not met, the update
application is undefined" — we make it a reported error).
"""

from __future__ import annotations


class XQueryError(Exception):
    """Base class for every error raised by the engine.

    Attributes:
        code: a short machine-readable error code (e.g. ``XPST0003``).
        message: human-readable description.
    """

    default_code = "FORG0001"

    #: attribute names a subclass folds into :meth:`to_dict` alongside
    #: ``code`` and ``message`` — the structured detail a service
    #: response or log line carries (``retry_after_ms`` hints, limit
    #: observations, source locations).
    _detail_fields: tuple[str, ...] = ()

    def __init__(self, message: str, code: str | None = None):
        self.code = code or self.default_code
        self.message = message
        super().__init__(f"[{self.code}] {message}")

    def to_dict(self) -> dict:
        """JSON-able refusal payload: registry code, message, and every
        subclass detail field (for service responses and logs)."""
        out: dict = {"code": self.code, "message": self.message}
        for name in self._detail_fields:
            out[name] = getattr(self, name, None)
        return out


class StaticError(XQueryError):
    """Error detected before evaluation (lexing, parsing, normalization)."""

    default_code = "XPST0003"


class LexerError(StaticError):
    """Raised when the tokenizer encounters an invalid character sequence."""

    _detail_fields = ("line", "column")

    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")


class ParseError(StaticError):
    """Raised when the parser cannot build an AST from the token stream."""

    _detail_fields = ("line", "column")

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class NormalizationError(StaticError):
    """Raised when a surface expression has no core-language image."""

    default_code = "XPST0005"


class UndefinedVariableError(StaticError):
    """Reference to a variable not in scope (XPST0008)."""

    default_code = "XPST0008"


class UndefinedFunctionError(StaticError):
    """Call to a function that is not declared (XPST0017)."""

    default_code = "XPST0017"


class DynamicError(XQueryError):
    """Error raised during evaluation of a (core) expression."""

    default_code = "XPDY0002"


class TypeError_(DynamicError):
    """Dynamic type error (e.g. atomizing where a node is required)."""

    default_code = "XPTY0004"


class AtomizationError(TypeError_):
    """A sequence could not be atomized into the required cardinality."""

    default_code = "XPTY0004"


class CardinalityError(TypeError_):
    """A sequence has the wrong number of items for the operation."""

    default_code = "XPTY0004"


class ArithmeticError_(DynamicError):
    """Numeric failure such as division by zero (FOAR0001)."""

    default_code = "FOAR0001"


class FunctionError(DynamicError):
    """A built-in function was called with invalid arguments."""

    default_code = "FORG0006"


class UpdateError(DynamicError):
    """Base class for errors involving update requests."""

    default_code = "XUDY0027"


class UpdateTargetError(UpdateError):
    """An update primitive was given an invalid target node (e.g. delete of
    a non-node, insert into a text node)."""

    default_code = "XUTY0005"


class UpdateApplicationError(UpdateError):
    """Applying an update list to the store failed a precondition, e.g.
    inserting a node that still has a parent (Section 3.2)."""

    default_code = "XUDY0027"


class ConflictError(UpdateError):
    """Conflict-detection semantics proved (or failed to disprove) that two
    update requests in the same snap scope do not commute (Section 3.2)."""

    default_code = "XUDY0024"


class StoreError(DynamicError):
    """Inconsistent access to the node store (bad node id, wrong kind)."""

    default_code = "XQDY0025"


class ExecutionControlError(DynamicError):
    """Base class for cooperative execution-control interruptions.

    Raised at tuple-pipeline and FLWOR iteration boundaries when a query's
    deadline passes or its cancel token fires.  The pending update list of
    the interrupted snap scope is discarded, never half-applied — the
    paper's atomicity-via-snap discipline extends to interruption: a query
    either commits a snap's Δ in full or leaves the store untouched by it.
    Codes are implementation defined (the W3C taxonomy has no entry for
    engine-level interruption).
    """

    default_code = "REPR0000"


class QueryTimeoutError(ExecutionControlError):
    """A query exceeded its ``timeout_ms`` execution deadline."""

    default_code = "REPR0001"

    _detail_fields = ("timeout_ms",)

    def __init__(self, message: str, timeout_ms: float | None = None):
        self.timeout_ms = timeout_ms
        super().__init__(message)


class QueryCancelledError(ExecutionControlError):
    """A query's :class:`~repro.concurrent.CancelToken` fired."""

    default_code = "REPR0002"


class ServiceOverloadedError(XQueryError):
    """A bounded request queue is full (or shedding early) and the
    request was refused.

    Raised by the concurrent front ends (graceful degradation: reject
    fast with a typed error instead of queueing unboundedly).  Carries
    structured detail so callers can implement informed backoff:

    Attributes:
        queue_depth: requests pending when the shed decision was made.
        queue_capacity: the bounded queue's capacity.
        wait_budget_ms: the request's deadline budget at submit (None
            when it carried no deadline).
        retry_after_ms: the service's hint for when a retry has a
            reasonable chance of being admitted (None when unknown).
    """

    default_code = "REPR0003"

    _detail_fields = (
        "queue_depth",
        "queue_capacity",
        "wait_budget_ms",
        "retry_after_ms",
    )

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int | None = None,
        queue_capacity: int | None = None,
        wait_budget_ms: float | None = None,
        retry_after_ms: float | None = None,
    ):
        self.queue_depth = queue_depth
        self.queue_capacity = queue_capacity
        self.wait_budget_ms = wait_budget_ms
        self.retry_after_ms = retry_after_ms
        super().__init__(message)


class DurabilityError(XQueryError):
    """A durability operation (journal append, checkpoint, manifest
    update) failed.

    Raised by :mod:`repro.durability` when the write-ahead journal cannot
    make a committed snap durable — e.g. the underlying file raises
    ``OSError`` mid-append.  When the engine runs with ``atomic_snaps``
    the in-memory store is rolled back before this is raised, so memory
    and disk stay in agreement.  Codes are implementation defined (the
    W3C taxonomy predates engine-level durability).
    """

    default_code = "REPR0004"


class JournalCorruptionError(DurabilityError):
    """Recovery found a journal it cannot trust.

    A *torn tail* (an incomplete final record from a crash mid-append) is
    expected and silently truncated; this error is reserved for damage
    that truncation cannot explain: a bad CRC on an interior record, a
    sequence-number gap, or replay diverging from the recorded
    post-state.  Recovery never silently returns a wrong store.
    """

    default_code = "REPR0005"


class CircuitOpenError(DurabilityError):
    """The durability circuit breaker is open: the engine is in degraded
    read-only mode.

    Raised on any attempt to commit a non-empty update list while the
    breaker around the journal path is open (or while a half-open probe
    is already in flight).  Reads keep serving from the last consistent
    state; writes get this typed refusal instead of an undefined
    failure.  The store is left untouched by the refused snap's Δ.

    Attributes:
        reason: why the circuit opened (the triggering fault, summarized).
        opened_at: ``time.monotonic()`` timestamp of the transition.
        retry_after_ms: milliseconds until the breaker will admit a
            half-open probe (0 when a probe is already admissible).
    """

    default_code = "REPR0006"

    _detail_fields = ("reason", "opened_at", "retry_after_ms")

    def __init__(
        self,
        message: str,
        *,
        reason: str | None = None,
        opened_at: float | None = None,
        retry_after_ms: float | None = None,
    ):
        self.reason = reason
        self.opened_at = opened_at
        self.retry_after_ms = retry_after_ms
        super().__init__(message)


class ResourceLimitError(ExecutionControlError):
    """A per-query resource guard refused or stopped the query.

    Raised by the admission layer (:mod:`repro.resilience.admission`)
    either up front — query nesting depth or size over the configured
    bound — or cooperatively at the same polling boundaries as timeouts,
    when a running query exceeds its store-node construction budget or
    its snap exceeds the pending-update-list bound.  As with every
    execution-control interruption, the pending Δ is discarded whole.

    Attributes:
        limit_name: which guard tripped (``max_depth``,
            ``max_store_nodes``, ``max_pending_delta``, ...).
        limit: the configured bound.
        observed: the value that exceeded it.
    """

    default_code = "REPR0007"

    _detail_fields = ("limit_name", "limit", "observed")

    def __init__(
        self,
        message: str,
        *,
        limit_name: str | None = None,
        limit: float | None = None,
        observed: float | None = None,
    ):
        self.limit_name = limit_name
        self.limit = limit
        self.observed = observed
        super().__init__(message)


class TransactionConflictError(XQueryError):
    """First-committer-wins validation aborted an optimistic transaction.

    Raised by :meth:`repro.txn.Transaction.commit` when the §3.2
    conflict-free proof (:func:`repro.semantics.conflicts.
    check_conflict_free`) fails between this transaction's buffered Δ and
    the Δ of some transaction that committed after this one's snapshot
    was taken — or when a precondition the validation cannot see fails
    while replaying the Δ against the live store.  Either way the store
    (and journal) are left exactly as if the transaction never ran.

    The abort is *transient* by design: the snapshot it validated
    against is simply stale.  Retrying the whole transaction against a
    fresh session snapshot is the intended response, and
    :class:`repro.resilience.retry.RetryPolicy` classifies this error as
    retryable out of the box.  Contrast
    :class:`ConflictError` (XUDY0024), which is a *semantic* property of
    one snap's Δ and never goes away on retry.

    Attributes:
        conflicts_with_seq: commit sequence number of the transaction
            whose Δ this one collided with (None when the abort came
            from a live-replay precondition instead of validation).
        detail: the underlying conflict rule's message, when available.
    """

    default_code = "REPR0008"

    _detail_fields = ("conflicts_with_seq", "detail")

    def __init__(
        self,
        message: str,
        *,
        conflicts_with_seq: int | None = None,
        detail: str | None = None,
    ):
        self.conflicts_with_seq = conflicts_with_seq
        self.detail = detail
        super().__init__(message)


class StaleEpochError(XQueryError):
    """A write carried a fencing epoch older than the cluster's.

    Raised on the replication path (:mod:`repro.cluster`) when a
    deposed primary — one that missed its own failover — tries to
    append to the journal, or when a shipped frame is stamped with an
    epoch below the replica's fence.  Fencing makes split-brain a typed
    refusal instead of silent divergence: the supervisor bumps the
    epoch file at promotion, every journal frame is stamped with its
    writer's epoch, and anything older than the fence is refused.

    Permanently fatal: a stale epoch never heals on retry — the old
    primary must rejoin as a replica (re-recover from the manifest +
    journal under the new epoch).  :class:`repro.resilience.retry.
    RetryPolicy` never retries it.

    Attributes:
        stale_epoch: the epoch the refused writer/frame carried.
        fence_epoch: the cluster's current fencing epoch.
    """

    default_code = "REPR0009"

    _detail_fields = ("stale_epoch", "fence_epoch")

    def __init__(
        self,
        message: str,
        *,
        stale_epoch: int | None = None,
        fence_epoch: int | None = None,
    ):
        self.stale_epoch = stale_epoch
        self.fence_epoch = fence_epoch
        super().__init__(message)


class ReplicaLagError(XQueryError):
    """No replica could serve a read inside its staleness bound.

    Raised by the cluster read router when every healthy replica lags
    behind the caller's ``ExecutionOptions(max_lag_seq=...)`` bound (and
    the primary is not available to fall back to), or when the chosen
    replica's connection reset mid-request with no alternative left.

    Transient by design: replicas catch up, restarted replicas replay
    the journal, partitions heal.  Carries ``retry_after_ms`` so callers
    back off for roughly one shipping interval instead of hammering;
    :class:`repro.resilience.retry.RetryPolicy` retries it out of the
    box and honours the hint as a backoff floor.

    Attributes:
        lag_seq: the smallest lag among live replicas (None when none
            were reachable at all).
        max_lag_seq: the staleness bound the request carried.
        retry_after_ms: hint for when a retry may find a fresh replica.
    """

    default_code = "REPR0010"

    _detail_fields = ("lag_seq", "max_lag_seq", "retry_after_ms")

    def __init__(
        self,
        message: str,
        *,
        lag_seq: int | None = None,
        max_lag_seq: int | None = None,
        retry_after_ms: float | None = None,
    ):
        self.lag_seq = lag_seq
        self.max_lag_seq = max_lag_seq
        self.retry_after_ms = retry_after_ms
        super().__init__(message)


class SerializationError(DynamicError):
    """The data model instance cannot be serialized to XML."""

    default_code = "SENR0001"


class XMLParseError(StaticError):
    """Raised while parsing an XML document into the store."""

    default_code = "FODC0002"

    _detail_fields = ("line", "column")

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
