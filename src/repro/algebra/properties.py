"""The side-effect judgment guarding optimizer rewrites (Sections 4.2, 5).

For each core expression we compute:

* ``may_update`` — evaluation may *produce* pending update requests;
* ``may_snap``  — evaluation may *apply* updates (contains a ``snap``, so
  the store can visibly change during evaluation);
* combined: an expression is **pure** iff neither holds ("if they only
  perform allocations or copies, their evaluation can still be commuted or
  interleaved" — Section 3.4), and **collecting** iff it may update but
  never snaps (safe inside an innermost snap: effects are gathered, not
  observed).

User function calls propagate the flags of their bodies with the monadic
rule of Section 5 ("a function that calls an updating function is updating
as well"); recursive cycles are resolved conservatively (assume both
flags).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import core_ast as core
from repro.semantics.context import FunctionRegistry


@dataclass(frozen=True)
class EffectProps:
    """Effect flags of an expression."""

    may_update: bool = False
    may_snap: bool = False

    @property
    def pure(self) -> bool:
        """No pending updates and no snaps: full XQuery 1.0 freedom."""
        return not (self.may_update or self.may_snap)

    @property
    def collecting_only(self) -> bool:
        """Produces update requests but never applies them."""
        return self.may_update and not self.may_snap

    def __or__(self, other: "EffectProps") -> "EffectProps":
        return EffectProps(
            self.may_update or other.may_update,
            self.may_snap or other.may_snap,
        )


_PURE = EffectProps(False, False)
_UPDATING = EffectProps(True, False)
_SNAPPING = EffectProps(False, True)
_BOTH = EffectProps(True, True)


class EffectAnalyzer:
    """Memoizing analyzer over a function registry.

    One analyzer should be created per optimization pass; function bodies
    are analyzed on demand and cached by (name, arity).
    """

    def __init__(self, registry: FunctionRegistry | None):
        self._registry = registry
        self._function_cache: dict[int, EffectProps] = {}
        self._in_progress: set[int] = set()

    def analyze(self, expr: core.CoreExpr) -> EffectProps:
        """Compute the effect flags of *expr*."""
        props = _PURE
        if isinstance(
            expr,
            (core.CInsert, core.CDelete, core.CReplace,
             core.CReplaceValue, core.CRename),
        ):
            props = _UPDATING
        elif isinstance(expr, core.CSnap):
            # The snap applies its body's updates: the body's may_update is
            # discharged here, surfacing as a store mutation (may_snap).
            body = self.analyze(expr.body)
            return EffectProps(False, True) | EffectProps(False, body.may_snap)
        elif isinstance(expr, core.CCall):
            props = self._call_props(expr)
        for child in core.child_exprs(expr):
            props = props | self.analyze(child)
        return props

    def _call_props(self, expr: core.CCall) -> EffectProps:
        if self._registry is None:
            # Without a registry we cannot see function bodies: assume the
            # worst for non-built-in names.
            return _BOTH
        function = self._registry.lookup_user(expr.name, len(expr.args))
        if function is None:
            # Built-ins are pure by construction.
            if self._registry.lookup_builtin(expr.name, len(expr.args)):
                return _PURE
            return _BOTH
        key = id(function)
        if key in self._function_cache:
            return self._function_cache[key]
        if key in self._in_progress:
            # Recursive cycle: conservative.
            return _BOTH
        self._in_progress.add(key)
        try:
            props = self.analyze(function.body)
        finally:
            self._in_progress.discard(key)
        self._function_cache[key] = props
        return props


def effect_properties(
    expr: core.CoreExpr, registry: FunctionRegistry | None = None
) -> EffectProps:
    """One-shot effect analysis of *expr*."""
    return EffectAnalyzer(registry).analyze(expr)


def is_pure(expr: core.CoreExpr, registry: FunctionRegistry | None = None) -> bool:
    """True when *expr* neither produces nor applies updates."""
    return effect_properties(expr, registry).pure


def free_variables(expr: core.CoreExpr) -> set[str]:
    """Free variables of a core expression (used by join detection to
    check which clause bindings a predicate side depends on)."""
    free: set[str] = set()

    def walk(e: core.CoreExpr, bound: frozenset[str]) -> None:
        if isinstance(e, core.CVar):
            if e.name not in bound:
                free.add(e.name)
            return
        if isinstance(e, core.CFor):
            walk(e.source, bound)
            inner = bound | {e.var}
            if e.position_var:
                inner |= {e.position_var}
            walk(e.body, frozenset(inner))
            return
        if isinstance(e, core.CLet):
            walk(e.source, bound)
            walk(e.body, frozenset(bound | {e.var}))
            return
        if isinstance(e, core.COrderedFLWOR):
            scope = set(bound)
            for clause in e.clauses:
                walk(clause.source, frozenset(scope))
                scope.add(clause.var)
                if isinstance(clause, core.CForClause) and clause.position_var:
                    scope.add(clause.position_var)
            frozen = frozenset(scope)
            if e.where is not None:
                walk(e.where, frozen)
            for spec in e.specs:
                walk(spec.expr, frozen)
            walk(e.ret, frozen)
            return
        if isinstance(e, core.CQuantified):
            scope = set(bound)
            for var, source in e.bindings:
                walk(source, frozenset(scope))
                scope.add(var)
            walk(e.satisfies, frozenset(scope))
            return
        for child in core.child_exprs(e):
            walk(child, bound)

    walk(expr, frozenset())
    return free
