"""The nested-relational algebra and optimizer (paper Section 4).

Queries compile from the core language into tuple-stream plans
(:mod:`repro.algebra.plan`); a rule-based rewriter
(:mod:`repro.algebra.rewrite`) recovers join and outer-join/group-by plans
— the paper's XMark Q8 example — guarded by the side-effect judgment of
:mod:`repro.algebra.properties`; :mod:`repro.algebra.execute` runs plans
against the store, collecting pending updates exactly like the interpreter.
"""

from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan
from repro.algebra.properties import effect_properties, EffectProps
from repro.algebra.plan import pretty_plan

__all__ = [
    "compile_query",
    "execute_plan",
    "effect_properties",
    "EffectProps",
    "pretty_plan",
]
