"""Logical plan operators of the nested-relational algebra (Section 4.3).

Plans operate on *tuple streams*: lazily produced dictionaries mapping
variable names to XDM sequences (the Galax-style tuple representation of
[21] the paper builds on).  Scalar work inside operators — path steps,
predicates, constructors — is expressed as embedded core expressions
evaluated by the dynamic-semantics evaluator against the tuple's bindings;
this hybrid is exactly the architecture the paper describes (the algebra
restructures the *iteration* while the XQuery! semantics define each
expression).

The operator names mirror the optimized plan printed in Section 4.3::

    Snap {
      MapFromItem { ... }
        (GroupBy [ ... ]
          ( LeftOuterJoin(MapFromItem{[p:Input]}(...),
                          MapFromItem{[t:Input]}(...))
            on { ... } ))
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lang import core_ast as core


@dataclass
class Plan:
    """Base class of plan operators."""

    def label(self) -> str:
        return type(self).__name__

    def children(self) -> list["Plan"]:
        return []


# ----------------------------------------------------------------------
# Tuple-stream producers
# ----------------------------------------------------------------------

@dataclass
class UnitTuple(Plan):
    """The stream containing exactly one empty tuple."""


@dataclass
class MapConcat(Plan):
    """A ``for`` clause: for each input tuple, evaluate *source* and emit
    one extended tuple per item (optionally with a position binding)."""

    input: Plan = None  # type: ignore[assignment]
    var: str = ""
    source: core.CoreExpr = None  # type: ignore[assignment]
    position_var: Optional[str] = None

    def label(self) -> str:
        return f"MapConcat[{self.var}]"

    def children(self) -> list[Plan]:
        return [self.input]


@dataclass
class IndexScan(Plan):
    """A :class:`MapConcat` whose source is a descendant name step,
    answered from the store's element-name index instead of a subtree
    walk.  Substituted by the cost-based optimizer when the estimated
    posting count beats a sequential scan; *source* keeps the original
    expression so execution can fall back to it verbatim (indexes
    disabled, non-node roots), guaranteeing identical results.
    """

    input: Plan = None  # type: ignore[assignment]
    var: str = ""
    #: The original path expression (exact fallback).
    source: core.CoreExpr = None  # type: ignore[assignment]
    #: The base ``B`` of ``B//name`` — pure, evaluated per input tuple.
    root: core.CoreExpr = None  # type: ignore[assignment]
    name: str = ""
    or_self: bool = False
    position_var: Optional[str] = None
    #: Optimizer's estimated row count (surfaced next to actuals in stats).
    est_rows: int = 0

    def label(self) -> str:
        return f"IndexScan[{self.var}:{self.name}]"

    def children(self) -> list[Plan]:
        return [self.input]


@dataclass
class LetBind(Plan):
    """A ``let`` clause: extend each tuple with the whole sequence."""

    input: Plan = None  # type: ignore[assignment]
    var: str = ""
    source: core.CoreExpr = None  # type: ignore[assignment]

    def label(self) -> str:
        return f"LetBind[{self.var}]"

    def children(self) -> list[Plan]:
        return [self.input]


@dataclass
class Select(Plan):
    """A ``where`` conjunct: keep tuples whose predicate is true."""

    input: Plan = None  # type: ignore[assignment]
    predicate: core.CoreExpr = None  # type: ignore[assignment]

    def children(self) -> list[Plan]:
        return [self.input]


@dataclass
class HashJoin(Plan):
    """Equi-join of two independent tuple streams.

    ``left_key`` / ``right_key`` are scalar expressions over the respective
    streams' bindings; keys are atomized and matched with the general-``=``
    (existential, untyped-as-string) semantics.  Complexity
    O(|left| + |right| + |matches|) — the join the paper contrasts with the
    O(|left|·|right|) nested loop.
    """

    left: Plan = None  # type: ignore[assignment]
    right: Plan = None  # type: ignore[assignment]
    left_key: core.CoreExpr = None  # type: ignore[assignment]
    right_key: core.CoreExpr = None  # type: ignore[assignment]
    #: Which input the hash table is built on ("right" is the classic
    #: default; the cost model flips to "left" when its estimate is
    #: smaller).  Output order is identical either way.
    build: str = "right"

    def label(self) -> str:
        return "HashJoin"

    def children(self) -> list[Plan]:
        return [self.left, self.right]


@dataclass
class LeftOuterJoin(Plan):
    """Left outer equi-join: every left tuple survives, carrying the list
    of matching right tuples (consumed by :class:`GroupBy`)."""

    left: Plan = None  # type: ignore[assignment]
    right: Plan = None  # type: ignore[assignment]
    left_key: core.CoreExpr = None  # type: ignore[assignment]
    right_key: core.CoreExpr = None  # type: ignore[assignment]

    def children(self) -> list[Plan]:
        return [self.left, self.right]


@dataclass
class GroupBy(Plan):
    """The paper's GroupBy: for each (left tuple, matches) pair produced by
    a :class:`LeftOuterJoin`, evaluate *per_match* once per matching right
    tuple (in right-stream order) and bind the concatenation to
    *group_var*.  Effects inside *per_match* fire exactly once per match —
    the cardinality-preservation guard the optimizer enforces."""

    input: LeftOuterJoin = None  # type: ignore[assignment]
    group_var: str = ""
    per_match: core.CoreExpr = None  # type: ignore[assignment]

    def label(self) -> str:
        return f"GroupBy[{self.group_var}]"

    def children(self) -> list[Plan]:
        return [self.input]


# ----------------------------------------------------------------------
# Value producers / wrappers
# ----------------------------------------------------------------------

@dataclass
class OrderBySort(Plan):
    """An ``order by`` clause: materialize the tuple stream, evaluate the
    key expressions per tuple (in generation order, so key-expression
    deltas land exactly where the interpreter puts them), stable-sort."""

    input: Plan = None  # type: ignore[assignment]
    specs: list = field(default_factory=list)  # list[core.COrderSpec]

    def label(self) -> str:
        return f"OrderBy[{len(self.specs)} key(s)]"

    def children(self) -> list[Plan]:
        return [self.input]


@dataclass
class MapFromItem(Plan):
    """Return clause: evaluate *ret* for each tuple; concatenate values."""

    input: Plan = None  # type: ignore[assignment]
    ret: core.CoreExpr = None  # type: ignore[assignment]

    def children(self) -> list[Plan]:
        return [self.input]


@dataclass
class EvalExpr(Plan):
    """Fallback: interpret a core expression directly (no restructuring).
    Used for query shapes the algebra does not cover."""

    expr: core.CoreExpr = None  # type: ignore[assignment]


@dataclass
class Snap(Plan):
    """Apply the collected Δ of the inner plan (the implicit top-level
    snap, or an explicit one the compiler chose to keep at plan level)."""

    input: Plan = None  # type: ignore[assignment]
    mode: Optional[str] = None

    def label(self) -> str:
        return f"Snap[{self.mode or 'ordered'}]"

    def children(self) -> list[Plan]:
        return [self.input]


PlanNode = Union[
    UnitTuple,
    MapConcat,
    IndexScan,
    LetBind,
    Select,
    HashJoin,
    LeftOuterJoin,
    GroupBy,
    MapFromItem,
    EvalExpr,
    Snap,
]


def pretty_plan(plan: Plan, indent: int = 0) -> str:
    """Render a plan tree as an indented outline (tests assert on this)."""
    pad = "  " * indent
    lines = [f"{pad}{plan.label()}"]
    for child in plan.children():
        lines.append(pretty_plan(child, indent + 1))
    return "\n".join(lines)


def plan_operators(plan: Plan) -> list[str]:
    """Flat list of operator labels, root-first (for plan-shape tests)."""
    out = [type(plan).__name__]
    for child in plan.children():
        out.extend(plan_operators(child))
    return out


def paper_plan(plan: Plan, indent: int = 0) -> str:
    """Render a plan in the style of the paper's Section 4.3 printout,
    with the embedded core expressions unparsed inline::

        Snap {
          MapFromItem { <item ...>{count($a)}</item> }
            (GroupBy [ a, { (insert ..., $t) } ]
              ( LeftOuterJoin( MapFromItem{[p:Input]}(...),
                               MapFromItem{[t:Input]}(...))
                on { $t/buyer/@person = $p/@id } ))
        }
    """
    from repro.lang.core_pretty import core_to_source as src

    pad = "  " * indent
    inner = "  " * (indent + 1)
    if isinstance(plan, Snap):
        mode = f" {plan.mode}" if plan.mode and plan.mode != "ordered" else ""
        return (
            f"{pad}Snap{mode} {{\n{paper_plan(plan.input, indent + 1)}\n{pad}}}"
        )
    if isinstance(plan, MapFromItem):
        return (
            f"{pad}MapFromItem {{ {src(plan.ret)} }}\n"
            f"{paper_plan(plan.input, indent + 1)}"
        )
    if isinstance(plan, GroupBy):
        return (
            f"{pad}(GroupBy [ {plan.group_var}, {{ {src(plan.per_match)} }} ]\n"
            f"{paper_plan(plan.input, indent + 1)}\n{pad})"
        )
    if isinstance(plan, (LeftOuterJoin, HashJoin)):
        name = type(plan).__name__
        return (
            f"{pad}( {name}(\n"
            f"{paper_plan(plan.left, indent + 2)},\n"
            f"{paper_plan(plan.right, indent + 2)})\n"
            f"{inner}on {{ {src(plan.left_key)} = {src(plan.right_key)} }} )"
        )
    if isinstance(plan, MapConcat):
        return (
            f"{pad}MapConcat{{[{plan.var}:Input]}}({src(plan.source)})"
            + ("" if isinstance(plan.input, UnitTuple)
               else "\n" + paper_plan(plan.input, indent + 1))
        )
    if isinstance(plan, IndexScan):
        return (
            f"{pad}IndexScan{{[{plan.var}:{plan.name}]}}"
            f"({src(plan.root)}, est={plan.est_rows})"
            + ("" if isinstance(plan.input, UnitTuple)
               else "\n" + paper_plan(plan.input, indent + 1))
        )
    if isinstance(plan, LetBind):
        return (
            f"{pad}LetBind{{[{plan.var}:Input]}}({src(plan.source)})\n"
            f"{paper_plan(plan.input, indent + 1)}"
        )
    if isinstance(plan, Select):
        return (
            f"{pad}Select{{ {src(plan.predicate)} }}\n"
            f"{paper_plan(plan.input, indent + 1)}"
        )
    if isinstance(plan, OrderBySort):
        keys = ", ".join(src(spec.expr) for spec in plan.specs)
        return (
            f"{pad}OrderBy{{ {keys} }}\n"
            f"{paper_plan(plan.input, indent + 1)}"
        )
    if isinstance(plan, EvalExpr):
        return f"{pad}Eval{{ {src(plan.expr)} }}"
    if isinstance(plan, UnitTuple):
        return f"{pad}Unit"
    return f"{pad}{plan.label()}"
