"""Plan execution over the store (the algebra's physical layer).

Tuple streams are lazily produced ``dict[str, Sequence]`` values; pending
updates collected while producing tuples accumulate in the execution
state's Δ, preserving the evaluation order the dynamic semantics
prescribes.  Hash-based joins use atomized join keys under the general-
comparison matching rules (untyped values match as strings *and* as
numbers when both sides parse, mirroring ``=``).

Streaming discipline
--------------------

Execution is a pull pipeline: MapConcat / LetBind / Select stages never
build intermediate tuple lists — each tuple flows from the source through
the whole chain before the next one is produced.  Materialization happens
only at the operators whose semantics require seeing the full stream:

* **Snap** — the Δ of the entire inner plan must be complete before
  application, so the inner value sequence is materialized there (this is
  also where ``execute_plan`` returns, since the compiler always wraps
  plans in a top-level snap);
* **OrderBySort** — sorting needs every tuple (and evaluates key
  expressions in generation order so key-expression deltas land exactly
  where the interpreter puts them);
* **HashJoin / GroupBy** — the build side is hashed in full; the probe
  (left) side still streams.

Linear operator chains are driven *iteratively* with an explicit iterator
stack rather than one generator frame per operator, so FLWOR nesting
depth is bounded by memory, not the Python recursion limit — a
1000-level-deep nested ``for`` executes fine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.algebra import plan as P
from repro.errors import DynamicError
from repro.semantics.context import DynamicContext
from repro.semantics.update import ApplySemantics, UpdateList, apply_update_list
from repro.xdm.compare import general_compare
from repro.xdm.values import AtomicValue, Sequence, atomize, effective_boolean_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine
    from repro.obs.tracer import Tracer

Tuple_ = dict  # dict[str, Sequence]


class _ExecState:
    """Shared execution state: the engine, the pending update list, and
    (when stats are being collected) the tracer fed by the
    materialization barriers."""

    def __init__(self, engine: "Engine", tracer: "Tracer | None" = None):
        self.engine = engine
        self.evaluator = engine.evaluator
        self.delta: UpdateList = []
        self.tracer = tracer
        # Execution control (deadline/cancellation), shared with the
        # evaluator running embedded expressions; None when unused.
        self.control = engine.evaluator.control

    def eval_scalar(self, expr, tup: Tuple_) -> Sequence:
        """Evaluate an embedded core expression against a tuple's bindings;
        its pending updates are appended to the plan's Δ."""
        variables = dict(self.evaluator.globals)
        variables.update(tup)
        value, delta = self.evaluator.evaluate(expr, DynamicContext(variables))
        self.delta.extend(delta)
        return value


def execute_plan(
    plan: P.Plan, engine: "Engine", tracer: "Tracer | None" = None
) -> Sequence:
    """Execute a compiled plan and return its value sequence.

    With a *tracer*, each materialization barrier (snap, order-by sort,
    hash-join build) records a counter when it is hit, snap application
    records Δ-length observations, and evaluation/application phases get
    wall-clock spans.
    """
    state = _ExecState(engine, tracer)
    return _items(plan, state)


def _items(plan: P.Plan, state: _ExecState) -> Sequence:
    """Execute a value-producing plan node, materialized.

    Snap is the materialization barrier: the inner stream must be fully
    drained (its Δ complete) before the update list applies.
    """
    if isinstance(plan, P.Snap):
        tracer = state.tracer
        if tracer is None:
            inner = list(_stream_items(plan.input, state))
        else:
            tracer.count("exec.barrier.snap")
            with tracer.span("evaluate"):
                inner = list(_stream_items(plan.input, state))
        mode = (
            ApplySemantics(plan.mode) if plan.mode else ApplySemantics.ORDERED
        )
        # Last check before committing: an interrupt discards the pending
        # Δ rather than landing inside (or after) its application.
        if state.control is not None:
            state.control.check()
        if tracer is None:
            apply_update_list(
                state.engine.store,
                state.delta,
                mode,
                atomic=state.evaluator.atomic_snaps,
                journal=state.evaluator.journal,
                control=state.control,
                txn_log=state.evaluator.txn_log,
            )
        else:
            with tracer.span("snap-apply"):
                apply_update_list(
                    state.engine.store,
                    state.delta,
                    mode,
                    atomic=state.evaluator.atomic_snaps,
                    tracer=tracer,
                    journal=state.evaluator.journal,
                    control=state.control,
                    txn_log=state.evaluator.txn_log,
                )
        state.delta = []
        return inner
    return list(_stream_items(plan, state))


def _stream_items(plan: P.Plan, state: _ExecState) -> Iterator:
    """Lazily yield the items of a value-producing plan node."""
    if isinstance(plan, P.Snap):
        # A nested plan-level snap is itself a barrier; materialize it.
        yield from _items(plan, state)
        return
    if isinstance(plan, P.EvalExpr):
        yield from state.eval_scalar(plan.expr, {})
        return
    if isinstance(plan, P.MapFromItem):
        for tup in _tuples(plan.input, state):
            yield from state.eval_scalar(plan.ret, tup)
        return
    raise DynamicError(f"plan node {type(plan).__name__} does not produce items")


# ----------------------------------------------------------------------
# Tuple streams
# ----------------------------------------------------------------------

# The linear (single-input, tuple-in/tuples-out) operators that form FLWOR
# chains.  These are driven iteratively — see _chain_tuples.
_CHAIN_OPS = (P.MapConcat, P.IndexScan, P.LetBind, P.Select)


def _tuples(plan: P.Plan, state: _ExecState) -> Iterator[Tuple_]:
    """Execute a tuple-stream plan node (lazy)."""
    if isinstance(plan, _CHAIN_OPS):
        return _chain_tuples(plan, state)
    if isinstance(plan, P.UnitTuple):
        return iter(({},))
    if isinstance(plan, P.OrderBySort):
        return _order_by_sort(plan, state)
    if isinstance(plan, P.HashJoin):
        return _hash_join(plan, state)
    if isinstance(plan, P.GroupBy):
        return _group_by(plan, state)
    if isinstance(plan, P.LeftOuterJoin):
        raise DynamicError(
            "LeftOuterJoin must be consumed by GroupBy in this algebra"
        )
    raise DynamicError(f"plan node {type(plan).__name__} is not a tuple stream")


def _chain_tuples(top: P.Plan, state: _ExecState) -> Iterator[Tuple_]:
    """Stream a linear MapConcat/LetBind/Select chain iteratively.

    The chain is unrolled into source-to-sink order and driven with an
    explicit stack of iterators — level *k* of the stack yields tuples
    that have passed the first *k* operators.  Always pulling from the
    deepest level gives exactly the recursive generators' depth-first
    nested-loop order (and the same lazy evaluation points), but resuming
    costs O(1) Python stack regardless of chain length.
    """
    ops: list[P.Plan] = []
    node = top
    while isinstance(node, _CHAIN_OPS):
        ops.append(node)
        node = node.input
    ops.reverse()
    n = len(ops)
    control = state.control
    stack: list[Iterator[Tuple_]] = [_tuples(node, state)]
    while stack:
        if control is not None:
            control.check()
        tup = next(stack[-1], None)
        if tup is None:
            stack.pop()
            continue
        depth = len(stack) - 1  # tup has passed ops[:depth]
        if depth == n:
            yield tup
        else:
            stack.append(_apply_chain_op(ops[depth], tup, state))


def _apply_chain_op(
    op: P.Plan, tup: Tuple_, state: _ExecState
) -> Iterator[Tuple_]:
    """One operator applied to one tuple: an iterator of output tuples."""
    if isinstance(op, P.MapConcat):
        source = state.eval_scalar(op.source, tup)
        return _extend_per_item(op, tup, source)
    if isinstance(op, P.IndexScan):
        return _extend_per_item(op, tup, _index_scan_source(op, tup, state))
    if isinstance(op, P.LetBind):
        extended = dict(tup)
        extended[op.var] = state.eval_scalar(op.source, tup)
        return iter((extended,))
    # Select
    if effective_boolean_value(state.eval_scalar(op.predicate, tup)):
        return iter((tup,))
    return iter(())


def _extend_per_item(
    op: P.MapConcat, tup: Tuple_, source: Sequence
) -> Iterator[Tuple_]:
    for index, item in enumerate(source, start=1):
        extended = dict(tup)
        extended[op.var] = [item]
        if op.position_var:
            extended[op.position_var] = [AtomicValue.integer(index)]
        yield extended


def _index_scan_source(
    op: P.IndexScan, tup: Tuple_, state: _ExecState
) -> Sequence:
    """The items of an IndexScan for one input tuple.

    The cost model substituted this operator for a pure ``B//name``
    MapConcat source; both the index path and the fallback evaluate pure
    expressions, so either route yields identical items in document
    order.  Fallback fires when indexes are disabled for the call, when
    the root produces non-nodes, or when any root node lives outside the
    engine's base store (snapshot-local construction space).
    """
    from repro.xdm.nodes import Node

    evaluator = state.evaluator
    store = evaluator.store
    if not getattr(evaluator, "use_indexes", False):
        return state.eval_scalar(op.source, tup)
    base = state.eval_scalar(op.root, tup)
    is_local = getattr(store, "_is_local", None)
    for item in base:
        if (
            not isinstance(item, Node)
            or item.store is not store
            or (is_local is not None and is_local(item.nid))
        ):
            return state.eval_scalar(op.source, tup)
    nids: set[int] = set()
    for item in base:
        nids.update(store.descendants_named(item.nid, op.name))
        if op.or_self and store.name(item.nid) == op.name:
            nids.add(item.nid)
    if state.tracer is not None:
        state.tracer.count("exec.index_scan")
        state.tracer.observe("exec.index_scan.rows", len(nids))
    return [Node(store, nid) for nid in store.sort_document_order(nids)]


def _order_by_sort(plan: P.OrderBySort, state: _ExecState) -> Iterator[Tuple_]:
    """Materialize, key and stable-sort the tuple stream (a required
    barrier); key-expression deltas accumulate in generation order,
    matching the interpreter."""
    from repro.semantics.evaluator import _OrderKey
    from repro.xdm.values import atomize_optional

    if state.tracer is not None:
        state.tracer.count("exec.barrier.order_by")
    keyed = []
    for tup in _tuples(plan.input, state):
        keys = []
        for spec in plan.specs:
            key_value = state.eval_scalar(spec.expr, tup)
            keys.append(atomize_optional(key_value, "order by key"))
        keyed.append((keys, tup))
    for index in range(len(plan.specs) - 1, -1, -1):
        spec = plan.specs[index]
        keyed.sort(
            key=lambda pair: _OrderKey(pair[0][index], spec),
            reverse=spec.descending,
        )
    for _, tup in keyed:
        yield tup


def _join_keys(value: Sequence) -> list:
    """Hashable *candidate* keys of an atomized value.

    Each atomic contributes its string form and, when it parses as a
    number, its numeric form.  Hash matching on these keys yields a
    superset of the general-'=' matches (e.g. untyped "01" hashes with 1
    numerically even though "01" = "1" is false for two untyped values);
    probes therefore re-verify every candidate with the exact
    ``general_compare`` semantics before accepting it.
    """
    keys = []
    for av in atomize(value):
        text = av.lexical()
        keys.append(("s", text))
        try:
            keys.append(("n", float(text)))
        except ValueError:
            pass
    return keys


def _probe(
    table: dict[object, list[Tuple_]], keys: list, left_key_value: Sequence
) -> list[Tuple_]:
    """Matching right tuples for a left key, deduplicated and re-verified
    with the exact general-'=' semantics, in right-stream order."""
    matches: list[Tuple_] = []
    seen: set[int] = set()
    for key in keys:
        for tup in table.get(key, ()):
            if id(tup) in seen:
                continue
            seen.add(id(tup))
            if general_compare("eq", left_key_value, tup["__keyval__"]):
                matches.append(tup)
    matches.sort(key=lambda tup: tup["__order__"])
    return matches


def _with_order(stream: Iterator[Tuple_]) -> Iterator[Tuple_]:
    for index, tup in enumerate(stream):
        tup["__order__"] = index
        yield tup


_INTERNAL_KEYS = ("__order__", "__keyval__")


def _strip_order(tup: Tuple_) -> Tuple_:
    return {k: v for k, v in tup.items() if k not in _INTERNAL_KEYS}


def _hash_join(plan: P.HashJoin, state: _ExecState) -> Iterator[Tuple_]:
    """Build one side (a barrier), stream the other.

    The classic shape builds on the right; when the cost model estimated
    the left side smaller it sets ``build="left"`` and the table is
    built there instead.  Both sides are pure (the rewrite guard), so
    swapping which one is evaluated first is unobservable; the output is
    re-sorted to (left position, right position), the exact order the
    right-build stream produces.
    """
    if plan.build == "left":
        yield from _hash_join_build_left(plan, state)
        return
    table = _build_hash_ordered(plan.right, plan.right_key, state)
    for left_tup in _tuples(plan.left, state):
        left_key_value = state.eval_scalar(plan.left_key, left_tup)
        keys = _join_keys(left_key_value)
        for right_tup in _probe(table, keys, left_key_value):
            merged = dict(left_tup)
            merged.update(_strip_order(right_tup))
            yield merged


def _hash_join_build_left(
    plan: P.HashJoin, state: _ExecState
) -> Iterator[Tuple_]:
    table = _build_hash_ordered(plan.left, plan.left_key, state)
    pairs: list[tuple[int, int, Tuple_]] = []
    for right_index, right_tup in enumerate(_tuples(plan.right, state)):
        right_key_value = state.eval_scalar(plan.right_key, right_tup)
        keys = _join_keys(right_key_value)
        for left_tup in _probe(table, keys, right_key_value):
            merged = _strip_order(left_tup)
            merged.update(right_tup)
            pairs.append((left_tup["__order__"], right_index, merged))
    pairs.sort(key=lambda entry: (entry[0], entry[1]))
    for _, _, merged in pairs:
        yield merged


def _group_by(plan: P.GroupBy, state: _ExecState) -> Iterator[Tuple_]:
    """Build the right side (a barrier), stream the grouped left side."""
    join = plan.input
    table = _build_hash_ordered(join.right, join.right_key, state)
    for left_tup in _tuples(join.left, state):
        left_key_value = state.eval_scalar(join.left_key, left_tup)
        keys = _join_keys(left_key_value)
        group: Sequence = []
        for right_tup in _probe(table, keys, left_key_value):
            merged = dict(left_tup)
            merged.update(_strip_order(right_tup))
            group.extend(state.eval_scalar(plan.per_match, merged))
        out = dict(left_tup)
        out[plan.group_var] = group
        yield out


def _build_hash_ordered(
    plan_right: P.Plan, right_key, state: _ExecState
) -> dict[object, list[Tuple_]]:
    """Build the hash table.  Each right tuple is stamped with its stream
    position (to restore right-stream order across multiple matching keys)
    and its evaluated key value (for exact probe-time re-verification)."""
    table: dict[object, list[Tuple_]] = {}
    rows = 0
    for tup in _with_order(_tuples(plan_right, state)):
        key_value = state.eval_scalar(right_key, _strip_order(tup))
        tup["__keyval__"] = key_value
        rows += 1
        for key in _join_keys(key_value):
            table.setdefault(key, []).append(tup)
    if state.tracer is not None:
        state.tracer.count("exec.barrier.hash_build")
        state.tracer.observe("exec.hash_build.rows", rows)
    return table
