"""Plan execution over the store (the algebra's physical layer).

Tuple streams are Python generators of ``dict[str, Sequence]``; pending
updates collected while producing tuples accumulate in the execution
state's Δ, preserving the evaluation order the dynamic semantics
prescribes.  Hash-based joins use atomized join keys under the general-
comparison matching rules (untyped values match as strings *and* as
numbers when both sides parse, mirroring ``=``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.algebra import plan as P
from repro.errors import DynamicError
from repro.semantics.context import DynamicContext
from repro.semantics.update import ApplySemantics, UpdateList, apply_update_list
from repro.xdm.compare import general_compare
from repro.xdm.values import AtomicValue, Sequence, atomize, effective_boolean_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine

Tuple_ = dict  # dict[str, Sequence]


class _ExecState:
    """Shared execution state: the engine and the pending update list."""

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.evaluator = engine.evaluator
        self.delta: UpdateList = []

    def eval_scalar(self, expr, tup: Tuple_) -> Sequence:
        """Evaluate an embedded core expression against a tuple's bindings;
        its pending updates are appended to the plan's Δ."""
        variables = dict(self.evaluator.globals)
        variables.update(tup)
        value, delta = self.evaluator.evaluate(expr, DynamicContext(variables))
        self.delta.extend(delta)
        return value


def execute_plan(plan: P.Plan, engine: "Engine") -> Sequence:
    """Execute a compiled plan and return its value sequence."""
    state = _ExecState(engine)
    return _items(plan, state)


def _items(plan: P.Plan, state: _ExecState) -> Sequence:
    """Execute a value-producing plan node."""
    if isinstance(plan, P.Snap):
        inner = _items(plan.input, state)
        mode = (
            ApplySemantics(plan.mode) if plan.mode else ApplySemantics.ORDERED
        )
        apply_update_list(
            state.engine.store,
            state.delta,
            mode,
            atomic=state.evaluator.atomic_snaps,
        )
        state.delta = []
        return inner
    if isinstance(plan, P.EvalExpr):
        return state.eval_scalar(plan.expr, {})
    if isinstance(plan, P.MapFromItem):
        out: Sequence = []
        for tup in _tuples(plan.input, state):
            out.extend(state.eval_scalar(plan.ret, tup))
        return out
    raise DynamicError(f"plan node {type(plan).__name__} does not produce items")


def _tuples(plan: P.Plan, state: _ExecState) -> Iterator[Tuple_]:
    """Execute a tuple-stream plan node."""
    if isinstance(plan, P.UnitTuple):
        yield {}
        return
    if isinstance(plan, P.MapConcat):
        for tup in _tuples(plan.input, state):
            source = state.eval_scalar(plan.source, tup)
            for index, item in enumerate(source, start=1):
                extended = dict(tup)
                extended[plan.var] = [item]
                if plan.position_var:
                    extended[plan.position_var] = [AtomicValue.integer(index)]
                yield extended
        return
    if isinstance(plan, P.LetBind):
        for tup in _tuples(plan.input, state):
            extended = dict(tup)
            extended[plan.var] = state.eval_scalar(plan.source, tup)
            yield extended
        return
    if isinstance(plan, P.Select):
        for tup in _tuples(plan.input, state):
            if effective_boolean_value(state.eval_scalar(plan.predicate, tup)):
                yield tup
        return
    if isinstance(plan, P.OrderBySort):
        yield from _order_by_sort(plan, state)
        return
    if isinstance(plan, P.HashJoin):
        yield from _hash_join(plan, state)
        return
    if isinstance(plan, P.GroupBy):
        yield from _group_by(plan, state)
        return
    if isinstance(plan, P.LeftOuterJoin):
        raise DynamicError(
            "LeftOuterJoin must be consumed by GroupBy in this algebra"
        )
    raise DynamicError(f"plan node {type(plan).__name__} is not a tuple stream")


def _order_by_sort(plan: P.OrderBySort, state: _ExecState) -> Iterator[Tuple_]:
    """Materialize, key and stable-sort the tuple stream; key-expression
    deltas accumulate in generation order, matching the interpreter."""
    from repro.semantics.evaluator import _OrderKey
    from repro.xdm.values import atomize_optional

    keyed = []
    for tup in _tuples(plan.input, state):
        keys = []
        for spec in plan.specs:
            key_value = state.eval_scalar(spec.expr, tup)
            keys.append(atomize_optional(key_value, "order by key"))
        keyed.append((keys, tup))
    for index in range(len(plan.specs) - 1, -1, -1):
        spec = plan.specs[index]
        keyed.sort(
            key=lambda pair: _OrderKey(pair[0][index], spec),
            reverse=spec.descending,
        )
    for _, tup in keyed:
        yield tup


def _join_keys(value: Sequence) -> list:
    """Hashable *candidate* keys of an atomized value.

    Each atomic contributes its string form and, when it parses as a
    number, its numeric form.  Hash matching on these keys yields a
    superset of the general-'=' matches (e.g. untyped "01" hashes with 1
    numerically even though "01" = "1" is false for two untyped values);
    probes therefore re-verify every candidate with the exact
    ``general_compare`` semantics before accepting it.
    """
    keys = []
    for av in atomize(value):
        text = av.lexical()
        keys.append(("s", text))
        try:
            keys.append(("n", float(text)))
        except ValueError:
            pass
    return keys


def _probe(
    table: dict[object, list[Tuple_]], keys: list, left_key_value: Sequence
) -> list[Tuple_]:
    """Matching right tuples for a left key, deduplicated and re-verified
    with the exact general-'=' semantics, in right-stream order."""
    matches: list[Tuple_] = []
    seen: set[int] = set()
    for key in keys:
        for tup in table.get(key, ()):
            if id(tup) in seen:
                continue
            seen.add(id(tup))
            if general_compare("eq", left_key_value, tup["__keyval__"]):
                matches.append(tup)
    matches.sort(key=lambda tup: tup["__order__"])
    return matches


def _with_order(stream: Iterator[Tuple_]) -> Iterator[Tuple_]:
    for index, tup in enumerate(stream):
        tup["__order__"] = index
        yield tup


_INTERNAL_KEYS = ("__order__", "__keyval__")


def _strip_order(tup: Tuple_) -> Tuple_:
    return {k: v for k, v in tup.items() if k not in _INTERNAL_KEYS}


def _hash_join(plan: P.HashJoin, state: _ExecState) -> Iterator[Tuple_]:
    table = _build_hash_ordered(plan.right, plan.right_key, state)
    for left_tup in _tuples(plan.left, state):
        left_key_value = state.eval_scalar(plan.left_key, left_tup)
        keys = _join_keys(left_key_value)
        for right_tup in _probe(table, keys, left_key_value):
            merged = dict(left_tup)
            merged.update(_strip_order(right_tup))
            yield merged


def _group_by(plan: P.GroupBy, state: _ExecState) -> Iterator[Tuple_]:
    join = plan.input
    table = _build_hash_ordered(join.right, join.right_key, state)
    for left_tup in _tuples(join.left, state):
        left_key_value = state.eval_scalar(join.left_key, left_tup)
        keys = _join_keys(left_key_value)
        group: Sequence = []
        for right_tup in _probe(table, keys, left_key_value):
            merged = dict(left_tup)
            merged.update(_strip_order(right_tup))
            group.extend(state.eval_scalar(plan.per_match, merged))
        out = dict(left_tup)
        out[plan.group_var] = group
        yield out


def _build_hash_ordered(
    plan_right: P.Plan, right_key, state: _ExecState
) -> dict[object, list[Tuple_]]:
    """Build the hash table.  Each right tuple is stamped with its stream
    position (to restore right-stream order across multiple matching keys)
    and its evaluated key value (for exact probe-time re-verification)."""
    table: dict[object, list[Tuple_]] = {}
    for tup in _with_order(_tuples(plan_right, state)):
        key_value = state.eval_scalar(right_key, _strip_order(tup))
        tup["__keyval__"] = key_value
        for key in _join_keys(key_value):
            table.setdefault(key, []).append(tup)
    return table
