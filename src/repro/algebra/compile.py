"""Compilation of core expressions into algebra plans (Section 4.2).

The compiler recognizes the FLWOR *pipeline* shape that normalization
produces — a chain of nested ``for``/``let``/``if`` — and builds the
corresponding tuple-stream plan.  The optimizer
(:mod:`repro.algebra.rewrite`) then restructures the pipeline into join /
outer-join/group-by plans when the side-effect guards allow.  Everything
else compiles to the :class:`~repro.algebra.plan.EvalExpr` fallback, which
simply interprets (the paper's architecture likewise only rewrites plans
matching its rules' preconditions).

The whole query is always wrapped in a top-level :class:`Snap` — "recall
that the query is always wrapped into a top-level snap" (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.lang import core_ast as core
from repro.algebra import plan as P

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine
    from repro.obs.tracer import Tracer
    from repro.semantics.update import ApplySemantics


@dataclass
class ForStep:
    var: str
    source: core.CoreExpr
    position_var: Optional[str] = None


@dataclass
class LetStep:
    var: str
    source: core.CoreExpr


@dataclass
class WhereStep:
    predicate: core.CoreExpr


Step = Union[ForStep, LetStep, WhereStep]


@dataclass
class Pipeline:
    """A decomposed FLWOR chain: ordered steps, optional order-by specs,
    and the return expression."""

    steps: list[Step] = field(default_factory=list)
    ret: core.CoreExpr = None  # type: ignore[assignment]
    order_specs: list = field(default_factory=list)  # list[core.COrderSpec]


def decompose_pipeline(expr: core.CoreExpr) -> Pipeline | None:
    """Split a nested for/let/if chain — or an order-by FLWOR — into a
    :class:`Pipeline`.

    Returns None when *expr* is not a FLWOR (no leading for/let).
    ``if (C) then R else ()`` inside the chain is a ``where`` conjunct —
    the inverse of the normalization rule.
    """
    if isinstance(expr, core.COrderedFLWOR):
        steps: list[Step] = []
        for clause in expr.clauses:
            if isinstance(clause, core.CForClause):
                steps.append(
                    ForStep(clause.var, clause.source, clause.position_var)
                )
            else:
                steps.append(LetStep(clause.var, clause.source))
        if expr.where is not None:
            for conjunct in _split_conjuncts(expr.where):
                steps.append(WhereStep(conjunct))
        return Pipeline(steps=steps, ret=expr.ret, order_specs=list(expr.specs))
    steps = []
    current = expr
    while True:
        if isinstance(current, core.CFor):
            steps.append(ForStep(current.var, current.source, current.position_var))
            current = current.body
        elif isinstance(current, core.CLet):
            steps.append(LetStep(current.var, current.source))
            current = current.body
        elif (
            isinstance(current, core.CIf)
            and isinstance(current.orelse, core.CEmpty)
            and steps
        ):
            for conjunct in _split_conjuncts(current.cond):
                steps.append(WhereStep(conjunct))
            current = current.then
        else:
            break
    if not any(isinstance(s, (ForStep, LetStep)) for s in steps):
        return None
    return Pipeline(steps=steps, ret=current)


def _split_conjuncts(expr: core.CoreExpr) -> list[core.CoreExpr]:
    if isinstance(expr, core.CBool) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def finish_pipeline(plan: P.Plan, pipeline: Pipeline) -> P.Plan:
    """Wrap a tuple-stream plan with the pipeline's order-by (if any) and
    its return clause."""
    if pipeline.order_specs:
        plan = P.OrderBySort(input=plan, specs=pipeline.order_specs)
    return P.MapFromItem(input=plan, ret=pipeline.ret)


def naive_plan(pipeline: Pipeline) -> P.Plan:
    """The unoptimized pipeline plan (nested-loop semantics)."""
    plan: P.Plan = P.UnitTuple()
    for step in pipeline.steps:
        if isinstance(step, ForStep):
            plan = P.MapConcat(
                input=plan,
                var=step.var,
                source=step.source,
                position_var=step.position_var,
            )
        elif isinstance(step, LetStep):
            plan = P.LetBind(input=plan, var=step.var, source=step.source)
        else:
            plan = P.Select(input=plan, predicate=step.predicate)
    return finish_pipeline(plan, pipeline)


def compile_query(
    body: core.CoreExpr,
    engine: "Engine",
    optimize: bool = True,
    semantics: "ApplySemantics | None" = None,
    tracer: "Tracer | None" = None,
) -> P.Plan:
    """Compile a query body to a plan, optionally optimized.

    The result is always ``Snap { ... }`` with the given update-application
    *semantics* (the engine's default when omitted).  A *tracer* records
    rewrite-rule firings and per-rule spans (see
    :mod:`repro.algebra.rewrite`).
    """
    inner = _compile_body(body, engine, optimize, tracer)
    mode = (semantics or engine.default_semantics).value
    return P.Snap(input=inner, mode=mode)


def _compile_body(
    body: core.CoreExpr,
    engine: "Engine",
    optimize: bool,
    tracer: "Tracer | None" = None,
) -> P.Plan:
    pipeline = decompose_pipeline(body)
    if pipeline is None:
        return P.EvalExpr(expr=body)
    if optimize:
        from repro.algebra.rewrite import try_optimize
        from repro.index import Statistics

        stats = Statistics.from_store(engine.store)
        optimized = try_optimize(pipeline, engine.functions, tracer, stats)
        if optimized is not None:
            return optimized
    return naive_plan(pipeline)
