"""Rule-based plan rewriting (Sections 4.2–4.3).

Two rewrite rules are implemented, both guarded by the side-effect
judgment:

* **hash join** — ``for $x in A ... for $y in B ... where f($x) = g($y)``
  becomes ``HashJoin(A-stream, B-stream)``, replacing the O(|A|·|B|)
  nested loop by O(|A| + |B| + |matches|);
* **outer-join/group-by** — the paper's XMark Q8 variant,
  ``for $p in A let $a := (for $t in B where f($p) = g($t) return E)
  return R`` becomes
  ``MapFromItem{R}(GroupBy[$a, E](LeftOuterJoin(A, B) on f = g))``.

Guards (Section 4.3 "the optimization rules must be guarded by appropriate
preconditions"):

1. **Innermost snap** — no sub-expression of the pipeline may contain a
   ``snap`` (or call a snapping function): inside the innermost snap the
   store cannot change, so pure sub-expressions may be reordered freely
   (Section 4.2).  Any ``snap`` disables rewriting (conservative).
2. **Purity of restructured inputs** — the inner branch (B) and the join
   predicate must be pure: the join evaluates B *once* instead of once per
   outer tuple, which would change how many times B's effects fire ("we
   must check that the inner branch of a join does not have updates").
3. **Cardinality preservation for effects** — expressions that may collect
   updates (E, R, A) are only ever moved to positions where they are still
   evaluated exactly once per original iteration, in the original order.
"""

from __future__ import annotations

from repro.algebra import plan as P
from repro.algebra.compile import (
    ForStep,
    LetStep,
    Pipeline,
    Step,
    WhereStep,
    decompose_pipeline,
    finish_pipeline,
)
from repro.algebra.properties import EffectAnalyzer, free_variables
from repro.lang import core_ast as core
from repro.obs.tracer import Tracer, maybe_span
from repro.semantics.context import FunctionRegistry

#: The rewrite rules in attempt order, as reported by ``explain``.
RULE_NAMES = ("hoist-invariant-lets", "outer-join-group-by", "hash-join")


def try_optimize(
    pipeline: Pipeline,
    registry: FunctionRegistry,
    tracer: Tracer | None = None,
    stats=None,
) -> P.Plan | None:
    """Attempt the rewrites; None means "no rewrite applies, use the naive
    plan".

    With a *tracer*, every rule records a :class:`RuleFiring` (fired or
    not, with the guard detail that decided it), each attempt runs under a
    ``rewrite:<rule>`` span, and the per-clause purity verdicts feeding the
    guards are captured for ``explain``.

    With *stats* (a :class:`repro.index.Statistics`), a cost-based pass
    follows the rules: MapConcat sources shaped ``B//name`` become
    :class:`~repro.algebra.plan.IndexScan` when the estimated posting
    count beats a sequential walk, hash joins build on their estimated
    smaller side, and the hash-join rule picks the candidate inner
    branch with the fewest estimated build rows.  Every choice (and
    every rejected alternative) is recorded on the tracer's ``costs``
    channel.  Cost decisions never relax a guard — they pick among
    plans the guards already admitted.
    """
    analyzer = EffectAnalyzer(registry)
    if tracer is not None:
        tracer.record_purity(purity_verdicts(pipeline, analyzer))
    if _contains_snap(pipeline, analyzer):
        if tracer is not None:
            blocked = {
                "reason": "pipeline contains a snap (innermost-snap guard)"
            }
            for name in RULE_NAMES:
                tracer.rule(name, fired=False, detail=blocked)
        return None
    with maybe_span(tracer, "rewrite:hoist-invariant-lets"):
        hoisted = hoist_invariant_lets(pipeline, analyzer)
    if tracer is not None:
        tracer.rule(
            "hoist-invariant-lets",
            fired=hoisted is not pipeline,
            detail=None
            if hoisted is not pipeline
            else {"reason": "no pure loop-invariant let clause"},
        )
    with maybe_span(tracer, "rewrite:outer-join-group-by"):
        plan = _try_groupby(hoisted, analyzer)
    if tracer is not None:
        tracer.rule(
            "outer-join-group-by",
            fired=plan is not None,
            detail=None
            if plan is not None
            else {"reason": "no pure, independent let-bound inner FLWOR "
                            "with a separable join equality"},
        )
    if plan is None:
        with maybe_span(tracer, "rewrite:hash-join"):
            plan = _try_hashjoin(hoisted, analyzer, stats, tracer)
        if tracer is not None:
            tracer.rule(
                "hash-join",
                fired=plan is not None,
                detail=None
                if plan is not None
                else {"reason": "no pure, independent inner for clause "
                                "with a separable join equality"},
            )
    elif tracer is not None:
        tracer.rule(
            "hash-join",
            fired=False,
            detail={"reason": "not attempted (outer-join-group-by fired)"},
        )
    rules_changed = plan is not None or hoisted is not pipeline
    if plan is None:
        from repro.algebra.compile import naive_plan

        plan = naive_plan(hoisted)
    cost_changed = _cost_pass(plan, analyzer, stats, tracer)
    if rules_changed or cost_changed:
        return plan
    return None


def purity_verdicts(
    pipeline: Pipeline, analyzer: EffectAnalyzer
) -> list[dict]:
    """Per-clause effect verdicts — the evidence the rewrite guards use.

    Each entry labels one pipeline clause (``for $x`` / ``let $v`` /
    ``where`` / ``order by`` / ``return``) with the analyzer's judgment of
    its source expression.
    """
    verdicts: list[dict] = []

    def verdict(clause: str, expr: core.CoreExpr) -> dict:
        props = analyzer.analyze(expr)
        return {
            "clause": clause,
            "pure": props.pure,
            "may_update": props.may_update,
            "may_snap": props.may_snap,
        }

    for step in pipeline.steps:
        if isinstance(step, ForStep):
            verdicts.append(verdict(f"for ${step.var}", step.source))
        elif isinstance(step, LetStep):
            verdicts.append(verdict(f"let ${step.var}", step.source))
        else:
            verdicts.append(verdict("where", step.predicate))
    for spec in pipeline.order_specs:
        verdicts.append(verdict("order by", spec.expr))
    verdicts.append(verdict("return", pipeline.ret))
    return verdicts


def hoist_invariant_lets(
    pipeline: Pipeline, analyzer: EffectAnalyzer
) -> Pipeline:
    """Loop-invariant code motion for let clauses.

    A ``let $v := E`` whose source is pure and independent of every
    variable bound by *preceding* for clauses is evaluated identically on
    every iteration; moving it in front of those loops evaluates it once.
    Guarded by purity (an effectful E must keep its per-iteration
    cardinality) — the same cardinality argument as the join guard.
    Returns the original pipeline object when nothing moves.
    """
    steps = list(pipeline.steps)
    moved = False
    for index in range(1, len(steps)):
        step = steps[index]
        if not isinstance(step, LetStep):
            continue
        if not analyzer.analyze(step.source).pure:
            continue
        free = free_variables(step.source)
        # Find the earliest position where every variable the source needs
        # is already bound.
        target = index
        for position in range(index - 1, -1, -1):
            previous = steps[position]
            if isinstance(previous, (ForStep, LetStep)):
                binds = {previous.var}
                if isinstance(previous, ForStep) and previous.position_var:
                    binds.add(previous.position_var)
                if binds & free:
                    break
                # Hoisting above a pure let/for is fine; hoisting above a
                # WhereStep would change how often E runs only if E were
                # effectful, which we excluded — but it could *evaluate*
                # E when the where filters everything out; that is safe
                # for a pure E.
            target = position
        if target < index:
            steps.insert(target, steps.pop(index))
            moved = True
    if not moved:
        return pipeline
    return Pipeline(
        steps=steps, ret=pipeline.ret, order_specs=pipeline.order_specs
    )


def _pipeline_exprs(pipeline: Pipeline) -> list[core.CoreExpr]:
    exprs: list[core.CoreExpr] = []
    for step in pipeline.steps:
        if isinstance(step, (ForStep, LetStep)):
            exprs.append(step.source)
        else:
            exprs.append(step.predicate)
    for spec in pipeline.order_specs:
        exprs.append(spec.expr)
    exprs.append(pipeline.ret)
    return exprs


def _contains_snap(pipeline: Pipeline, analyzer: EffectAnalyzer) -> bool:
    return any(
        analyzer.analyze(expr).may_snap for expr in _pipeline_exprs(pipeline)
    )


def _bound_vars(steps: list[Step]) -> set[str]:
    bound: set[str] = set()
    for step in steps:
        if isinstance(step, ForStep):
            bound.add(step.var)
            if step.position_var:
                bound.add(step.position_var)
        elif isinstance(step, LetStep):
            bound.add(step.var)
    return bound


def _split_equality(
    predicate: core.CoreExpr,
    outer_vars: set[str],
    inner_var: str,
    pipeline_vars: set[str],
) -> tuple[core.CoreExpr, core.CoreExpr] | None:
    """If *predicate* is a general '=' whose sides separate into an
    outer-only expression and an inner-only expression, return
    (outer_key, inner_key); otherwise None."""
    if not (
        isinstance(predicate, core.CComparison)
        and predicate.style == "general"
        and predicate.op == "eq"
    ):
        return None
    left_free = free_variables(predicate.left) & pipeline_vars
    right_free = free_variables(predicate.right) & pipeline_vars
    if left_free <= outer_vars and right_free <= {inner_var} and right_free:
        return predicate.left, predicate.right
    if right_free <= outer_vars and left_free <= {inner_var} and left_free:
        return predicate.right, predicate.left
    return None


def _build_steps(plan: P.Plan, steps: list[Step]) -> P.Plan:
    for step in steps:
        if isinstance(step, ForStep):
            plan = P.MapConcat(
                input=plan,
                var=step.var,
                source=step.source,
                position_var=step.position_var,
            )
        elif isinstance(step, LetStep):
            plan = P.LetBind(input=plan, var=step.var, source=step.source)
        else:
            plan = P.Select(input=plan, predicate=step.predicate)
    return plan


# ----------------------------------------------------------------------
# Rewrite 1: outer-join / group-by (the paper's Section 4.3 plan)
# ----------------------------------------------------------------------

def _try_groupby(pipeline: Pipeline, analyzer: EffectAnalyzer) -> P.Plan | None:
    pipeline_vars = _bound_vars(pipeline.steps)
    for index, step in enumerate(pipeline.steps):
        if not isinstance(step, LetStep):
            continue
        inner = decompose_pipeline(step.source)
        if inner is None:
            continue
        rewritten = _match_inner_join(
            pipeline, index, step, inner, analyzer, pipeline_vars
        )
        if rewritten is not None:
            return rewritten
    return None


def _match_inner_join(
    pipeline: Pipeline,
    let_index: int,
    let_step: LetStep,
    inner: Pipeline,
    analyzer: EffectAnalyzer,
    pipeline_vars: set[str],
) -> P.Plan | None:
    # Inner shape: exactly one for, then where conjuncts; ret is E.
    if inner.order_specs:
        return None  # an ordered inner FLWOR keeps its own evaluation
    fors = [s for s in inner.steps if isinstance(s, ForStep)]
    lets = [s for s in inner.steps if isinstance(s, LetStep)]
    wheres = [s for s in inner.steps if isinstance(s, WhereStep)]
    if len(fors) != 1 or lets or inner.steps[0] is not fors[0]:
        return None
    inner_for = fors[0]
    if inner_for.position_var is not None:
        return None
    outer_steps = pipeline.steps[:let_index]
    outer_vars = _bound_vars(outer_steps)
    all_vars = pipeline_vars | {inner_for.var}
    # Guard 2: B and every inner where conjunct must be pure, and B must be
    # independent of the outer pipeline variables.
    if not analyzer.analyze(inner_for.source).pure:
        return None
    if free_variables(inner_for.source) & pipeline_vars:
        return None
    join_keys: tuple[core.CoreExpr, core.CoreExpr] | None = None
    extra_guards: list[core.CoreExpr] = []
    right_selects: list[core.CoreExpr] = []
    for where in wheres:
        if not analyzer.analyze(where.predicate).pure:
            return None
        if join_keys is None:
            join_keys = _split_equality(
                where.predicate, outer_vars, inner_for.var, all_vars
            )
            if join_keys is not None:
                continue
        pred_vars = free_variables(where.predicate) & all_vars
        if pred_vars <= {inner_for.var}:
            right_selects.append(where.predicate)
        else:
            extra_guards.append(where.predicate)
    if join_keys is None:
        return None
    # Guard 3: E (inner.ret) may collect updates but we checked globally it
    # cannot snap; it runs once per match in both plans.
    per_match = inner.ret
    for guard in reversed(extra_guards):
        per_match = core.CIf(cond=guard, then=per_match, orelse=core.CEmpty())
    left = _build_steps(P.UnitTuple(), outer_steps)
    right: P.Plan = P.MapConcat(
        input=P.UnitTuple(), var=inner_for.var, source=inner_for.source
    )
    for predicate in right_selects:
        right = P.Select(input=right, predicate=predicate)
    join = P.LeftOuterJoin(
        left=left, right=right, left_key=join_keys[0], right_key=join_keys[1]
    )
    grouped: P.Plan = P.GroupBy(
        input=join, group_var=let_step.var, per_match=per_match
    )
    grouped = _build_steps(grouped, pipeline.steps[let_index + 1 :])
    return finish_pipeline(grouped, pipeline)


# ----------------------------------------------------------------------
# Rewrite 2: plain hash join
# ----------------------------------------------------------------------

def _hashjoin_candidates(
    pipeline: Pipeline, analyzer: EffectAnalyzer
) -> list[dict]:
    """Every inner for clause the hash-join guards admit.

    Each candidate records the clause index, the separated join keys,
    and the pushdown classification of the surrounding where block —
    everything :func:`_build_hashjoin` needs to construct the plan.
    """
    pipeline_vars = _bound_vars(pipeline.steps)
    steps = pipeline.steps
    candidates: list[dict] = []
    for j, step in enumerate(steps):
        if not isinstance(step, ForStep) or j == 0:
            continue
        if step.position_var is not None:
            continue
        inner_var = step.var
        outer_steps = steps[:j]
        outer_vars = _bound_vars(outer_steps)
        if not any(isinstance(s, ForStep) for s in outer_steps):
            continue
        # Guard 2: the inner branch must be pure and independent.
        if not analyzer.analyze(step.source).pure:
            continue
        if free_variables(step.source) & pipeline_vars:
            continue
        # Find a separable equality among the WhereSteps after j; classify
        # the other conjuncts in the same block for pushdown.
        join_keys = None
        join_where_index = None
        left_pushdown: list[int] = []
        right_pushdown: list[int] = []
        for k in range(j + 1, len(steps)):
            where = steps[k]
            if isinstance(where, (ForStep, LetStep)):
                break  # only rewrite across a contiguous where block
            assert isinstance(where, WhereStep)
            if not analyzer.analyze(where.predicate).pure:
                continue
            if join_keys is None:
                join_keys = _split_equality(
                    where.predicate, outer_vars, inner_var, pipeline_vars
                )
                if join_keys is not None:
                    join_where_index = k
                    continue
            # Pure one-sided conjuncts can filter their stream *before*
            # the join (classic selection pushdown): fewer build rows /
            # probe rows, identical results.
            pred_vars = free_variables(where.predicate) & pipeline_vars
            if pred_vars <= outer_vars:
                left_pushdown.append(k)
            elif pred_vars <= {inner_var}:
                right_pushdown.append(k)
        if join_keys is None or join_where_index is None:
            continue
        candidates.append(
            {
                "j": j,
                "step": step,
                "join_keys": join_keys,
                "join_where_index": join_where_index,
                "left_pushdown": left_pushdown,
                "right_pushdown": right_pushdown,
            }
        )
    return candidates


def _build_hashjoin(
    pipeline: Pipeline, candidate: dict
) -> P.Plan:
    steps = pipeline.steps
    j = candidate["j"]
    step = candidate["step"]
    join_keys = candidate["join_keys"]
    outer_steps = steps[:j]
    left = _build_steps(P.UnitTuple(), outer_steps)
    for k in candidate["left_pushdown"]:
        left = P.Select(input=left, predicate=steps[k].predicate)
    right: P.Plan = P.MapConcat(
        input=P.UnitTuple(), var=step.var, source=step.source
    )
    for k in candidate["right_pushdown"]:
        right = P.Select(input=right, predicate=steps[k].predicate)
    joined: P.Plan = P.HashJoin(
        left=left,
        right=right,
        left_key=join_keys[0],
        right_key=join_keys[1],
    )
    consumed = {
        candidate["join_where_index"],
        *candidate["left_pushdown"],
        *candidate["right_pushdown"],
    }
    remaining = [
        s for i, s in enumerate(steps) if i > j and i not in consumed
    ]
    joined = _build_steps(joined, remaining)
    return finish_pipeline(joined, pipeline)


def _try_hashjoin(
    pipeline: Pipeline,
    analyzer: EffectAnalyzer,
    stats=None,
    tracer: Tracer | None = None,
) -> P.Plan | None:
    candidates = _hashjoin_candidates(pipeline, analyzer)
    if not candidates:
        return None
    chosen = candidates[0]
    if stats is not None and len(candidates) > 1:
        # Join order: among the admissible inner branches, build on the
        # one with the fewest estimated rows.  Ties keep textual order
        # (the deterministic pre-cost behavior).
        def build_rows(candidate: dict) -> int:
            return _estimate_source_rows(candidate["step"].source, stats)

        chosen = min(candidates, key=build_rows)
        if tracer is not None:
            from repro.index import CostDecision

            alternatives = [
                {
                    "plan": f"build ${c['step'].var}",
                    "est_rows": build_rows(c),
                }
                for c in candidates
            ]
            tracer.cost(
                CostDecision(
                    decision="join-order",
                    target="hash-join inner branch",
                    chosen=f"build ${chosen['step'].var}",
                    alternatives=alternatives,
                    reason=(
                        f"fewest estimated build rows "
                        f"({build_rows(chosen)})"
                    ),
                )
            )
    return _build_hashjoin(pipeline, chosen)


# ----------------------------------------------------------------------
# Cost-based pass: access paths and hash-join build sides
# ----------------------------------------------------------------------

def _descendant_name_source(expr: core.CoreExpr):
    """``(root, name, or_self)`` when *expr* is a predicate-free
    ``B//name`` (collapsed or uncollapsed), else None."""
    if not isinstance(expr, core.CPath):
        return None
    step = expr.step
    if not isinstance(step, core.CAxisStep):
        return None
    if (
        step.axis in ("descendant", "descendant-or-self")
        and step.test.kind == "name"
        and step.test.name not in (None, "*")
        and not step.predicates
    ):
        return expr.base, step.test.name, step.axis == "descendant-or-self"
    if (
        step.axis == "child"
        and step.test.kind == "name"
        and step.test.name not in (None, "*")
        and not step.predicates
        and isinstance(expr.base, core.CPath)
    ):
        dos = expr.base.step
        if (
            isinstance(dos, core.CAxisStep)
            and dos.axis == "descendant-or-self"
            and dos.test.kind == "node"
            and not dos.predicates
        ):
            # B/descendant-or-self::node()/child::name == B/descendant::name
            return expr.base.base, step.test.name, False
    return None


def _estimate_source_rows(expr: core.CoreExpr, stats) -> int:
    """Estimated item count of a for-clause source expression."""
    matched = _descendant_name_source(expr)
    if matched is not None:
        return max(1, stats.element_count(matched[1]))
    # Unknown shape: assume it visits a modest fraction of the store.
    return max(1, stats.total_nodes() // 10)


def _estimate_stream_rows(plan: P.Plan, stats) -> int:
    """Estimated tuple count of a tuple-stream chain."""
    if isinstance(plan, P.UnitTuple):
        return 1
    if isinstance(plan, P.IndexScan):
        rows = max(1, plan.est_rows)
        return _estimate_stream_rows(plan.input, stats) * rows
    if isinstance(plan, P.MapConcat):
        rows = _estimate_source_rows(plan.source, stats)
        return _estimate_stream_rows(plan.input, stats) * rows
    if isinstance(plan, P.LetBind):
        return _estimate_stream_rows(plan.input, stats)
    if isinstance(plan, P.Select):
        # Default filter selectivity of 1/3 — enough to order
        # alternatives, not meant to be calibrated.
        return max(1, _estimate_stream_rows(plan.input, stats) // 3)
    return max(1, stats.total_nodes() // 10)


def _cost_pass(plan: P.Plan, analyzer, stats, tracer) -> bool:
    """Cost-based physical choices over an already-guarded plan.

    Substitutes IndexScan for pure ``B//name`` MapConcat sources when
    the index estimate wins, and flips hash-join build sides onto the
    estimated smaller input.  Mutates *plan* in place; True when
    anything changed.  No-op without statistics or on stores below
    :data:`repro.index.MIN_TABLE_NODES` (plan-shape churn on miniature
    documents buys nothing and would destabilize small-plan tests and
    renderings).
    """
    if stats is None:
        return False
    from repro.index import (
        MIN_TABLE_NODES,
        CostDecision,
        hash_join_cost,
        index_scan_cost,
        seq_scan_cost,
    )

    total = stats.total_nodes()
    if total < MIN_TABLE_NODES:
        return False
    changed = False

    def record(decision: CostDecision) -> None:
        if tracer is not None:
            tracer.cost(decision)

    def transform(node: P.Plan | None) -> P.Plan | None:
        nonlocal changed
        if node is None:
            return None
        if isinstance(node, P.MapConcat):
            node.input = transform(node.input)
            matched = _descendant_name_source(node.source)
            if matched is None or not analyzer.analyze(node.source).pure:
                return node
            root, name, or_self = matched
            rows = stats.element_count(name)
            idx = index_scan_cost(rows)
            seq = seq_scan_cost(total)
            alternatives = [
                {"plan": "index-scan", "cost": idx, "est_rows": rows},
                {"plan": "seq-scan", "cost": seq, "est_rows": rows},
            ]
            target = f"for ${node.var} in …//{name}"
            if idx < seq:
                changed = True
                record(
                    CostDecision(
                        decision="access-path",
                        target=target,
                        chosen="index-scan",
                        alternatives=alternatives,
                        reason=(
                            f"index cost {idx:.1f} < "
                            f"sequential cost {seq:.1f}"
                        ),
                    )
                )
                return P.IndexScan(
                    input=node.input,
                    var=node.var,
                    source=node.source,
                    root=root,
                    name=name,
                    or_self=or_self,
                    position_var=node.position_var,
                    est_rows=rows,
                )
            record(
                CostDecision(
                    decision="access-path",
                    target=target,
                    chosen="seq-scan",
                    alternatives=alternatives,
                    reason=(
                        f"sequential cost {seq:.1f} <= "
                        f"index cost {idx:.1f}"
                    ),
                )
            )
            return node
        if isinstance(node, P.HashJoin):
            node.left = transform(node.left)
            node.right = transform(node.right)
            left_rows = _estimate_stream_rows(node.left, stats)
            right_rows = _estimate_stream_rows(node.right, stats)
            build_right = hash_join_cost(right_rows, left_rows)
            build_left = hash_join_cost(left_rows, right_rows)
            alternatives = [
                {
                    "plan": "build-right",
                    "cost": build_right,
                    "est_rows": right_rows,
                },
                {
                    "plan": "build-left",
                    "cost": build_left,
                    "est_rows": left_rows,
                },
            ]
            if build_left < build_right:
                node.build = "left"
                changed = True
                record(
                    CostDecision(
                        decision="hash-build-side",
                        target="hash-join",
                        chosen="build-left",
                        alternatives=alternatives,
                        reason=(
                            f"left estimate {left_rows} rows < "
                            f"right estimate {right_rows} rows"
                        ),
                    )
                )
            else:
                record(
                    CostDecision(
                        decision="hash-build-side",
                        target="hash-join",
                        chosen="build-right",
                        alternatives=alternatives,
                        reason=(
                            f"right estimate {right_rows} rows <= "
                            f"left estimate {left_rows} rows"
                        ),
                    )
                )
            return node
        if isinstance(node, P.LeftOuterJoin):
            node.left = transform(node.left)
            node.right = transform(node.right)
            return node
        if isinstance(
            node,
            (
                P.LetBind,
                P.Select,
                P.OrderBySort,
                P.MapFromItem,
                P.GroupBy,
                P.Snap,
            ),
        ):
            node.input = transform(node.input)
            return node
        return node

    transform(plan)
    return changed
