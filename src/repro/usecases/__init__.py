"""Packaged use cases from the paper (Section 2)."""

from repro.usecases.webservice import AuctionService

__all__ = ["AuctionService"]
