"""Packaged use cases from the paper (Section 2)."""

from repro.usecases.webservice import AuctionFrontEnd, AuctionService

__all__ = ["AuctionFrontEnd", "AuctionService"]
