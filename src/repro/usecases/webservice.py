"""The paper's Web-service use case (Section 2), as a reusable library.

An XQuery! module implements the service calls; this wrapper owns the
engine, loads the auction data and exposes Python methods.  The module
text below is the paper's code (Sections 2.2–2.5) completed with the
pieces the paper elides (``archivelog``), and exercises every XQuery!
feature the use case motivates:

* an update (the log insert) *inside a function that also returns a value*
  — Section 2.2;
* ``snap`` to make the insert visible to the rollover check in the same
  call — Section 2.3;
* a nested-snap counter (``nextid``) usable under any outer snap —
  Section 2.5.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING

from repro.concurrent.control import CancelToken
from repro.concurrent.executor import ConcurrentExecutor
from repro.engine import Engine, QueryResult
from repro.xmark import XMarkConfig, generate_auction_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability import DurableEngine

SERVICE_MODULE = """
declare variable $d := element counter { 0 };

declare function nextid() as xs:integer {
  snap { replace { $d/text() } with { $d + 1 },
         $d }
};

declare function archivelog($log, $archive) {
  snap insert { <batch size="{count($log/logentry)}">{ $log/logentry }</batch> }
       into { $archive }
};

declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return (
    (::: Logging code :::)
    let $name := $auction//person[@id = $userid]/name
    return
      (snap insert { <logentry id="{nextid()}"
                      user="{$name}"
                      itemid="{$itemid}"/> }
            into { $log },
       if (count($log/logentry) >= $maxlog)
       then (archivelog($log, $archive),
             snap delete { $log/logentry })
       else ()),
    (::: End logging code :::)
    $item
  )
};

declare function get_item_nolog($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return $item
};

declare function bids_for($bids, $itemid) {
  $bids/bid[@itemid = $itemid]
};

declare function highest_bid($bids, $itemid) {
  max(for $b in $bids/bid[@itemid = $itemid]
      return number($b/@amount))
};

declare function watchers($watchlist, $itemid) {
  $watchlist/watch[@itemid = $itemid]
};
"""


class AuctionService:
    """A tiny auction 'Web service' whose calls are XQuery! functions.

    Parameters:
        auction_xml: the auction document; generated at a small default
            scale when omitted.
        maxlog: rollover threshold — after this many log entries the log
            is summarized into the archive (Section 2.3).
        durable_path: when given, the service state (auction document,
            log, archive, counter) lives in a durable directory — every
            committed snap is journaled before the call returns, and
            restarting the service against the same path recovers the
            log and counter exactly where the last acknowledged call
            left them (see :mod:`repro.durability`).  If the directory
            already holds a store, *auction_xml* and *maxlog* are
            ignored in favour of the recovered state.
        durable_options: forwarded to
            :class:`~repro.durability.DurableEngine` (``fsync``,
            compaction thresholds, ``resilience=`` — a
            :class:`~repro.resilience.ResiliencePolicy` puts a circuit
            breaker on the journal, so a failing disk degrades the
            service to read-only instead of failing every call the
            hard way, ...).
    """

    def __init__(
        self,
        auction_xml: str | None = None,
        maxlog: int = 10,
        durable_path: str | None = None,
        **durable_options,
    ):
        self.durable: "DurableEngine | None" = None
        if durable_path is not None:
            from repro.durability import DurableEngine
            from repro.durability import manifest as _manifest

            if _manifest.exists(durable_path):
                # Recovery: the checkpoint+journal pair holds the store,
                # the documents and the global bindings, but *functions*
                # are not persisted — re-register them by reloading the
                # module on the inner engine (no auto-checkpoint), then
                # put back the recovered bindings that the module's
                # variable initializers clobbered ($d must keep its
                # counter, not reset to 0).  The corrected state is then
                # folded into a fresh checkpoint so a crash right after
                # restart recovers the same thing.
                self.durable = DurableEngine(durable_path, **durable_options)
                inner = self.durable.engine
                recovered_globals = dict(inner.evaluator.globals)
                inner.load_module(SERVICE_MODULE)
                inner.evaluator.globals.update(recovered_globals)
                # Directories persisted before the bid/watchlist
                # endpoints existed lack these roots; give them empty
                # ones so the transactional endpoints work post-upgrade.
                for name, fragment in (
                    ("bids", "<bids/>"),
                    ("watchlist", "<watchlist/>"),
                ):
                    if name not in inner.evaluator.globals:
                        inner.bind(name, inner.parse_fragment(fragment))
                self.durable.checkpoint()
                self.engine = self.durable
            else:
                inner = Engine()
                self._setup(inner, auction_xml, maxlog)
                self.durable = DurableEngine(
                    durable_path, engine=inner, **durable_options
                )
                self.engine = self.durable
        else:
            self.engine = Engine()
            self._setup(self.engine, auction_xml, maxlog)
        # Server discipline: each service call is one *prepared*,
        # parameterized query — the frontend runs once here, and per-call
        # arguments are bound as data, never spliced into query text (the
        # XQJ bindString idiom; immune to query injection by construction).
        self._get_item = self.engine.prepare("get_item($itemid, $userid)")
        self._get_item_nolog = self.engine.prepare(
            "get_item_nolog($itemid, $userid)"
        )
        self._next_id = self.engine.prepare("data(nextid())")

    @staticmethod
    def _setup(engine: Engine, auction_xml: str | None, maxlog: int) -> None:
        if auction_xml is None:
            auction_xml = generate_auction_xml(XMarkConfig())
        engine.load_document("auction", auction_xml)
        engine.bind("log", engine.parse_fragment("<log/>"))
        engine.bind("archive", engine.parse_fragment("<archive/>"))
        engine.bind("bids", engine.parse_fragment("<bids/>"))
        engine.bind("watchlist", engine.parse_fragment("<watchlist/>"))
        engine.bind("maxlog", maxlog)
        engine.load_module(SERVICE_MODULE)

    def close(self) -> None:
        """Close the durable backend, if any (no-op otherwise)."""
        if self.durable is not None:
            self.durable.close()

    def health(self):
        """The backing engine's health report (durable or in-memory)."""
        return self.engine.health()

    # -- service calls ----------------------------------------------------

    def get_item(self, itemid: str, userid: str) -> QueryResult:
        """The logged service call of Section 2.2/2.3."""
        result = self._get_item.execute(
            bindings={"itemid": itemid, "userid": userid}
        )
        # Prepared execution bypasses DurableEngine.execute, so the
        # journal-size check rides on the service call instead.
        if self.durable is not None:
            self.durable.maybe_compact()
        return result

    def get_item_nolog(self, itemid: str, userid: str) -> QueryResult:
        """The original, log-free implementation (baseline)."""
        return self._get_item_nolog.execute(
            bindings={"itemid": itemid, "userid": userid}
        )

    def next_id(self) -> int:
        """Expose the nested-snap counter of Section 2.5."""
        value = int(self._next_id.execute().strings()[0])
        if self.durable is not None:
            self.durable.maybe_compact()
        return value

    # -- transactional endpoints ------------------------------------------

    def place_bid(self, itemid: str, userid: str, amount: float) -> bool:
        """Place a bid — accepted only if it beats every existing bid.

        The read (current high bid) and the conditional write (the
        insert) run in **one MVCC transaction**: two racing bidders each
        see a consistent snapshot, and the first committer wins — the
        loser's commit aborts with
        :class:`~repro.errors.TransactionConflictError` (REPR0008,
        transient: retry re-reads the new high bid).  On a durable
        service the accepted bid is journaled atomically before this
        returns True.  Returns False for a bid that does not beat the
        current high (the transaction rolls back; no trace anywhere).
        """
        with self.engine.session() as session:
            with session.transaction() as txn:
                beaten = txn.execute(
                    "count($bids/bid[@itemid = $itemid]"
                    "[number(@amount) >= $amount])",
                    bindings={"itemid": itemid, "amount": float(amount)},
                ).first_value()
                if int(beaten) > 0:
                    txn.rollback()
                    return False
                txn.execute(
                    'snap insert { <bid itemid="{$itemid}" '
                    'user="{$userid}" amount="{$amount}"/> } '
                    "into { $bids }",
                    bindings={
                        "itemid": itemid,
                        "userid": userid,
                        "amount": float(amount),
                    },
                )
            return True

    def add_watch(self, itemid: str, userid: str) -> bool:
        """Add *userid* to *itemid*'s watch list, transactionally.

        Idempotent: returns False (and writes nothing) when the pair is
        already present.  The duplicate check and the insert share one
        snapshot, so two racing adds of the same pair cannot both land —
        the second either sees the first (returns False) or conflicts on
        commit (REPR0008, retry then sees it).
        """
        with self.engine.session() as session:
            with session.transaction() as txn:
                present = txn.execute(
                    "count($watchlist/watch[@itemid = $itemid]"
                    "[@user = $userid])",
                    bindings={"itemid": itemid, "userid": userid},
                ).first_value()
                if int(present) > 0:
                    txn.rollback()
                    return False
                txn.execute(
                    'snap insert { <watch itemid="{$itemid}" '
                    'user="{$userid}"/> } into { $watchlist }',
                    bindings={"itemid": itemid, "userid": userid},
                )
            return True

    def highest_bid(self, itemid: str) -> float | None:
        """The current high bid for *itemid* (None when no bids)."""
        value = self.engine.execute(
            "highest_bid($bids, $itemid)", bindings={"itemid": itemid}
        ).first_value()
        return None if value is None else float(value)

    def bid_count(self, itemid: str) -> int:
        return int(
            self.engine.execute(
                "count(bids_for($bids, $itemid))",
                bindings={"itemid": itemid},
            ).first_value()
        )

    def watchers(self, itemid: str) -> list[str]:
        return self.engine.execute(
            "for $w in watchers($watchlist, $itemid) "
            "return string($w/@user)",
            bindings={"itemid": itemid},
        ).strings()

    # -- observability ------------------------------------------------------

    def log_entries(self) -> int:
        return int(self.engine.execute("count($log/logentry)").first_value())

    def archive_batches(self) -> int:
        return int(self.engine.execute("count($archive/batch)").first_value())

    def archived_entries(self) -> int:
        return int(
            self.engine.execute(
                "count($archive/batch/logentry)"
            ).first_value()
        )

    def log_xml(self) -> str:
        return self.engine.execute("$log").serialize()

    def archive_xml(self) -> str:
        return self.engine.execute("$archive").serialize()


class AuctionFrontEnd:
    """A concurrent serving layer over :class:`AuctionService`.

    The paper frames the auction service as a Web service handling many
    client requests; this front end adds the serving half the paper
    leaves implicit: a worker pool with a bounded request queue,
    per-request deadlines, and graceful degradation under load.

    * ``get_item_nolog`` is provably read-only, so the executor routes
      it to the lock-free snapshot path — concurrent lookups share one
      frozen view and its memoized derived data.
    * ``get_item`` inserts a log entry (and may roll the log over), so
      it serializes through the store's write lock; its snaps stay
      atomic and readers never see a torn log.
    * An overloaded queue sheds requests fast with a *structured*
      :class:`~repro.errors.ServiceOverloadedError` — queue depth,
      capacity, the request's wait budget and a ``retry_after_ms``
      backoff hint, all machine-readable via ``to_dict()`` — instead of
      building an unbounded backlog.  A request that exceeds its
      deadline fails with :class:`~repro.errors.QueryTimeoutError` —
      queued or mid-execution — leaving the store untouched by its
      pending Δ.
    * With a ``resilience`` policy, admission limits bound what one
      request may consume, load shedding becomes latency-aware, and
      transient durability faults are retried with backoff (see
      :class:`~repro.resilience.ResiliencePolicy`).
    * Reads flow through a transport-agnostic
      :class:`~repro.cluster.QueryRouter`: with no ``cluster`` the
      router holds a single in-process backend and behaves
      byte-for-byte like the pre-cluster executor path; with a
      :class:`~repro.cluster.ClusterSupervisor` the provably read-only
      calls may be served by replica processes within a staleness
      bound (``max_lag_seq``), and after a failover writes are routed
      to the promoted replica — one code path for both topologies.

    Aggregated serving evidence (queue depth, lock waits, snapshot age,
    shed/timeout counts) is at :attr:`metrics`; :meth:`health` reports
    the whole stack — serving, admission, durability, circuit state.
    """

    def __init__(
        self,
        service: AuctionService | None = None,
        workers: int = 4,
        queue_size: int = 64,
        default_timeout_ms: float | None = 1000.0,
        reads: str = "snapshot",
        resilience=None,
        cluster=None,
        max_lag_seq: int | None = None,
    ):
        self.service = service if service is not None else AuctionService()
        self.executor = ConcurrentExecutor(
            self.service.engine,
            workers=workers,
            queue_size=queue_size,
            default_timeout_ms=default_timeout_ms,
            reads=reads,
            resilience=resilience,
        )
        self.metrics = self.executor.metrics
        self.cluster = cluster
        from repro.cluster.router import InProcessBackend, QueryRouter

        # One read path for both topologies: the in-process backend's
        # readiness tracks the supervisor's view of the primary, so a
        # dead primary's (still-running) worker pool never serves.
        self.router = QueryRouter(
            InProcessBackend(
                self.executor,
                is_ready=(
                    (lambda: cluster.primary_alive)
                    if cluster is not None
                    else None
                ),
            ),
            supervisor=cluster,
            default_max_lag_seq=max_lag_seq,
        )
        from repro.resilience.retry import RetryPolicy

        # Transactional endpoints retry on OCC aborts (REPR0008 is in
        # the default transient whitelist): each attempt reruns the
        # whole read-check-write transaction on a fresh snapshot.
        self._txn_retry = (
            resilience.retry
            if resilience is not None and resilience.retry is not None
            else RetryPolicy()
        )

    def health(self):
        """Whole-stack health: serving + admission + engine sections
        (plus durability and circuit state on a durable service)."""
        return self.executor.health()

    # -- asynchronous service calls ---------------------------------------

    def submit_query(
        self,
        query: str,
        bindings: dict | None = None,
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
        max_lag_seq: int | None = None,
    ) -> "Future[QueryResult]":
        """Submit arbitrary *query* text through the serving stack.

        Caller-supplied values go in *bindings* — bound as data through
        the parameter-binding boundary, never spliced into the query
        text.  This is the load driver's entry point; admission control
        and queue bounds apply exactly as for the named service calls.
        A *max_lag_seq* bound marks the query as a routable read: it
        may then be served by a replica within that staleness bound.
        """
        if max_lag_seq is not None:
            return self.router.submit_read(
                query,
                bindings,
                timeout_ms=timeout_ms,
                cancel=cancel,
                max_lag_seq=max_lag_seq,
            )
        return self.executor.submit(
            query,
            bindings=bindings,
            timeout_ms=timeout_ms,
            cancel=cancel,
        )

    def submit_get_item(
        self,
        itemid: str,
        userid: str,
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
    ) -> "Future[QueryResult]":
        if self.cluster is not None and not self.cluster.primary_alive:
            # Failover write path: the promoted replica serves writes
            # over its channel; a router-pool thread waits on it.
            return self.router.submit_call(
                self.cluster.execute_write,
                "get_item($itemid, $userid)",
                {"itemid": itemid, "userid": userid},
                timeout_ms=timeout_ms,
            )
        return self.executor.submit(
            "get_item($itemid, $userid)",
            bindings={"itemid": itemid, "userid": userid},
            timeout_ms=timeout_ms,
            cancel=cancel,
        )

    def submit_get_item_nolog(
        self,
        itemid: str,
        userid: str,
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
        max_lag_seq: int | None = None,
    ) -> "Future[QueryResult]":
        return self.router.submit_read(
            "get_item_nolog($itemid, $userid)",
            {"itemid": itemid, "userid": userid},
            timeout_ms=timeout_ms,
            cancel=cancel,
            max_lag_seq=max_lag_seq,
        )

    # -- blocking convenience wrappers ------------------------------------

    def get_item(self, itemid: str, userid: str, **kwargs) -> QueryResult:
        return self.submit_get_item(itemid, userid, **kwargs).result()

    def get_item_nolog(self, itemid: str, userid: str, **kwargs) -> QueryResult:
        return self.submit_get_item_nolog(itemid, userid, **kwargs).result()

    # -- transactional endpoints -------------------------------------------

    def place_bid(self, itemid: str, userid: str, amount: float) -> bool:
        """Transactional bid (see :meth:`AuctionService.place_bid`),
        with OCC aborts retried under the front end's retry policy.
        Runs in the caller's thread: statements read a private snapshot
        without occupying a worker; only the commit takes the write
        lock."""
        return self._txn_retry.call(
            lambda: self.service.place_bid(itemid, userid, amount),
            tracer=self.executor.tracer,
        )

    def add_watch(self, itemid: str, userid: str) -> bool:
        """Transactional watch-list add, OCC-retried like
        :meth:`place_bid`."""
        return self._txn_retry.call(
            lambda: self.service.add_watch(itemid, userid),
            tracer=self.executor.tracer,
        )

    def shutdown(self, wait: bool = True) -> None:
        self.router.shutdown(wait=wait)
        self.executor.shutdown(wait=wait)

    def __enter__(self) -> "AuctionFrontEnd":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
