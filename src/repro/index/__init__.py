"""Structural and value indexes with a cost-based access-path chooser.

Three pieces:

* :mod:`repro.index.manager` — the :class:`IndexManager` living on every
  :class:`~repro.xdm.store.Store`: hash indexes over attribute values and
  text-atom tokens, maintained incrementally by the store's mutation
  primitives (and therefore in O(|Δ|) inside ``apply_update_list``),
  lazily built on first probe.  The store's element-name index
  (``_name_index``) is the structural half; the manager exposes its
  cardinalities to the optimizer.
* :mod:`repro.index.stats` — :class:`Statistics`: per-element-name
  cardinalities fed by the live name index, with an XMark-seeded variant
  for cost estimation before a document is loaded.
* :mod:`repro.index.cost` — the cost model: per-row constants for
  sequential scans, index probes and hash builds, the size threshold
  below which indexing is not attempted, and the :class:`CostDecision`
  records that ``Engine.explain`` surfaces.
"""

from repro.index.cost import (
    CostDecision,
    MIN_TABLE_NODES,
    hash_join_cost,
    index_scan_cost,
    seq_scan_cost,
)
from repro.index.manager import IndexManager, token_matcher, tokenize
from repro.index.stats import Statistics

__all__ = [
    "CostDecision",
    "IndexManager",
    "MIN_TABLE_NODES",
    "Statistics",
    "hash_join_cost",
    "index_scan_cost",
    "seq_scan_cost",
    "token_matcher",
    "tokenize",
]
