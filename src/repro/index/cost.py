"""The cost model behind the optimizer's access-path and join choices.

Deliberately simple — per-row constants calibrated against the Python
evaluator's relative costs, not absolute times.  What matters is the
*ordering* of alternatives: an index scan returning r rows beats a
sequential walk over N nodes when r ≪ N; a hash join should build on the
smaller input; joins should start from the smaller candidate table.

Below :data:`MIN_TABLE_NODES` total nodes none of this is attempted: on
miniature documents the plan-shape churn buys nothing measurable, and
keeping small plans in their familiar shape keeps them debuggable (and
the paper-facing Q8 plan rendering stable).
"""

from __future__ import annotations


#: Evaluator cost of visiting one node during a sequential tree walk.
SEQ_TUPLE_COST = 1.0
#: Fixed overhead of one index probe (hash lookups, verification setup).
INDEX_PROBE_COST = 8.0
#: Cost of fetching and verifying one index posting.
INDEX_ROW_COST = 1.2
#: Cost of hashing one row into a join build table.
HASH_BUILD_COST = 2.0
#: Cost of probing the build table with one row.
HASH_PROBE_COST = 1.0
#: Store sizes below this keep sequential plans (see module docstring).
MIN_TABLE_NODES = 2048


def seq_scan_cost(total_nodes: int) -> float:
    """Walking every node of the store once."""
    return total_nodes * SEQ_TUPLE_COST


def index_scan_cost(rows: int) -> float:
    """One name-index probe returning *rows* postings."""
    return INDEX_PROBE_COST + rows * INDEX_ROW_COST


def hash_join_cost(build_rows: int, probe_rows: int) -> float:
    """Building on *build_rows* and probing with *probe_rows*."""
    return build_rows * HASH_BUILD_COST + probe_rows * HASH_PROBE_COST


class CostDecision:
    """One optimizer choice: what was decided, what was rejected, why.

    Surfaced by ``Engine.explain`` (the ``costs`` list) next to — but
    separate from — the rewrite-rule firings: rules are correctness-
    guarded plan *transformations*, cost decisions pick among plans the
    guards already admitted.
    """

    __slots__ = ("decision", "target", "chosen", "alternatives", "reason")

    def __init__(
        self,
        decision: str,
        target: str,
        chosen: str,
        alternatives: list[dict],
        reason: str,
    ) -> None:
        self.decision = decision
        self.target = target
        self.chosen = chosen
        self.alternatives = alternatives
        self.reason = reason

    def to_dict(self) -> dict:
        return {
            "decision": self.decision,
            "target": self.target,
            "chosen": self.chosen,
            "alternatives": [dict(alt) for alt in self.alternatives],
            "reason": self.reason,
        }

    def __repr__(self) -> str:
        return (
            f"CostDecision({self.decision!r}, {self.target!r}, "
            f"chosen={self.chosen!r})"
        )
