"""Value indexes over a :class:`~repro.xdm.store.Store`.

Two hash indexes, both keyed by node *content* rather than attachment:

* the **attribute index** maps ``(attribute name, value)`` to the ids of
  the attribute nodes currently bearing that pair;
* the **token index** maps each whitespace-delimited token of a text
  node's value to the ids of the text nodes containing it.

Content keying is what makes incremental maintenance O(1) per value
operation: creating, revaluing, renaming or reclaiming a node touches
exactly its own postings, and *structural* mutations (insert, detach,
reorder) touch none at all — attachment is re-checked at probe time by
the caller, which walks the candidate's parent chain.  That re-check is
also what makes probes exact on detached subtrees and on copy-on-write
snapshots: a candidate set only ever needs to be a *superset* of the
truth, because every probe site verifies candidates against the actual
predicate before accepting them.

The token index answers ``contains(string(.), $needle)`` probes.  A
needle can span token and even text-node boundaries, so a probe scans
the token vocabulary with a predicate that is *complete*: if the needle
occurs anywhere in the concatenated text of an element, the first text
node overlapping the occurrence is guaranteed to hold a matching token
(see :func:`token_matcher` for the case analysis).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xdm.store import Store, _NodeRecord


def tokenize(value: Optional[str]) -> list[str]:
    """The whitespace-delimited tokens of a text value (case-sensitive)."""
    return value.split() if value else []


def token_matcher(needle: str) -> Callable[[str], bool] | None:
    """A predicate over index tokens that is complete for *needle*.

    Returns None when the needle cannot be anchored (empty, or starting
    with whitespace — the occurrence could then begin inside arbitrary
    whitespace that the token index never sees).

    Let ``x1`` be the needle's first whitespace-delimited token.  If the
    needle occurs in a text sequence, consider the first text node
    overlapping the occurrence and the token ``tok`` of that node
    containing the occurrence's first character (non-whitespace, so the
    token exists).  Case analysis on how much of ``x1`` fits in that
    node:

    * all of it, needle is a single token → ``x1 in tok``;
    * all of it, needle continues with whitespace → the token ends right
      after ``x1`` (the next needle character is whitespace, or the node
      ends) → ``tok.endswith(x1)``;
    * only a proper prefix (the occurrence spills into the next text
      node) → that prefix reaches the node's end → some non-empty proper
      prefix of ``x1`` is a suffix of ``tok``.

    The returned predicate accepts exactly those three shapes, so
    scanning the vocabulary with it can never miss a genuine occurrence;
    probe sites then verify candidates exactly.
    """
    if not needle or needle[0].isspace():
        return None
    x1 = needle.split()[0]
    multi = needle != x1  # any whitespace after the anchor token
    max_overlap = len(x1) - 1

    def matches(tok: str) -> bool:
        if multi:
            if tok.endswith(x1):
                return True
        elif x1 in tok:
            return True
        for k in range(1, min(len(tok), max_overlap) + 1):
            if tok[-k:] == x1[:k]:
                return True
        return False

    return matches


class IndexManager:
    """The value indexes of one store, plus their maintenance counters.

    Lifecycle: indexes are *lazy* — nothing is built until the first
    probe against the live store (``ensure_built``).  Once built they are
    maintained incrementally by the store's mutation hooks; a whole-store
    invalidation (checkpoint restore, persistence load) drops them, and
    the next probe rebuilds.  All maintenance happens on the writer's
    thread; snapshot readers only ever *read* the built dicts (via
    GIL-atomic copies) and never trigger a build.
    """

    __slots__ = (
        "_store",
        "built",
        "attr_index",
        "token_index",
        "probes",
        "hits",
        "maintained",
        "rebuilds",
        "rebuild_ms",
    )

    def __init__(self, store: "Store") -> None:
        self._store = store
        self.built = False
        # (attribute name, value) -> ids of attribute nodes bearing it.
        self.attr_index: dict[tuple[str, str], set[int]] = {}
        # token -> ids of text nodes whose value contains it.
        self.token_index: dict[str, set[int]] = {}
        self.probes = 0
        self.hits = 0
        self.maintained = 0
        self.rebuilds = 0
        self.rebuild_ms = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def ensure_built(self) -> None:
        """Build the indexes from the store's records (idempotent)."""
        if self.built:
            return
        from repro.xdm.store import NodeKind

        start = time.perf_counter()
        attr: dict[tuple[str, str], set[int]] = {}
        token: dict[str, set[int]] = {}
        for nid, rec in self._store._records.items():
            if rec.kind is NodeKind.ATTRIBUTE:
                attr.setdefault(
                    (rec.name or "", rec.value or ""), set()
                ).add(nid)
            elif rec.kind is NodeKind.TEXT:
                for tok in tokenize(rec.value):
                    token.setdefault(tok, set()).add(nid)
        self.attr_index = attr
        self.token_index = token
        self.built = True
        self.rebuilds += 1
        elapsed = (time.perf_counter() - start) * 1000.0
        self.rebuild_ms += elapsed
        obs = self._store._obs
        if obs is not None:
            obs.count("index.rebuilds")
            obs.observe("index.rebuild_ms", elapsed)

    def invalidate(self) -> None:
        """Drop the indexes; the next probe rebuilds from scratch."""
        if not self.built:
            return
        self.built = False
        self.attr_index = {}
        self.token_index = {}

    def rebuild(self) -> None:
        """Force a fresh build (recovery verification, tests)."""
        self.invalidate()
        self.ensure_built()

    # ------------------------------------------------------------------
    # Maintenance hooks (called by the store's mutators, pre-mutation
    # state in *rec*; no-ops while unbuilt)
    # ------------------------------------------------------------------

    def _add(self, kind, name: Optional[str], value: Optional[str], nid: int) -> None:
        from repro.xdm.store import NodeKind

        if kind is NodeKind.ATTRIBUTE:
            self.attr_index.setdefault(
                (name or "", value or ""), set()
            ).add(nid)
            self.maintained += 1
        elif kind is NodeKind.TEXT:
            for tok in tokenize(value):
                self.token_index.setdefault(tok, set()).add(nid)
            self.maintained += 1

    def _remove(self, kind, name: Optional[str], value: Optional[str], nid: int) -> None:
        from repro.xdm.store import NodeKind

        if kind is NodeKind.ATTRIBUTE:
            key = (name or "", value or "")
            postings = self.attr_index.get(key)
            if postings is not None:
                postings.discard(nid)
                if not postings:
                    del self.attr_index[key]
            self.maintained += 1
        elif kind is NodeKind.TEXT:
            for tok in tokenize(value):
                postings = self.token_index.get(tok)
                if postings is not None:
                    postings.discard(nid)
                    if not postings:
                        del self.token_index[tok]
            self.maintained += 1

    def on_alloc(self, nid: int, kind, name: Optional[str], value: Optional[str]) -> None:
        self._add(kind, name, value, nid)

    def on_set_value(self, nid: int, rec: "_NodeRecord", value: Optional[str]) -> None:
        self._remove(rec.kind, rec.name, rec.value, nid)
        self._add(rec.kind, rec.name, value, nid)

    def on_rename(self, nid: int, rec: "_NodeRecord", name: str) -> None:
        self._remove(rec.kind, rec.name, rec.value, nid)
        self._add(rec.kind, name, rec.value, nid)

    def on_free(self, nid: int, rec: "_NodeRecord") -> None:
        self._remove(rec.kind, rec.name, rec.value, nid)

    # ------------------------------------------------------------------
    # Probes (live store; the snapshot layer has its own, overlay-aware
    # versions built on the same dicts)
    # ------------------------------------------------------------------

    def attr_probe(self, name: str, value: str) -> tuple[int, ...]:
        """Ids of attribute nodes bearing ``name="value"`` (exact)."""
        self.ensure_built()
        self.probes += 1
        out = tuple(self.attr_index.get((name, value), ()))
        self.hits += len(out)
        obs = self._store._obs
        if obs is not None:
            obs.count("index.probes")
            obs.count("index.hits", len(out))
        return out

    def token_probe(self, needle: str) -> tuple[int, ...] | None:
        """Ids of text nodes that may witness an occurrence of *needle*.

        Complete (see :func:`token_matcher`) but not exact — callers must
        verify candidates.  None when the needle cannot be anchored.
        """
        matches = token_matcher(needle)
        if matches is None:
            return None
        self.ensure_built()
        self.probes += 1
        out: set[int] = set()
        for tok, postings in list(self.token_index.items()):
            if matches(tok):
                out.update(postings)
        self.hits += len(out)
        obs = self._store._obs
        if obs is not None:
            obs.count("index.probes")
            obs.count("index.hits", len(out))
        return tuple(out)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def distinct_attr_values(self, name: str) -> int:
        """Distinct values currently indexed for attribute *name*."""
        self.ensure_built()
        return sum(1 for key in self.attr_index if key[0] == name)

    def counters(self) -> dict[str, float]:
        return {
            "probes": self.probes,
            "hits": self.hits,
            "maintained": self.maintained,
            "rebuilds": self.rebuilds,
            "rebuild_ms": self.rebuild_ms,
        }

    def verify(self) -> None:
        """Compare the maintained indexes against a fresh rebuild.

        Raises :class:`~repro.errors.StoreError` on any divergence — the
        incremental maintenance hooks must keep the built indexes exactly
        equal to what a from-scratch build over the current records
        produces.  No-op while unbuilt.
        """
        if not self.built:
            return
        from repro.xdm.store import NodeKind

        attr: dict[tuple[str, str], set[int]] = {}
        token: dict[str, set[int]] = {}
        for nid, rec in self._store._records.items():
            if rec.kind is NodeKind.ATTRIBUTE:
                attr.setdefault(
                    (rec.name or "", rec.value or ""), set()
                ).add(nid)
            elif rec.kind is NodeKind.TEXT:
                for tok in tokenize(rec.value):
                    token.setdefault(tok, set()).add(nid)
        if attr != self.attr_index:
            diff = set(attr) ^ set(self.attr_index)
            raise StoreError(
                f"attribute index out of sync; diverging keys: "
                f"{sorted(diff)[:5]}"
            )
        if token != self.token_index:
            diff = set(token) ^ set(self.token_index)
            raise StoreError(
                f"token index out of sync; diverging tokens: "
                f"{sorted(diff)[:5]}"
            )
