"""Cardinality statistics feeding the cost-based optimizer.

The primary source is the live store: the element-name index gives exact
per-name cardinalities and ``len(_records)`` the total node count, both
O(#distinct names) to snapshot.  Before a document is loaded — or when
estimating for a document about to be generated — the XMark generator's
known selectivities seed the same numbers analytically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xdm.store import Store
    from repro.xmark.generator import XMarkConfig


class Statistics:
    """Per-element-name cardinalities and the total node count."""

    __slots__ = ("element_counts", "total", "source")

    def __init__(
        self,
        element_counts: Mapping[str, int],
        total: int,
        source: str = "manual",
    ) -> None:
        self.element_counts = dict(element_counts)
        self.total = total
        self.source = source

    @classmethod
    def from_store(cls, store: "Store") -> "Statistics":
        """Exact live counts read off the store's element-name index."""
        counts = {
            name: len(ids) for name, ids in store._name_index.items() if ids
        }
        return cls(counts, len(store._records), source="store")

    @classmethod
    def from_xmark(cls, config: "XMarkConfig") -> "Statistics":
        """The XMark generator's analytically known selectivities.

        Every per-item/person/auction child element count follows
        directly from the generator's templates; ``bidder`` uses the
        expectation of its uniform 0..max_bidders draw.
        """
        bidders = config.open_auctions * config.max_bidders // 2
        counts = {
            "site": 1,
            "regions": 1,
            "namerica": 1,
            "europe": 1,
            "people": 1,
            "open_auctions": 1,
            "closed_auctions": 1,
            "item": config.items,
            "quantity": config.items,
            "payment": config.items,
            "description": config.items,
            "text": config.items,
            "person": config.persons,
            "emailaddress": config.persons,
            "city": config.persons,
            "income": config.persons,
            # <name> appears under both items and persons.
            "name": config.items + config.persons,
            "open_auction": config.open_auctions,
            "initial": config.open_auctions,
            "current": config.open_auctions,
            "bidder": bidders,
            "personref": bidders,
            "increase": bidders,
            "closed_auction": config.closed_auctions,
            "seller": config.closed_auctions,
            "buyer": config.closed_auctions,
            "price": config.closed_auctions,
            "date": config.closed_auctions,
            "itemref": config.open_auctions + config.closed_auctions,
        }
        elements = sum(counts.values())
        # Attributes (~items + persons + open_auctions + refs) and text
        # nodes (one per leaf element) roughly double the element count.
        attributes = (
            config.items
            + config.persons
            + 2 * config.open_auctions
            + bidders
            + 3 * config.closed_auctions
        )
        texts = (
            4 * config.items
            + 4 * config.persons
            + 2 * config.open_auctions
            + bidders
            + 2 * config.closed_auctions
        )
        return cls(counts, elements + attributes + texts, source="xmark")

    def element_count(self, name: str) -> int:
        return self.element_counts.get(name, 0)

    def total_nodes(self) -> int:
        return self.total

    def __repr__(self) -> str:
        return (
            f"Statistics(source={self.source!r}, total={self.total}, "
            f"names={len(self.element_counts)})"
        )
