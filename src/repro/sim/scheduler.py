"""The seeded event-loop scheduler that owns all simulated interleaving.

One heap of ``(virtual_time, tie, sequence)``-ordered events drives the
whole simulated cluster: network deliveries, ship/probe rounds,
workload arrivals, fault injections.  Nothing in the simulation blocks
— every wait is an event on this heap, and the heap pop order *is* the
cluster's interleaving.

Determinism comes from three properties:

* time is :class:`~repro.loadgen.clock.VirtualClock` — it only moves
  when the scheduler pops an event, so wall-clock jitter cannot leak
  into ordering;
* ties (events scheduled for the same virtual instant) are broken by a
  random draw taken *at scheduling time* from a seeded stream, so the
  interleaving of simultaneous events is owned by the seed, not by
  insertion order accidents — yet is byte-for-byte reproducible;
* the final tiebreaker is a monotone sequence number, so even equal
  random draws order deterministically.

The same seed therefore replays the same event order exactly, which is
what makes a failing schedule a one-line repro
(``python -m repro.sim --seed N``).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable

from repro.loadgen.clock import VirtualClock


class Event:
    """One scheduled callback; ``cancel()`` makes the pop a no-op."""

    __slots__ = ("when", "label", "callback", "cancelled")

    def __init__(self, when: float, label: str, callback: Callable[[], Any]):
        self.when = when
        self.label = label
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        return (
            f"Event(when={self.when:.6f}, label={self.label!r}, "
            f"cancelled={self.cancelled})"
        )


class EventScheduler:
    """A deterministic, seeded discrete-event scheduler.

    Parameters:
        seed: interleaving seed.  The tie-break stream is derived from
            it (``"{seed}:schedule"``), so the network's and workload's
            own streams (derived with different suffixes) stay
            independent — a schedule replayed with a hand-edited fault
            list still draws identical tie-breaks.
        clock: the shared :class:`VirtualClock` (one per simulation;
            hosts read it, only the scheduler advances it).
    """

    def __init__(self, seed: int, clock: VirtualClock | None = None):
        self.seed = seed
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = random.Random(f"{seed}:schedule")
        self._heap: list[tuple[float, float, int, Event]] = []
        self._count = 0
        self.processed = 0

    # -- scheduling --------------------------------------------------------

    def call_at(
        self, when: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule *callback* at virtual time *when* (clamped to now)."""
        when = max(when, self.clock.now())
        event = Event(when, label, callback)
        self._count += 1
        heapq.heappush(
            self._heap, (when, self.rng.random(), self._count, event)
        )
        return event

    def call_after(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule *callback* ``delay`` virtual seconds from now."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        return self.call_at(self.clock.now() + delay, callback, label)

    def __len__(self) -> int:
        return len(self._heap)

    # -- running -----------------------------------------------------------

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Pop and run events in order; returns the number processed.

        Stops when the heap is empty, when the next event lies past
        *until* (that event stays queued), or after *max_events* (a
        runaway-loop backstop — a simulation that trips it is a bug).
        """
        ran = 0
        while self._heap:
            when, _tie, _count, event = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.sleep_until(when)
            event.callback()
            ran += 1
            self.processed += 1
            if max_events is not None and ran >= max_events:
                break
        if until is not None:
            # Even an idle stretch moves time to the horizon asked for.
            self.clock.sleep_until(until)
        return ran

    def __repr__(self) -> str:
        return (
            f"EventScheduler(seed={self.seed}, now={self.clock.now():.3f}, "
            f"pending={len(self._heap)}, processed={self.processed})"
        )
