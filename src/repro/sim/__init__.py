"""Deterministic cluster simulation (:mod:`repro.sim`).

The whole replicated fleet — primary, replicas, supervisor, router —
runs as cooperatively scheduled hosts in one process on virtual time,
with every source of nondeterminism (network delay, loss, partitions,
fault timing, workload arrivals, tie-breaks) owned by a single seed.
An oracle judges each run against the cluster's core promises:
acked-write durability, fencing safety, staleness honesty, and
quiesced convergence with single-process recovery.

The same seed replays byte-for-byte (asserted via SHA-256 trace
digests), so a failing sweep seed is a one-line repro::

    python -m repro.sim --seed 1337

See ``docs/sim.md`` for the architecture and the invariant catalogue.
"""

from repro.sim.cluster import SimConfig, SimReport, Simulation, run_seed
from repro.sim.faults import FaultEvent, FaultSchedule
from repro.sim.minimize import MinimizeResult, minimize
from repro.sim.net import SimNetwork
from repro.sim.oracle import (
    CONVERGENCE,
    DURABILITY,
    FENCING,
    STALENESS,
    Oracle,
    Violation,
)
from repro.sim.scheduler import Event, EventScheduler
from repro.sim.trace import TraceRecorder

__all__ = [
    "CONVERGENCE",
    "DURABILITY",
    "FENCING",
    "STALENESS",
    "Event",
    "EventScheduler",
    "FaultEvent",
    "FaultSchedule",
    "MinimizeResult",
    "Oracle",
    "SimConfig",
    "SimNetwork",
    "SimReport",
    "Simulation",
    "TraceRecorder",
    "Violation",
    "minimize",
    "run_seed",
]
