"""Greedy fault-schedule minimization for failing seeds.

A failing seed usually carries more faults than the bug needs.  The
minimizer replays the seed with single events deleted from its
:class:`~repro.sim.faults.FaultSchedule` — the seed (and hence the
network/workload/tie-break streams) stays fixed, only the fault list
shrinks — and keeps any deletion that still fails.  One pass of
single-event deletions repeats until a fixpoint: the result is
1-minimal (removing any single remaining event makes the run pass),
which in practice reduces a 5-fault schedule to the 1–2 faults that
matter.

The minimized schedule serializes to JSON
(:meth:`~repro.sim.faults.FaultSchedule.to_json`) so it can be pasted
into a bug report and replayed exactly with
``python -m repro.sim --seed N --schedule '<json>'``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cluster import SimConfig, SimReport, run_seed
from repro.sim.faults import FaultSchedule


@dataclass
class MinimizeResult:
    """The outcome of one minimization: schedule + the run it fails."""

    seed: int
    schedule: FaultSchedule
    report: SimReport
    runs: int
    removed: int

    @property
    def schedule_json(self) -> str:
        return self.schedule.to_json()


def minimize(
    seed: int,
    *,
    config: SimConfig | None = None,
    schedule: FaultSchedule | None = None,
    max_runs: int = 64,
) -> MinimizeResult:
    """Shrink *seed*'s failing fault schedule to a 1-minimal one.

    Raises :class:`ValueError` when the starting run does not fail —
    there is nothing to minimize.  ``max_runs`` bounds the total number
    of replays (greedy passes stop early when the budget runs out; the
    schedule returned is still a *failing* one, just possibly not yet
    1-minimal).
    """
    if schedule is None:
        cfg = config if config is not None else SimConfig()
        schedule = FaultSchedule.generate(
            seed, replicas=cfg.replicas, horizon_s=cfg.horizon_s
        )
    report = run_seed(seed, config=config, schedule=schedule)
    runs = 1
    if report.ok:
        raise ValueError(f"seed {seed} does not fail; nothing to minimize")
    removed = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        index = 0
        while index < len(schedule) and runs < max_runs:
            candidate = schedule.without(index)
            attempt = run_seed(seed, config=config, schedule=candidate)
            runs += 1
            if not attempt.ok:
                schedule = candidate
                report = attempt
                removed += 1
                improved = True
                # Do not advance: index now names the next event.
            else:
                index += 1
    return MinimizeResult(
        seed=seed,
        schedule=schedule,
        report=report,
        runs=runs,
        removed=removed,
    )


__all__ = ["MinimizeResult", "minimize"]
