"""``python -m repro.sim`` — run, sweep, replay, and minimize.

Usage::

    python -m repro.sim --seed 1337              # one seeded run
    python -m repro.sim --seed 1337 --verify     # run twice, compare digests
    python -m repro.sim --sweep 200              # seeds 0..199
    python -m repro.sim --sweep 200 --start 400  # seeds 400..599
    python -m repro.sim --seed 7 --minimize      # shrink a failing schedule
    python -m repro.sim --seed 7 --schedule '<json>'   # replay exact faults

Exit status: 0 when every run passed its oracle (and, under
``--verify``, replayed to an identical digest); 1 otherwise.  A
failing seed prints a one-line repro command.
"""

from __future__ import annotations

import argparse
import sys

from repro.sim.cluster import SimConfig, SimReport, run_seed
from repro.sim.faults import FaultSchedule
from repro.sim.minimize import minimize


def _build_config(args: argparse.Namespace) -> SimConfig:
    return SimConfig(
        replicas=args.replicas,
        horizon_s=args.horizon,
        skip_fence=args.skip_fence,
    )


def _print_failure(report: SimReport) -> None:
    print(report.summary_line())
    for violation in report.violations:
        print(f"  {violation}")
    if report.trace_tail:
        print("  trace tail:")
        print(report.trace_tail)
    print(f"  schedule: {report.schedule_json}")


def _run_one(
    seed: int,
    config: SimConfig,
    schedule: FaultSchedule | None,
    *,
    verify: bool,
    quiet: bool = False,
) -> bool:
    report = run_seed(seed, config=config, schedule=schedule)
    ok = report.ok
    if verify and ok:
        replay = run_seed(seed, config=config, schedule=schedule)
        if replay.digest != report.digest:
            ok = False
            print(
                f"seed {seed} NONDETERMINISTIC: digest {report.digest[:16]} "
                f"!= replay {replay.digest[:16]} "
                f"repro: python -m repro.sim --seed {seed} --verify"
            )
    if not report.ok:
        _print_failure(report)
    elif ok and not quiet:
        print(report.summary_line())
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Deterministic cluster simulation with a fault "
        "oracle: seeded runs, sweeps, replay verification, and "
        "schedule minimization.",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="run this single seed"
    )
    parser.add_argument(
        "--sweep",
        type=int,
        default=None,
        metavar="N",
        help="run N consecutive seeds (default start 0)",
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed of a sweep"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run each seed twice and require identical trace digests",
    )
    parser.add_argument(
        "--minimize",
        action="store_true",
        help="greedily shrink a failing seed's fault schedule",
    )
    parser.add_argument(
        "--schedule",
        type=str,
        default=None,
        metavar="JSON",
        help="replay an explicit fault schedule (JSON) instead of the "
        "seed-generated one",
    )
    parser.add_argument(
        "--replicas", type=int, default=2, help="fleet size (default 2)"
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=8.0,
        help="virtual seconds of faulted load before quiesce",
    )
    parser.add_argument(
        "--skip-fence",
        action="store_true",
        help="reintroduce the skipped-fence bug (the oracle regression "
        "knob; expect fencing-safety violations)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only failures and the final summary",
    )
    args = parser.parse_args(argv)

    if args.seed is None and args.sweep is None:
        parser.error("one of --seed or --sweep is required")
    if args.minimize and args.seed is None:
        parser.error("--minimize needs --seed")

    config = _build_config(args)
    schedule = (
        FaultSchedule.from_json(args.schedule)
        if args.schedule is not None
        else None
    )

    if args.minimize:
        try:
            result = minimize(
                args.seed, config=config, schedule=schedule
            )
        except ValueError as exc:
            print(str(exc))
            return 1
        print(
            f"seed {args.seed}: {result.removed} event(s) removed in "
            f"{result.runs} run(s); {len(result.schedule)} remain"
        )
        _print_failure(result.report)
        return 1  # a successful minimize still ends on a failing run

    if args.seed is not None and args.sweep is None:
        return 0 if _run_one(
            args.seed, config, schedule, verify=args.verify
        ) else 1

    failures = 0
    seeds = range(args.start, args.start + args.sweep)
    for seed in seeds:
        if not _run_one(
            seed, config, schedule, verify=args.verify, quiet=args.quiet
        ):
            failures += 1
    print(
        f"sweep: {len(seeds)} seed(s) [{seeds.start}..{seeds.stop - 1}], "
        f"{failures} failure(s)"
        + (", digests verified" if args.verify else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
