"""The simulation trace: a canonical event log with a replay digest.

Every semantically meaningful step of a simulation — write outcomes,
frame acks, spawns, promotions, fault injections, oracle verdicts —
lands here as ``(virtual_time, kind, details)``.  The trace serves two
jobs:

* **the determinism gate** — :meth:`TraceRecorder.digest` is a SHA-256
  over the canonical JSON of the whole log.  Two runs of the same seed
  must produce byte-identical digests; any divergence means wall-clock
  state, process ids, or unseeded randomness leaked into the cluster's
  interleaving;
* **debugging a failing seed** — the tail of the trace around a
  violation is the minimized story of what happened, in virtual-time
  order.

Hygiene rules for recorded details (enforced by convention, checked by
the determinism sweep): no filesystem paths, no PIDs, no wall-clock
times, no exception *message text* (messages embed paths) — record
error **codes** and classes instead.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


class TraceRecorder:
    """An append-only, canonically-serializable event log."""

    def __init__(self) -> None:
        self.events: list[tuple[float, str, dict[str, Any]]] = []

    def record(self, vtime: float, kind: str, **details: Any) -> None:
        """Append one event at virtual time *vtime*.

        Details must be JSON-serializable and deterministic across
        runs of the same seed (codes, counts, watermarks, host names —
        never paths, pids or message text).
        """
        self.events.append((round(vtime, 9), kind, details))

    def __len__(self) -> int:
        return len(self.events)

    def canonical(self) -> str:
        """The whole trace as canonical JSON (sorted keys, no spaces)."""
        return json.dumps(
            self.events, sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 of the canonical trace — the replay fingerprint."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def tail(self, count: int = 20) -> list[tuple[float, str, dict]]:
        return self.events[-count:]

    def format_tail(self, count: int = 20) -> str:
        lines = []
        for vtime, kind, details in self.tail(count):
            packed = " ".join(
                f"{key}={details[key]!r}" for key in sorted(details)
            )
            lines.append(f"  t={vtime:9.4f} {kind} {packed}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TraceRecorder(events={len(self.events)})"
