"""The simulated network: seeded delay, loss, partition, per-link FIFO.

:class:`SimNetwork` is the transport behind every
:class:`~repro.cluster.protocol.SimChannel` pair in a simulation.  A
``send`` hands the framed bytes here; the network decides — from its
own seeded stream, independent of the scheduler's — whether the frame
is dropped (loss or partition) and when it arrives, then schedules the
delivery on the event loop.

Delivery discipline mirrors the real transport's semantics:

* **per-link FIFO** — the real channel is a byte stream over a
  socketpair, so frames on one link can never overtake each other.
  Each directed link tracks its last delivery time and a later frame
  is delivered no earlier than an epsilon after it.  *Across* links,
  independent random delays reorder freely — exactly the interleaving
  a multi-process fleet exhibits;
* **partitions drop silently** — a partitioned link loses frames
  without an error, as a blackholed route would; the sender discovers
  the problem by timeout, never by notification;
* **endpoint death is immediate** — sending to a closed peer raises
  :class:`~repro.cluster.protocol.ChannelClosed` at the channel layer,
  and frames already in flight to a closed endpoint are dropped on
  delivery (a dead process's socket buffer).
"""

from __future__ import annotations

import random

from repro.cluster.protocol import SimChannel

from repro.sim.scheduler import EventScheduler

#: Minimum spacing between two deliveries on one directed link — keeps
#: the per-link stream FIFO even when random delays would invert it.
_FIFO_EPSILON = 1e-9


class SimNetwork:
    """Seeded message transport for one simulation.

    Parameters:
        scheduler: the simulation's event loop.
        seed: the simulation seed; the network derives its own stream
            (``"{seed}:net"``) so hand-editing the fault schedule does
            not perturb delivery delays.
        min_delay_s / max_delay_s: uniform one-way latency range.
        loss: background frame-loss probability (partitions are
            modelled separately and drop with certainty).
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        seed: int,
        *,
        min_delay_s: float = 0.001,
        max_delay_s: float = 0.02,
        loss: float = 0.0,
    ):
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if min_delay_s < 0 or max_delay_s < min_delay_s:
            raise ValueError("need 0 <= min_delay_s <= max_delay_s")
        self.scheduler = scheduler
        self.rng = random.Random(f"{seed}:net")
        self.min_delay_s = min_delay_s
        self.max_delay_s = max_delay_s
        self.loss = loss
        self._isolated: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self._last_delivery: dict[tuple[int, int], float] = {}
        self.sent = 0
        self.dropped = 0
        self.delivered = 0

    # -- topology ----------------------------------------------------------

    def channel_pair(
        self, a_name: str, b_name: str
    ) -> tuple[SimChannel, SimChannel]:
        """Two connected endpoints routed through this network."""
        return SimChannel.pair(self, a_name, b_name)

    def isolate(self, name: str) -> None:
        """Partition every link touching endpoint *name*."""
        self._isolated.add(name)

    def heal(self, name: str) -> None:
        self._isolated.discard(name)

    def partition(self, a_name: str, b_name: str) -> None:
        """Partition the specific link between two endpoint names."""
        self._partitions.add(frozenset((a_name, b_name)))

    def heal_link(self, a_name: str, b_name: str) -> None:
        self._partitions.discard(frozenset((a_name, b_name)))

    def heal_all(self) -> None:
        """Drop every partition (the quiesce step heals the world)."""
        self._isolated.clear()
        self._partitions.clear()

    def is_cut(self, a_name: str, b_name: str) -> bool:
        return (
            a_name in self._isolated
            or b_name in self._isolated
            or frozenset((a_name, b_name)) in self._partitions
        )

    # -- the transport contract (SimChannel calls this) --------------------

    def transmit(self, source: SimChannel, blob: bytes) -> None:
        """Route one framed blob from *source* toward its peer."""
        peer = source.peer
        if peer is None:
            return
        self.sent += 1
        # The loss draw happens even on cut links so the seeded stream
        # consumes the same number of draws whether or not a partition
        # is active at this instant — replays with an edited fault
        # schedule keep their delay sequence aligned.
        lost = self.loss > 0.0 and self.rng.random() < self.loss
        delay = self.rng.uniform(self.min_delay_s, self.max_delay_s)
        if lost or self.is_cut(source.name, peer.name):
            self.dropped += 1
            return
        key = (id(source), id(peer))
        at = max(
            self.scheduler.clock.now() + delay,
            self._last_delivery.get(key, 0.0) + _FIFO_EPSILON,
        )
        self._last_delivery[key] = at

        def _deliver(target: SimChannel = peer, frame: bytes = blob) -> None:
            self.delivered += 1
            target.deliver(frame)

        self.scheduler.call_at(
            at, _deliver, label=f"net:{source.name}->{peer.name}"
        )

    def __repr__(self) -> str:
        return (
            f"SimNetwork(sent={self.sent}, delivered={self.delivered}, "
            f"dropped={self.dropped}, partitions={len(self._partitions)}, "
            f"isolated={sorted(self._isolated)})"
        )
