"""Seeded fault schedules: what goes wrong, and exactly when.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`\\ s —
``(virtual_time, kind, args)`` — derived purely from the simulation
seed, composing the durability layer's crash points
(:mod:`repro.durability.faults`) with cluster-level failures:

========================  ==================================================
kind                      effect at its virtual-time offset
========================  ==================================================
``kill-primary``          primary process death (journal handle closed
                          mid-flight, exactly like the chaos harness's
                          ``ClusterSupervisor.kill_primary``)
``presume-primary-dead``  the supervisor *believes* the primary died but
                          the process lives on — the zombie-primary
                          scenario fencing exists for: stale clients keep
                          writing to the old primary while failover
                          promotes a new one
``kill-replica``          one replica process dies (restart path)
``partition-replica``     one replica's links are blackholed for a
                          duration (timeout → restart → catch-up; long
                          enough partitions push it out of the ship
                          window into a full resync)
``crash-point``           arm a :class:`~repro.durability.faults.FaultInjector`
                          crash point on the primary (torn append,
                          durable-but-unacked append, mid-checkpoint
                          death)
``eio``                   a persistent disk-error window on the primary's
                          journal (survivable typed refusals)
``slow-fsync``            every primary fsync stalls for a virtual
                          duration (saturated device)
``checkpoint``            force a compaction (journal rotation under the
                          follower — the resync path)
========================  ==================================================

Schedules serialize to/from JSON so the greedy minimizer
(:mod:`repro.sim.minimize`) can re-run edited subsets and a minimal
failing schedule can be pasted into a bug report.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.durability.faults import (
    CRASH_AFTER_JOURNAL,
    CRASH_BEFORE_FSYNC,
    CRASH_MID_CHECKPOINT,
)

KILL_PRIMARY = "kill-primary"
PRESUME_PRIMARY_DEAD = "presume-primary-dead"
KILL_REPLICA = "kill-replica"
PARTITION_REPLICA = "partition-replica"
CRASH_POINT = "crash-point"
EIO_WINDOW = "eio"
SLOW_FSYNC_WINDOW = "slow-fsync"
FORCE_CHECKPOINT = "checkpoint"

ALL_KINDS = (
    KILL_PRIMARY,
    PRESUME_PRIMARY_DEAD,
    KILL_REPLICA,
    PARTITION_REPLICA,
    CRASH_POINT,
    EIO_WINDOW,
    SLOW_FSYNC_WINDOW,
    FORCE_CHECKPOINT,
)

#: Relative draw weights for schedule generation.  Partition and
#: process-death faults dominate because they drive the failover and
#: catch-up machinery the oracle exists to check.
_WEIGHTS = {
    KILL_PRIMARY: 15,
    PRESUME_PRIMARY_DEAD: 8,
    KILL_REPLICA: 20,
    PARTITION_REPLICA: 25,
    CRASH_POINT: 15,
    EIO_WINDOW: 6,
    SLOW_FSYNC_WINDOW: 5,
    FORCE_CHECKPOINT: 6,
}

_CRASH_POINTS = (
    CRASH_BEFORE_FSYNC,
    CRASH_AFTER_JOURNAL,
    CRASH_MID_CHECKPOINT,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure: *kind* fires at virtual time *at*."""

    at: float
    kind: str
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"at": self.at, "kind": self.kind, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        kind = payload["kind"]
        if kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return cls(
            at=float(payload["at"]),
            kind=kind,
            args=dict(payload.get("args", {})),
        )


class FaultSchedule:
    """An ordered, serializable list of fault events."""

    def __init__(self, events: list[FaultEvent]):
        self.events = sorted(events, key=lambda e: (e.at, e.kind))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the *index*-th event removed (minimizer step)."""
        kept = [e for i, e in enumerate(self.events) if i != index]
        return FaultSchedule(kept)

    def to_json(self) -> str:
        return json.dumps(
            [event.to_dict() for event in self.events],
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        payload = json.loads(text)
        if not isinstance(payload, list):
            raise ValueError("fault schedule JSON must be a list")
        return cls([FaultEvent.from_dict(item) for item in payload])

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        replicas: int,
        horizon_s: float,
    ) -> "FaultSchedule":
        """The seed's fault schedule — pure function of its arguments.

        Draws come from a dedicated stream (``"{seed}:faults"``) so the
        schedule is stable under changes to network or workload
        parameters, and an explicitly supplied schedule replays with
        the exact same network delays the generated one saw.
        """
        rng = random.Random(f"{seed}:faults")
        count = rng.randint(2, 5)
        kinds = list(_WEIGHTS)
        weights = [_WEIGHTS[k] for k in kinds]
        events: list[FaultEvent] = []
        for _ in range(count):
            at = rng.uniform(0.5, horizon_s * 0.8)
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            args: dict = {}
            if kind in (KILL_REPLICA, PARTITION_REPLICA):
                args["replica"] = rng.randrange(replicas)
            if kind == PARTITION_REPLICA:
                args["duration_s"] = round(rng.uniform(0.2, 3.0), 3)
            if kind == CRASH_POINT:
                args["point"] = rng.choice(_CRASH_POINTS)
                args["after"] = 1
            if kind == EIO_WINDOW:
                args["duration_s"] = round(rng.uniform(0.1, 1.0), 3)
            if kind == SLOW_FSYNC_WINDOW:
                args["delay_s"] = round(rng.uniform(0.01, 0.2), 3)
                args["duration_s"] = round(rng.uniform(0.2, 2.0), 3)
            events.append(FaultEvent(at=round(at, 3), kind=kind, args=args))
        return cls(events)

    def __repr__(self) -> str:
        kinds = [f"{e.kind}@{e.at:g}" for e in self.events]
        return f"FaultSchedule({', '.join(kinds)})"
