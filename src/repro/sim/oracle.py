"""The simulation oracle: machine-checked cluster invariants.

The point of the simulator is not that faulted runs *finish* — it is
that every run is judged against invariants strong enough to catch the
bug classes replication history is made of.  The oracle collects
witnesses online (appends, acks, reads, promotions) and renders four
verdicts at the end of a quiesced run:

1. **Acked-write durability** — every write the cluster acknowledged
   is present in what a fresh single-process recovery of the shared
   directory rebuilds: the recovered watermark covers every acked
   sequence number, and the recovered insert count covers every acked
   insert (content, not just bookkeeping).

2. **Fencing safety** — the epoch witness is monotone: once any node
   successfully appends under epoch *e* (or a promotion publishes
   *e*), no *other* node may ever append under an epoch ``<= e``.  At
   no virtual instant do two writers share the journal.

3. **Staleness honesty** — a read admitted under a ``max_lag_seq``
   bound was served by a store no further behind the write watermark
   than the bound promised, measured at execution time against the
   replica's *actual* applied watermark (not the router's belief).

4. **Convergence** — after the fault schedule ends and the fleet
   quiesces, every live replica's
   :func:`~repro.cluster.replica.store_fingerprint` equals the
   fingerprint of a fresh single-process recovery: replication agreed
   byte-for-byte with the recovery semantics it claims to mirror.

Violations carry a stable ``[invariant-name]`` tag (asserted by the
regression tests) and enough witness detail to read the failing trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DURABILITY = "acked-write-durability"
FENCING = "fencing-safety"
STALENESS = "staleness-honesty"
CONVERGENCE = "convergence"


@dataclass
class AppendWitness:
    """One successful journal append observed by the oracle."""

    vtime: float
    node: str
    epoch: int
    seq: int


@dataclass
class Violation:
    """One invariant breach, tagged with its invariant name."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


@dataclass
class Oracle:
    """Witness collector + invariant judge for one simulation run."""

    appends: list[AppendWitness] = field(default_factory=list)
    #: (seq, epoch, vtime, inserts) per acknowledged write.
    acked: list[tuple[int, int, float, int]] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    reads_checked: int = 0
    _max_epoch: int = 0
    _epoch_owner: dict[int, str] = field(default_factory=dict)
    _max_seq: int = 0

    # -- online witnesses --------------------------------------------------

    def record_promotion(self, epoch: int, vtime: float, node: str) -> None:
        """A promotion published *epoch*: it is the fencing floor now.

        Claiming the epoch also claims authorship — any *other* node
        appending under it afterwards is a second writer.
        """
        if epoch > self._max_epoch:
            self._max_epoch = epoch
        self._epoch_owner.setdefault(epoch, node)

    def record_append(
        self, node: str, epoch: int, seq: int, vtime: float
    ) -> None:
        """One node successfully appended; check the fencing witness."""
        self.appends.append(AppendWitness(vtime, node, epoch, seq))
        owner = self._epoch_owner.setdefault(epoch, node)
        if owner != node:
            self.violations.append(
                Violation(
                    FENCING,
                    f"epoch {epoch} has two writers: {owner} and {node} "
                    f"(seq {seq} at t={vtime:.4f})",
                )
            )
        if epoch < self._max_epoch:
            self.violations.append(
                Violation(
                    FENCING,
                    f"{node} appended seq {seq} under deposed epoch "
                    f"{epoch} after epoch {self._max_epoch} was published "
                    f"(t={vtime:.4f})",
                )
            )
        if seq <= self._max_seq and epoch >= self._max_epoch:
            self.violations.append(
                Violation(
                    FENCING,
                    f"{node} re-used sequence number {seq} (journal "
                    f"watermark already {self._max_seq}, t={vtime:.4f})",
                )
            )
        if epoch > self._max_epoch:
            self._max_epoch = epoch
        if seq > self._max_seq:
            self._max_seq = seq

    def record_ack(
        self, seq: int, epoch: int, vtime: float, inserts: int
    ) -> None:
        """The cluster acknowledged a write ending at *seq*."""
        self.acked.append((seq, epoch, vtime, inserts))

    def record_read(
        self,
        *,
        backend: str,
        bound: int | None,
        watermark: int | None,
        applied_seq: int,
        vtime: float,
    ) -> None:
        """A bounded read was served; check the staleness promise."""
        self.reads_checked += 1
        if bound is None or watermark is None:
            return
        staleness = watermark - applied_seq
        if staleness > bound:
            self.violations.append(
                Violation(
                    STALENESS,
                    f"read served by {backend} at t={vtime:.4f} was "
                    f"{staleness} records stale (applied {applied_seq}, "
                    f"watermark {watermark}) against a bound of {bound}",
                )
            )

    # -- final verdicts ----------------------------------------------------

    def check_durability(
        self,
        recovered_watermark: int | None,
        recovered_inserts: int | None,
        attempted_inserts: int,
    ) -> None:
        """Judge acked-write durability against a fresh recovery."""
        if not self.acked:
            return
        max_acked = max(seq for seq, _, _, _ in self.acked)
        if recovered_watermark is None:
            self.violations.append(
                Violation(
                    DURABILITY,
                    f"recovery failed outright but {len(self.acked)} "
                    "write(s) were acknowledged",
                )
            )
            return
        if recovered_watermark < max_acked:
            self.violations.append(
                Violation(
                    DURABILITY,
                    f"recovered watermark {recovered_watermark} is below "
                    f"acknowledged seq {max_acked}",
                )
            )
        acked_inserts = sum(n for _, _, _, n in self.acked)
        if recovered_inserts is not None:
            if recovered_inserts < acked_inserts:
                self.violations.append(
                    Violation(
                        DURABILITY,
                        f"recovery holds {recovered_inserts} insert(s) "
                        f"but {acked_inserts} were acknowledged",
                    )
                )
            if recovered_inserts > attempted_inserts:
                self.violations.append(
                    Violation(
                        DURABILITY,
                        f"recovery holds {recovered_inserts} insert(s) "
                        f"but only {attempted_inserts} were ever "
                        "attempted (phantom replay)",
                    )
                )

    def check_convergence(
        self,
        recovered_fingerprint: str | None,
        live_fingerprints: dict[str, str | None],
    ) -> None:
        """Judge quiesced byte-agreement with single-process recovery."""
        if recovered_fingerprint is None:
            if live_fingerprints:
                self.violations.append(
                    Violation(
                        CONVERGENCE,
                        "recovery produced no store to compare "
                        f"{len(live_fingerprints)} live node(s) against",
                    )
                )
            return
        for node, fingerprint in sorted(live_fingerprints.items()):
            if fingerprint != recovered_fingerprint:
                self.violations.append(
                    Violation(
                        CONVERGENCE,
                        f"{node} diverged from single-process recovery "
                        f"(node {str(fingerprint)[:12]}..., recovery "
                        f"{recovered_fingerprint[:12]}...)",
                    )
                )

    def record_violation(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        return (
            f"Oracle(appends={len(self.appends)}, acked={len(self.acked)}, "
            f"reads_checked={self.reads_checked}, "
            f"violations={len(self.violations)})"
        )
