"""The simulated cluster: every node of the fleet in one process.

:class:`Simulation` wires the real storage and replication machinery —
a primary :class:`~repro.durability.DurableEngine`, N
:class:`~repro.cluster.replica.ReplicaApplier`\\ s fed through
:func:`~repro.cluster.worker.handle_message` (the worker process's own
dispatch), the supervisor's ship/probe/failover logic over a real
:class:`~repro.cluster.shipper.ShipBuffer`, and a real
:class:`~repro.cluster.router.QueryRouter` — into cooperatively
scheduled hosts on one seeded event loop
(:class:`~repro.sim.scheduler.EventScheduler`).  Only the *transports*
are simulated: frames travel through
:class:`~repro.cluster.protocol.SimChannel` pairs over a seeded
:class:`~repro.sim.net.SimNetwork`, and every sleep or timeout is an
event on virtual time.

What is deliberately real (shared with production code, not mirrored):

* the durable directory on disk — journal frames, checkpoints,
  manifest, EPOCH file; crashes leave genuine torn tails;
* recovery, replay, fencing (:func:`~repro.cluster.fence.make_fence`
  reads the same EPOCH file), promotion (a full
  :class:`DurableEngine` reopen), the ship window, the router policy,
  and the restart backoff schedule
  (:meth:`~repro.resilience.retry.RetryPolicy.backoff_ms`).

The supervisor logic is re-expressed event-style (the real one blocks
threads on socket RPCs; a deterministic simulation cannot block), but
decision-for-decision it follows
:class:`~repro.cluster.supervisor.ClusterSupervisor`: per-handle RPC
serialization, out-of-window restart with full catch-up, resync on
compaction, freshest-candidate fenced failover, backoff-paced
respawns.

``skip_fence=True`` re-introduces a known-class bug — the primary
appends without the :func:`check_fence` call — so the regression tests
can prove the oracle catches what fencing exists to prevent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial
from typing import Any

from repro.errors import (
    JournalCorruptionError,
    XQueryError,
)
from repro.durability.durable import DurableEngine
from repro.durability.faults import (
    ALL_CRASH_POINTS,
    EIO_ON_WRITE,
    SLOW_FSYNC,
    FaultInjector,
    InjectedCrash,
)
from repro.durability.journal import FollowerResyncRequired
from repro.durability.recover import recover
from repro.durability import manifest as manifest_mod
from repro.resilience.retry import RetryPolicy

from repro.cluster.fence import make_fence, read_epoch
from repro.cluster.protocol import (
    MSG_ACK,
    MSG_ERROR,
    MSG_FRAMES,
    MSG_HEALTH,
    MSG_HEALTH_REPORT,
    MSG_HELLO,
    MSG_PROMOTE,
    MSG_PROMOTED,
    ChannelClosed,
    SimChannel,
)
from repro.cluster.replica import store_fingerprint
from repro.cluster.router import QueryRouter, RoutedResult
from repro.cluster.shipper import ShipBuffer
from repro.cluster.worker import build_applier, handle_message, hello_payload

from repro.sim.faults import (
    CRASH_POINT,
    EIO_WINDOW,
    FORCE_CHECKPOINT,
    KILL_PRIMARY,
    KILL_REPLICA,
    PARTITION_REPLICA,
    PRESUME_PRIMARY_DEAD,
    SLOW_FSYNC_WINDOW,
    FaultSchedule,
)
from repro.sim.net import SimNetwork
from repro.sim.oracle import CONVERGENCE, Oracle
from repro.sim.scheduler import EventScheduler
from repro.sim.trace import TraceRecorder

from repro.durability.faults import CRASH_MID_CHECKPOINT


@dataclass(frozen=True)
class SimConfig:
    """Knobs for one simulated run (all virtual-time seconds).

    The defaults aim a few hundred writes, a few dozen reads and 2–5
    faults at a 3-replica-scale fleet inside a fraction of a wall
    second — small enough for a 200-seed CI sweep, busy enough that
    failovers, resyncs and restarts actually happen.
    """

    replicas: int = 2
    horizon_s: float = 8.0
    drain_s: float = 120.0
    write_interval_s: float = 0.06
    read_interval_s: float = 0.09
    txn_fraction: float = 0.12
    stale_client_fraction: float = 0.5
    ship_interval_s: float = 0.05
    probe_interval_s: float = 0.2
    rpc_timeout_s: float = 0.6
    promote_timeout_s: float = 2.0
    spawn_delay_s: float = 0.05
    hello_timeout_s: float = 1.0
    window_records: int = 48
    max_frames_per_ship: int = 64
    max_restarts: int = 50
    restart_backoff_base_ms: float = 40.0
    restart_backoff_max_ms: float = 800.0
    net_min_delay_s: float = 0.001
    net_max_delay_s: float = 0.02
    net_loss: float = 0.01
    #: Regression knob: drop the fencing hook from the primary's
    #: journal (the skipped-``check_fence`` bug class).  The oracle
    #: must catch the resulting split-brain.
    skip_fence: bool = False


_WRITE_QUERY = 'snap {{ insert {{ <e n="{n}"/> }} into {{ $doc/log }} }}'
_READ_QUERY = "count($doc/log/e)"
_READ_BOUNDS = (None, 0, 1, 2, 4, 8, 16)


# ---------------------------------------------------------------------------
# Hosts
# ---------------------------------------------------------------------------


class PrimaryHost:
    """The primary engine as a simulated process."""

    name = "primary"

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        # Delay points advance virtual time instead of sleeping: a slow
        # fsync stalls the (single-threaded) primary for virtual seconds.
        self.faults = FaultInjector(sleep=sim.clock.advance)
        self.durable = DurableEngine(
            sim.directory,
            faults=self.faults,
            compact_max_bytes=None,
            compact_max_records=None,
        )
        self.durable.load_document("doc", "<log/>")
        epoch = read_epoch(sim.directory)
        self.durable.journal.epoch = epoch
        if not sim.config.skip_fence:
            self.durable.journal.fence = make_fence(sim.directory, epoch)
        self.alive = True

    def crash(self, reason: str) -> None:
        """Process death: the journal handle just stops, unfsynced."""
        if not self.alive:
            return
        self.alive = False
        try:
            self.durable.journal._handle.close()
        except (OSError, ValueError):
            pass
        self.sim.trace.record(
            self.sim.clock.now(), "primary-crash", reason=reason
        )

    def kill(self) -> None:
        """Chaos kill: close the journal under the store's write lock
        (the exact discipline of
        :meth:`~repro.cluster.supervisor.ClusterSupervisor.kill_primary`)."""
        if not self.alive:
            return
        self.alive = False
        try:
            with self.durable.engine.store.lock.write_locked():
                self.durable.journal.close()
        except OSError:
            pass
        self.sim.trace.record(
            self.sim.clock.now(), "primary-crash", reason="killed"
        )


class ReplicaHost:
    """One replica 'process': an applier behind a simulated channel."""

    def __init__(
        self, sim: "Simulation", replica_id: int, endpoint: SimChannel
    ):
        self.sim = sim
        self.id = replica_id
        self.name = f"replica-{replica_id}"
        self.endpoint = endpoint
        endpoint.on_message = self.on_message
        self.applier: Any | None = None
        self.alive = False

    def start(self) -> None:
        """Spawn complete: recover read-only from disk, say hello."""
        if self.endpoint.closed:
            return  # killed before the interpreter finished starting
        try:
            self.applier = build_applier({}, self.sim.directory)
        except XQueryError as exc:
            self.sim.trace.record(
                self.sim.clock.now(),
                "replica-spawn-failed",
                replica=self.name,
                code=exc.code,
            )
            self.endpoint.close()
            return
        self.alive = True
        self.sim.trace.record(
            self.sim.clock.now(),
            "replica-up",
            replica=self.name,
            applied_seq=self.applier.applied_seq,
            epoch=self.applier.epoch,
        )
        try:
            self.endpoint.send(hello_payload(self.applier, self.id))
        except ChannelClosed:
            pass

    def on_message(self, message: dict) -> None:
        """One frame arrived: dispatch through the worker's own logic."""
        if not self.alive or self.applier is None:
            return
        try:
            reply, _done = handle_message(self.applier, message)
        except InjectedCrash:
            self.kill("injected-crash")
            return
        if reply.get("t") == MSG_PROMOTED:
            # The epoch is published on disk *now* — the fencing floor
            # rises at this instant, not when the (losable) reply
            # reaches the supervisor.
            epoch = int(message.get("epoch", 0))
            self.sim.oracle.record_promotion(
                epoch, self.sim.clock.now(), self.name
            )
            self.sim.trace.record(
                self.sim.clock.now(),
                "replica-promoted",
                replica=self.name,
                epoch=epoch,
                applied_seq=reply.get("applied_seq"),
            )
        try:
            self.endpoint.send(reply)
        except ChannelClosed:
            pass

    def kill(self, reason: str) -> None:
        """Process death; a promoted applier's journal stops unfsynced."""
        if not self.alive and self.endpoint.closed:
            return
        self.alive = False
        applier = self.applier
        if applier is not None and applier.durable is not None:
            try:
                applier.durable.journal._handle.close()
            except (OSError, ValueError):
                pass
        self.endpoint.close()
        self.sim.trace.record(
            self.sim.clock.now(),
            "replica-down",
            replica=self.name,
            reason=reason,
        )


class SimReplicaHandle:
    """The simulated supervisor's view of one replica."""

    def __init__(self, replica_id: int):
        self.id = replica_id
        self.name = f"replica-{replica_id}"
        self.host: ReplicaHost | None = None
        self.endpoint: SimChannel | None = None
        self.alive = False
        self.promoted = False
        self.acked_seq = 0
        self.epoch = 0
        self.restarts = 0
        self.next_restart_at = 0.0
        self.incarnation = 0
        self.in_flight: str | None = None
        self.timeout_event: Any | None = None


class SimSupervisor:
    """Event-driven mirror of the supervisor's pump/probe/failover."""

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        cfg = sim.config
        self.directory = sim.directory
        self.epoch = read_epoch(sim.directory)
        self.primary_alive = True
        self.promoted_handle: SimReplicaHandle | None = None
        self._pending_epoch: int | None = None
        self.buffer = ShipBuffer(
            sim.directory,
            after_seq=sim.primary.durable.journal.next_seq - 1,
            capacity=cfg.window_records,
        )
        self.rng = random.Random(f"{sim.seed}:backoff")
        self.restart_policy = RetryPolicy(
            base_delay_ms=cfg.restart_backoff_base_ms,
            max_delay_ms=cfg.restart_backoff_max_ms,
            budget_ms=None,
        )
        self.handles = [SimReplicaHandle(i) for i in range(cfg.replicas)]
        self.failovers = 0
        self.restarts_total = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for handle in self.handles:
            self._spawn(handle)
        cfg = self.sim.config
        self.sim.scheduler.call_after(
            cfg.ship_interval_s, self.ship_round, label="ship"
        )
        self.sim.scheduler.call_after(
            cfg.probe_interval_s, self.probe_round, label="probe"
        )

    def _spawn(self, handle: SimReplicaHandle) -> None:
        sim = self.sim
        sup_end, rep_end = sim.net.channel_pair("supervisor", handle.name)
        sup_end.on_message = partial(self._on_message, handle)
        host = ReplicaHost(sim, handle.id, rep_end)
        handle.endpoint = sup_end
        handle.host = host
        handle.alive = False
        handle.promoted = False
        handle.in_flight = None
        handle.incarnation += 1
        incarnation = handle.incarnation
        sim.scheduler.call_after(
            sim.config.spawn_delay_s, host.start, label=f"spawn:{handle.name}"
        )
        sim.scheduler.call_after(
            sim.config.spawn_delay_s + sim.config.hello_timeout_s,
            partial(self._hello_deadline, handle, incarnation),
            label=f"hello-deadline:{handle.name}",
        )
        sim.trace.record(
            sim.clock.now(), "replica-spawn", replica=handle.name
        )

    def _hello_deadline(
        self, handle: SimReplicaHandle, incarnation: int
    ) -> None:
        if handle.incarnation != incarnation or handle.alive:
            return
        self._mark_dead(handle, "hello-timeout")

    def _mark_dead(self, handle: SimReplicaHandle, reason: str) -> None:
        if handle.timeout_event is not None:
            handle.timeout_event.cancel()
            handle.timeout_event = None
        handle.in_flight = None
        was_promoted = handle.promoted
        handle.alive = False
        handle.promoted = False
        if handle.endpoint is not None:
            handle.endpoint.close()
        if handle.host is not None:
            handle.host.kill(reason)
        if was_promoted and self.promoted_handle is handle:
            self.promoted_handle = None
        self.sim.trace.record(
            self.sim.clock.now(),
            "handle-dead",
            replica=handle.name,
            reason=reason,
        )

    def _restart(self, handle: SimReplicaHandle, why: str) -> None:
        """Backoff-paced respawn with a full from-disk catch-up."""
        if handle.promoted:
            return  # the write owner is never cycled by the pump
        if handle.restarts >= self.sim.config.max_restarts:
            return
        now = self.sim.clock.now()
        if now < handle.next_restart_at:
            return  # inside the jittered backoff window
        handle.restarts += 1
        self.restarts_total += 1
        handle.next_restart_at = now + (
            self.restart_policy.backoff_ms(handle.restarts, self.rng)
            / 1000.0
        )
        self._mark_dead(handle, f"restart:{why}")
        self._spawn(handle)

    # -- RPC plumbing ------------------------------------------------------

    def _rpc(
        self,
        handle: SimReplicaHandle,
        message: dict,
        kind: str,
        timeout_s: float,
    ) -> bool:
        assert handle.endpoint is not None
        try:
            handle.endpoint.send(message)
        except ChannelClosed:
            self._mark_dead(handle, "send-failed")
            return False
        handle.in_flight = kind
        handle.timeout_event = self.sim.scheduler.call_after(
            timeout_s,
            partial(self._on_timeout, handle, kind),
            label=f"rpc-timeout:{handle.name}",
        )
        return True

    def _on_timeout(self, handle: SimReplicaHandle, kind: str) -> None:
        if handle.in_flight != kind:
            return
        handle.timeout_event = None
        self._mark_dead(handle, f"timeout:{kind}")

    def _on_message(self, handle: SimReplicaHandle, message: dict) -> None:
        sim = self.sim
        kind = message.get("t")
        if kind == MSG_HELLO:
            handle.alive = True
            handle.acked_seq = int(message.get("applied_seq", 0))
            handle.epoch = int(message.get("epoch", 0))
            sim.trace.record(
                sim.clock.now(),
                "replica-hello",
                replica=handle.name,
                applied_seq=handle.acked_seq,
                epoch=handle.epoch,
            )
            return
        pending, handle.in_flight = handle.in_flight, None
        if handle.timeout_event is not None:
            handle.timeout_event.cancel()
            handle.timeout_event = None
        if kind == MSG_ACK:
            handle.acked_seq = int(message.get("applied_seq", 0))
            sim.trace.record(
                sim.clock.now(),
                "ack",
                replica=handle.name,
                applied_seq=handle.acked_seq,
            )
        elif kind == MSG_PROMOTED and pending == "promote":
            epoch = self._pending_epoch
            assert epoch is not None
            handle.promoted = True
            handle.acked_seq = int(message.get("applied_seq", 0))
            handle.epoch = epoch
            self.epoch = epoch
            self.promoted_handle = handle
            self.failovers += 1
            sim.trace.record(
                sim.clock.now(),
                "failover-complete",
                replica=handle.name,
                epoch=epoch,
                applied_seq=handle.acked_seq,
            )
        elif kind == MSG_ERROR:
            code = str(message.get("error", {}).get("code"))
            sim.trace.record(
                sim.clock.now(),
                "replica-error",
                replica=handle.name,
                code=code,
                rpc=str(pending),
            )
            # A typed apply/promote failure: the replica cannot follow
            # this stream; cycle it through a full catch-up.
            self._mark_dead(handle, f"error:{code}")
        elif kind == MSG_HEALTH_REPORT:
            pass  # probe traffic; the authoritative lag view is local

    # -- watermarks --------------------------------------------------------

    def last_committed_seq(self) -> int | None:
        if self.primary_alive:
            return self.sim.primary.durable.journal.next_seq - 1
        promoted = self.promoted_handle
        if promoted is not None:
            return max(promoted.acked_seq, self.buffer.last_seq)
        return None

    def lag_of(self, handle: SimReplicaHandle) -> int | None:
        primary_seq = self.last_committed_seq()
        if primary_seq is None:
            return None
        return max(0, primary_seq - handle.acked_seq)

    # -- the pump ----------------------------------------------------------

    def ship_round(self) -> None:
        sim = self.sim
        cfg = sim.config
        try:
            try:
                self.buffer.poll()
            except FollowerResyncRequired:
                manifest = manifest_mod.read_manifest(self.directory)
                self.buffer.resync(manifest["seq"])
                sim.trace.record(
                    sim.clock.now(), "ship-resync", seq=manifest["seq"]
                )
                for handle in self.handles:
                    if handle.alive and handle.acked_seq < manifest["seq"]:
                        self._restart(handle, "resync")
                return
            except (JournalCorruptionError, OSError):
                sim.trace.record(sim.clock.now(), "ship-poll-failed")
                return
            min_acked: int | None = None
            for handle in self.handles:
                if not handle.alive or handle.promoted:
                    continue
                if handle.in_flight is None:
                    records = self.buffer.records_after(handle.acked_seq)
                    if records is None:
                        self._restart(handle, "out-of-window")
                        continue
                    records = records[: cfg.max_frames_per_ship]
                    if records:
                        self._rpc(
                            handle,
                            {"t": MSG_FRAMES, "records": records},
                            "frames",
                            cfg.rpc_timeout_s,
                        )
                if min_acked is None or handle.acked_seq < min_acked:
                    min_acked = handle.acked_seq
            if min_acked is not None:
                self.buffer.trim(min_acked)
        finally:
            if sim.active:
                sim.scheduler.call_after(
                    cfg.ship_interval_s, self.ship_round, label="ship"
                )

    def probe_round(self) -> None:
        sim = self.sim
        cfg = sim.config
        try:
            if self.primary_alive and not sim.primary.alive:
                self.primary_alive = False
                sim.trace.record(sim.clock.now(), "primary-observed-dead")
            for handle in self.handles:
                if not handle.alive:
                    if handle.host is None or not handle.host.alive:
                        self._restart(handle, "dead")
            # Failover before health probes: a probe in flight would
            # otherwise occupy every candidate, every round.
            if (
                not self.primary_alive
                and self.promoted_handle is None
            ):
                self._try_failover()
            for handle in self.handles:
                if handle.alive and handle.in_flight is None:
                    self._rpc(
                        handle,
                        {
                            "t": MSG_HEALTH,
                            "primary_seq": self.last_committed_seq(),
                        },
                        "health",
                        cfg.rpc_timeout_s,
                    )
        finally:
            if sim.active:
                sim.scheduler.call_after(
                    cfg.probe_interval_s, self.probe_round, label="probe"
                )

    def _try_failover(self) -> None:
        sim = self.sim
        candidates = [
            h
            for h in self.handles
            if h.alive and not h.promoted and h.in_flight is None
        ]
        if not candidates:
            return
        chosen = max(candidates, key=lambda h: (h.acked_seq, -h.id))
        # Re-read the EPOCH file: a promote whose reply was lost still
        # published its epoch, and re-proposing it would be refused as
        # a regression by advance_epoch's monotonicity check.
        self._pending_epoch = max(
            self.epoch, read_epoch(self.directory)
        ) + 1
        sim.trace.record(
            sim.clock.now(),
            "failover-attempt",
            replica=chosen.name,
            epoch=self._pending_epoch,
        )
        self._rpc(
            chosen,
            {"t": MSG_PROMOTE, "epoch": self._pending_epoch},
            "promote",
            sim.config.promote_timeout_s,
        )


# ---------------------------------------------------------------------------
# Router backends (static list; the sim fleet is fixed-size)
# ---------------------------------------------------------------------------


class SimPrimaryBackend:
    """The live primary as a routing backend (lag 0)."""

    name = "primary"

    def __init__(self, sim: "Simulation"):
        self.sim = sim

    def ready(self) -> bool:
        return self.sim.primary.alive and self.sim.supervisor.primary_alive

    def lag_seq(self) -> int | None:
        return 0

    def execute_read(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
    ):
        result = self.sim.primary.durable.execute(query, bindings=bindings)
        return RoutedResult(
            strings=result.strings(), xml=None, backend=self.name
        )


class SimReplicaBackend:
    """One simulated replica as a routing backend."""

    def __init__(self, sim: "Simulation", handle: SimReplicaHandle):
        self.sim = sim
        self.handle = handle
        self.name = handle.name

    def ready(self) -> bool:
        handle = self.handle
        return (
            handle.alive
            and not handle.promoted
            and handle.host is not None
            and handle.host.applier is not None
        )

    def lag_seq(self) -> int | None:
        return self.sim.supervisor.lag_of(self.handle)

    def execute_read(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
    ):
        assert self.handle.host is not None
        applier = self.handle.host.applier
        assert applier is not None
        result = applier.execute(query, bindings=bindings)
        return RoutedResult(
            strings=result.strings(), xml=None, backend=self.name
        )


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


class Workload:
    """Seeded open-loop writes and staleness-bounded reads."""

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.rng = random.Random(f"{sim.seed}:workload")
        self.n = 0
        self.attempted_inserts = 0
        self.acked_writes = 0
        self.refused_writes: dict[str, int] = {}
        self.reads_ok = 0
        self.reads_refused = 0
        self.stale_client_writes = 0

    def start(self) -> None:
        self._schedule_write()
        self._schedule_read()

    def _schedule_write(self) -> None:
        sim = self.sim
        delay = sim.config.write_interval_s * self.rng.uniform(0.5, 1.5)
        if sim.clock.now() + delay < sim.config.horizon_s:
            sim.scheduler.call_after(delay, self._write_event, label="write")

    def _schedule_read(self) -> None:
        sim = self.sim
        delay = sim.config.read_interval_s * self.rng.uniform(0.5, 1.5)
        if sim.clock.now() + delay < sim.config.horizon_s:
            sim.scheduler.call_after(delay, self._read_event, label="read")

    # -- writes ------------------------------------------------------------

    def _write_event(self) -> None:
        sim = self.sim
        sup = sim.supervisor
        try:
            if sup.primary_alive and sim.primary.alive:
                self._primary_write(stale=False)
            elif sim.primary.alive and not sup.primary_alive:
                # The zombie window: the supervisor believes the
                # primary is dead but the process lives — a stale
                # client that never heard about the failover keeps
                # writing to it.  Fencing is what makes this safe.
                if self.rng.random() < sim.config.stale_client_fraction:
                    self.stale_client_writes += 1
                    self._primary_write(stale=True)
                else:
                    self._promoted_write()
            else:
                self._promoted_write()
        finally:
            self._schedule_write()

    def _refused(self, exc: XQueryError, target: str) -> None:
        code = str(exc.code)
        self.refused_writes[code] = self.refused_writes.get(code, 0) + 1
        self.sim.trace.record(
            self.sim.clock.now(), "write-refused", code=code, target=target
        )

    def _primary_write(self, *, stale: bool) -> None:
        sim = self.sim
        primary = sim.primary
        txn = self.rng.random() < sim.config.txn_fraction
        inserts = 2 if txn else 1
        self.attempted_inserts += inserts
        first = self.n
        self.n += inserts
        try:
            if txn:
                with primary.durable.transaction() as t:
                    t.execute(_WRITE_QUERY.format(n=first))
                    t.execute(_WRITE_QUERY.format(n=first + 1))
            else:
                primary.durable.execute(_WRITE_QUERY.format(n=first))
        except InjectedCrash as exc:
            primary.crash(f"crash-point:{getattr(exc, 'point', '?')}")
            return
        except XQueryError as exc:
            self._refused(exc, "primary")
            return
        journal = primary.durable.journal
        seq = journal.next_seq - 1
        epoch = journal.epoch
        now = sim.clock.now()
        sim.oracle.record_append(primary.name, epoch, seq, now)
        sim.oracle.record_ack(seq, epoch, now, inserts)
        self.acked_writes += 1
        sim.trace.record(
            now, "write-ack", seq=seq, epoch=epoch, target="primary",
            stale=stale, inserts=inserts,
        )

    def _promoted_write(self) -> None:
        sim = self.sim
        handle = sim.supervisor.promoted_handle
        if (
            handle is None
            or not handle.alive
            or handle.host is None
            or handle.host.applier is None
            or handle.host.applier.durable is None
        ):
            # The failover gap: a transient typed refusal, same as
            # ClusterSupervisor.execute_write.
            self.refused_writes["REPR0010"] = (
                self.refused_writes.get("REPR0010", 0) + 1
            )
            sim.trace.record(
                sim.clock.now(), "write-refused", code="REPR0010",
                target="gap",
            )
            return
        durable = handle.host.applier.durable
        txn = self.rng.random() < sim.config.txn_fraction
        inserts = 2 if txn else 1
        self.attempted_inserts += inserts
        first = self.n
        self.n += inserts
        try:
            if txn:
                with durable.transaction() as t:
                    t.execute(_WRITE_QUERY.format(n=first))
                    t.execute(_WRITE_QUERY.format(n=first + 1))
            else:
                durable.execute(_WRITE_QUERY.format(n=first))
        except InjectedCrash:
            handle.host.kill("injected-crash")
            return
        except XQueryError as exc:
            self._refused(exc, handle.name)
            return
        seq = durable.journal.next_seq - 1
        epoch = durable.journal.epoch
        now = sim.clock.now()
        sim.oracle.record_append(handle.name, epoch, seq, now)
        sim.oracle.record_ack(seq, epoch, now, inserts)
        self.acked_writes += 1
        sim.trace.record(
            now, "write-ack", seq=seq, epoch=epoch, target=handle.name,
            stale=False, inserts=inserts,
        )

    # -- reads -------------------------------------------------------------

    def _read_event(self) -> None:
        sim = self.sim
        bound = self.rng.choice(_READ_BOUNDS)
        watermark = sim.supervisor.last_committed_seq()
        try:
            try:
                result = sim.router.execute_read(
                    _READ_QUERY, max_lag_seq=bound
                )
            except XQueryError as exc:
                self.reads_refused += 1
                sim.trace.record(
                    sim.clock.now(),
                    "read-refused",
                    code=str(exc.code),
                    bound=bound,
                )
                return
            backend = result.backend
            if backend.startswith("replica-"):
                handle = sim.supervisor.handles[int(backend.split("-")[1])]
                if handle.host is not None and handle.host.applier is not None:
                    sim.oracle.record_read(
                        backend=backend,
                        bound=bound,
                        watermark=watermark,
                        applied_seq=handle.host.applier.applied_seq,
                        vtime=sim.clock.now(),
                    )
            self.reads_ok += 1
            sim.trace.record(
                sim.clock.now(),
                "read-ok",
                backend=backend,
                bound=bound,
                value=result.first_value(),
            )
        finally:
            self._schedule_read()


# ---------------------------------------------------------------------------
# The simulation
# ---------------------------------------------------------------------------


@dataclass
class SimReport:
    """What one simulated run did, and whether the oracle approved."""

    seed: int
    ok: bool
    violations: list[str]
    digest: str
    events: int
    virtual_end: float
    acked_writes: int
    attempted_inserts: int
    refused_writes: dict[str, int]
    reads_ok: int
    reads_refused: int
    reads_checked: int
    failovers: int
    restarts: int
    converged: bool
    fingerprint: str | None
    watermark: int | None
    schedule_json: str
    trace_tail: str = ""

    def summary_line(self) -> str:
        if self.ok:
            return (
                f"seed {self.seed} ok digest={self.digest[:16]} "
                f"acked={self.acked_writes} reads={self.reads_ok} "
                f"failovers={self.failovers} restarts={self.restarts}"
            )
        tags = sorted({v.split("]")[0] + "]" for v in self.violations})
        return (
            f"seed {self.seed} FAIL {' '.join(tags)} "
            f"({len(self.violations)} violation(s)) "
            f"repro: python -m repro.sim --seed {self.seed}"
        )


class Simulation:
    """One deterministic cluster run: seed in, :class:`SimReport` out."""

    def __init__(
        self,
        seed: int,
        directory: str,
        *,
        config: SimConfig | None = None,
        schedule: FaultSchedule | None = None,
    ):
        self.seed = seed
        self.directory = directory
        self.config = config if config is not None else SimConfig()
        self.scheduler = EventScheduler(seed)
        self.clock = self.scheduler.clock
        self.net = SimNetwork(
            self.scheduler,
            seed,
            min_delay_s=self.config.net_min_delay_s,
            max_delay_s=self.config.net_max_delay_s,
            loss=self.config.net_loss,
        )
        self.trace = TraceRecorder()
        self.oracle = Oracle()
        self.schedule = (
            schedule
            if schedule is not None
            else FaultSchedule.generate(
                seed,
                replicas=self.config.replicas,
                horizon_s=self.config.horizon_s,
            )
        )
        self.primary = PrimaryHost(self)
        self.supervisor = SimSupervisor(self)
        self.router = QueryRouter(
            primary=SimPrimaryBackend(self),
            replicas=[
                SimReplicaBackend(self, handle)
                for handle in self.supervisor.handles
            ],
            default_max_lag_seq=None,
            retry_after_ms=self.config.ship_interval_s * 1000.0,
        )
        self.workload = Workload(self)
        #: Periodic rounds keep rescheduling while the sim is active.
        self.active = True

    # -- faults ------------------------------------------------------------

    def _apply_fault(self, event: Any) -> None:
        kind = event.kind
        args = event.args
        self.trace.record(
            self.clock.now(),
            "fault",
            fault=kind,
            args=dict(sorted(args.items())),
        )
        if kind == KILL_PRIMARY:
            self.primary.kill()
        elif kind == PRESUME_PRIMARY_DEAD:
            self.supervisor.primary_alive = False
        elif kind == KILL_REPLICA:
            index = int(args.get("replica", 0)) % len(self.supervisor.handles)
            self.supervisor._mark_dead(
                self.supervisor.handles[index], "killed"
            )
        elif kind == PARTITION_REPLICA:
            index = int(args.get("replica", 0)) % len(self.supervisor.handles)
            name = f"replica-{index}"
            self.net.isolate(name)
            self.scheduler.call_after(
                float(args.get("duration_s", 1.0)),
                partial(self._heal, name),
                label=f"heal:{name}",
            )
        elif kind == CRASH_POINT:
            if self.primary.alive:
                point = args.get("point")
                self.primary.faults.arm(point, after=int(args.get("after", 1)))
                if point == CRASH_MID_CHECKPOINT:
                    # A checkpoint crash needs a checkpoint to crash in.
                    self.scheduler.call_after(
                        0.05, self._force_checkpoint, label="checkpoint"
                    )
        elif kind == EIO_WINDOW:
            if self.primary.alive:
                self.primary.faults.arm(EIO_ON_WRITE, persistent=True)
                self.scheduler.call_after(
                    float(args.get("duration_s", 0.5)),
                    partial(self.primary.faults.disarm, EIO_ON_WRITE),
                    label="eio-heal",
                )
        elif kind == SLOW_FSYNC_WINDOW:
            self.primary.faults.arm_delay(
                SLOW_FSYNC, float(args.get("delay_s", 0.05))
            )
            self.scheduler.call_after(
                float(args.get("duration_s", 1.0)),
                partial(self.primary.faults.disarm_delay, SLOW_FSYNC),
                label="fsync-heal",
            )
        elif kind == FORCE_CHECKPOINT:
            self._force_checkpoint()

    def _heal(self, name: str) -> None:
        self.net.heal(name)
        self.trace.record(self.clock.now(), "heal", name=name)

    def _force_checkpoint(self) -> None:
        if not self.primary.alive:
            return
        try:
            self.primary.durable.checkpoint()
        except InjectedCrash as exc:
            self.primary.crash(f"crash-point:{getattr(exc, 'point', '?')}")
        except (XQueryError, OSError):
            self.trace.record(self.clock.now(), "checkpoint-failed")
        else:
            self.trace.record(self.clock.now(), "checkpoint")

    # -- quiesce -----------------------------------------------------------

    def _quiesced(self) -> bool:
        sup = self.supervisor
        cfg = self.config
        if sup.primary_alive and not self.primary.alive:
            return False  # the probe has not observed the death yet
        if not sup.primary_alive and sup.promoted_handle is None:
            if any(
                h.alive or h.restarts < cfg.max_restarts
                for h in sup.handles
            ):
                return False  # failover may still complete
        target = sup.buffer.last_seq
        for handle in sup.handles:
            if handle.in_flight is not None:
                return False
            if handle.alive:
                if not handle.promoted and handle.acked_seq < target:
                    return False
            elif handle.restarts < cfg.max_restarts:
                return False  # a respawn is still owed
        return True

    # -- the run -----------------------------------------------------------

    def run(self) -> SimReport:
        cfg = self.config
        self.supervisor.start()
        self.workload.start()
        for event in self.schedule:
            self.scheduler.call_at(
                event.at,
                partial(self._apply_fault, event),
                label=f"fault:{event.kind}",
            )
        self.scheduler.run(until=cfg.horizon_s, max_events=2_000_000)
        # Quiesce: heal the world, stop injecting, let the fleet drain.
        self.net.heal_all()
        for point in ALL_CRASH_POINTS:
            self.primary.faults.disarm(point)
        self.primary.faults.disarm_delay(SLOW_FSYNC)
        self.trace.record(self.clock.now(), "quiesce")
        deadline = cfg.horizon_s + cfg.drain_s
        converged = False
        while self.clock.now() < deadline:
            self.scheduler.run(
                until=min(self.clock.now() + 1.0, deadline),
                max_events=200_000,
            )
            if self._quiesced():
                converged = True
                break
        self.active = False
        # Let in-flight deliveries and timeouts settle, then stop.
        self.scheduler.run(max_events=200_000)
        report = self._finish(converged)
        return report

    def _finish(self, converged: bool) -> SimReport:
        sup = self.supervisor
        live: dict[str, str | None] = {}
        if sup.primary_alive and self.primary.alive:
            live["primary"] = store_fingerprint(self.primary.durable.engine)
        for handle in sup.handles:
            if (
                handle.alive
                and handle.host is not None
                and handle.host.applier is not None
            ):
                live[handle.name] = handle.host.applier.fingerprint()
        recovered_watermark: int | None = None
        recovered_inserts: int | None = None
        recovered_fp: str | None = None
        try:
            result = recover(self.directory, readonly=True)
            recovered_watermark = result.report.next_seq - 1
            recovered_fp = store_fingerprint(result.engine)
            strings = result.engine.execute(_READ_QUERY).strings()
            recovered_inserts = int(strings[0]) if strings else 0
        except XQueryError as exc:
            self.trace.record(
                self.clock.now(), "recovery-failed", code=str(exc.code)
            )
        self.oracle.check_durability(
            recovered_watermark,
            recovered_inserts,
            self.workload.attempted_inserts,
        )
        self.oracle.check_convergence(recovered_fp, live)
        if not converged:
            self.oracle.record_violation(
                CONVERGENCE,
                "fleet failed to quiesce within the drain budget",
            )
        self.trace.record(
            self.clock.now(),
            "final",
            watermark=recovered_watermark,
            fingerprint=recovered_fp,
            inserts=recovered_inserts,
            converged=converged,
            violations=len(self.oracle.violations),
        )
        violations = [str(v) for v in self.oracle.violations]
        return SimReport(
            seed=self.seed,
            ok=self.oracle.ok,
            violations=violations,
            digest=self.trace.digest(),
            events=self.scheduler.processed,
            virtual_end=self.clock.now(),
            acked_writes=self.workload.acked_writes,
            attempted_inserts=self.workload.attempted_inserts,
            refused_writes=dict(sorted(self.workload.refused_writes.items())),
            reads_ok=self.workload.reads_ok,
            reads_refused=self.workload.reads_refused,
            reads_checked=self.oracle.reads_checked,
            failovers=sup.failovers,
            restarts=sup.restarts_total,
            converged=converged,
            fingerprint=recovered_fp,
            watermark=recovered_watermark,
            schedule_json=self.schedule.to_json(),
            trace_tail=self.trace.format_tail(30) if violations else "",
        )


def run_seed(
    seed: int,
    *,
    config: SimConfig | None = None,
    schedule: FaultSchedule | None = None,
    directory: str | None = None,
) -> SimReport:
    """Run one simulation in a fresh (or given) durable directory."""
    import shutil
    import tempfile

    cleanup = directory is None
    if directory is None:
        directory = tempfile.mkdtemp(prefix="repro-sim-")
    try:
        sim = Simulation(
            seed, directory, config=config, schedule=schedule
        )
        return sim.run()
    finally:
        if cleanup:
            shutil.rmtree(directory, ignore_errors=True)


__all__ = [
    "SimConfig",
    "SimReport",
    "Simulation",
    "run_seed",
]
