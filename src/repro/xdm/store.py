"""The node store of the XQuery! data model.

Section 3.2 of the paper defines the store as the structure that specifies,
"for each node id, its kind (element, attribute, text...), parent, name, and
content".  This module implements that structure together with the accessors
and constructors corresponding to the XDM, and the mutation primitives the
update-application layer (``repro.semantics.update``) is built on.

Design notes
------------

* Node ids are dense integers allocated by the store; a node's identity is
  its id.  Handles (:class:`repro.xdm.nodes.Node`) pair a store with an id.
* ``delete`` in XQuery! *detaches* (Section 3.1): the parent link is severed
  but the record survives, so detached subtrees remain queryable.  The store
  therefore never frees records implicitly; :meth:`Store.gc` reclaims
  unreachable detached trees on demand (the paper defers GC, we provide it).
* Document order is structural: nodes are ordered by (root id, path of
  sibling positions), with attributes ordered after their owner element and
  before its children.  Distinct trees are ordered by root node id, which is
  stable (allocation order), satisfying XDM's "stable, total order".
"""

from __future__ import annotations

import enum
import itertools
import threading
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.concurrent.locks import RWLock
from repro.errors import StoreError, UpdateApplicationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.concurrent.snapshot import StoreSnapshot


class NodeKind(enum.Enum):
    """The seven XDM node kinds (we omit namespace nodes)."""

    DOCUMENT = "document"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"


_HAS_CHILDREN = (NodeKind.DOCUMENT, NodeKind.ELEMENT)
_HAS_VALUE = (
    NodeKind.ATTRIBUTE,
    NodeKind.TEXT,
    NodeKind.COMMENT,
    NodeKind.PROCESSING_INSTRUCTION,
)


class _NodeRecord:
    """Mutable per-node state.  Internal to the store."""

    __slots__ = ("kind", "name", "parent", "children", "attributes", "value")

    def __init__(self, kind: NodeKind, name: str | None, value: str | None):
        self.kind = kind
        self.name = name
        self.parent: int | None = None
        # children: child node ids in document order (documents/elements).
        self.children: list[int] = []
        # attributes: attribute node ids, in stable insertion order.
        self.attributes: list[int] = []
        self.value = value


class StoreCheckpoint:
    """An immutable snapshot of a store's full state (see
    :meth:`Store.checkpoint`)."""

    __slots__ = ("records", "next_id")

    def __init__(self, records: dict, next_id: int):
        self.records = records
        self.next_id = next_id


class Store:
    """A mutable XDM node store.

    All structural state lives here; nodes returned to user code are thin
    handles.  Every mutating method validates its preconditions and raises
    :class:`~repro.errors.UpdateApplicationError` on violation, mirroring the
    paper's "partial function from stores to stores".
    """

    def __init__(self) -> None:
        self._records: dict[int, _NodeRecord] = {}
        self._next_id = 0
        # Structural version: bumped by every mutation that can change
        # document order; order keys are cached against it.
        self._version = 0
        self._order_cache: dict[int, tuple] = {}
        # Secondary index over the order cache: tree root id -> the cached
        # node ids under it.  A structural mutation invalidates only the
        # mutated tree's keys (see _touch), so an insert into one tree no
        # longer destroys cached order keys for every other tree.
        self._cached_roots: dict[int, set[int]] = {}
        # Element-name index: name -> ids of elements bearing it, anywhere
        # in the store (live or detached).  Maintained on create/rename;
        # used by the descendant-axis fast path.
        self._name_index: dict[str, set[int]] = {}
        # Value indexes (attribute values, text tokens): lazily built on
        # first probe, then maintained incrementally by the mutators
        # below.  Deferred import — repro.index imports store symbols.
        from repro.index.manager import IndexManager

        self._indexes = IndexManager(self)
        # Observability: a repro.obs.Tracer while a traced execution is in
        # flight, else None.  Hot paths guard on None so that disabled
        # instrumentation costs one attribute load per event.
        self._obs = None
        # Concurrency: the query-granularity reader-writer lock.  The
        # store itself does not take it — callers running queries
        # concurrently do (the ConcurrentExecutor holds the write side
        # for updating queries; see repro.concurrent).
        self.lock = RWLock()
        # Node-id allocation: next() on the C-level counter is atomic
        # under the GIL, so even unsupported concurrent constructors get
        # unique ids without a lock on the allocation hot path.
        # _next_id mirrors the watermark (every id below it is spoken
        # for) for snapshot ceilings and checkpoints; it is exact under
        # the supported discipline, where allocation happens
        # single-threaded or under the store's write lock.
        self._id_counter = itertools.count()
        # Active copy-on-write snapshot views; every structural mutation
        # offers them a pre-image first (see _cow).  Empty in the
        # single-threaded case, where the whole machinery costs one
        # truthiness test per mutation.
        self._snapshots: list["StoreSnapshot"] = []

    def _touch(self, *roots: int) -> None:
        """Invalidate cached order keys.

        With explicit *roots* (the affected trees' **pre-mutation** root
        ids) only those trees' keys are dropped; mutators compute the
        roots before restructuring, since a mutation can change which tree
        a node belongs to.  With no arguments the whole cache is wiped
        (checkpoint restore, persistence load).
        """
        self._version += 1
        if not roots:
            self._order_cache.clear()
            self._cached_roots.clear()
            # A whole-store invalidation (restore, persistence load) can
            # rebind records wholesale, bypassing the per-mutator index
            # hooks — drop the value indexes rather than risk stale
            # postings; the next probe rebuilds.
            self._indexes.invalidate()
            return
        for root in roots:
            nids = self._cached_roots.pop(root, None)
            if nids:
                for nid in nids:
                    self._order_cache.pop(nid, None)

    # ------------------------------------------------------------------
    # Copy-on-write snapshots (repro.concurrent)
    # ------------------------------------------------------------------

    def _cow(self, *nids: int) -> None:
        """Offer pre-images of *nids* to every active snapshot.

        Called by every structural mutator **before** it changes a
        record, so a snapshot always captures the state the record had
        when the snapshot was taken (first offer wins; later offers of an
        already-saved record are ignored by the snapshot).
        """
        # tuple(): GIL-atomic copy — release_snapshot may run from a
        # reader thread mid-iteration; a just-released snapshot may still
        # receive an offer (harmless), an active one is never skipped.
        for snapshot in tuple(self._snapshots):
            snapshot._save_preimages(nids, self._records)

    def begin_snapshot(self) -> "StoreSnapshot":
        """Open a frozen read view of the store's current state.

        Creation is O(1): nothing is copied up front.  Mutations that
        follow pay one pre-image copy per mutated record per active
        snapshot.  Callers should :meth:`release_snapshot` when done so
        later mutations stop paying for it.
        """
        from repro.concurrent.snapshot import StoreSnapshot

        snapshot = StoreSnapshot(
            store=self,
            records=self._records,
            ceiling=self._next_id,
            version=self._version,
        )
        self._snapshots.append(snapshot)
        return snapshot

    def release_snapshot(self, snapshot: "StoreSnapshot") -> None:
        """Stop feeding pre-images to *snapshot* (idempotent).

        The snapshot remains readable — whatever it has already captured
        stays valid — but mutations after release are free again."""
        try:
            self._snapshots.remove(snapshot)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Constructors (XDM constructor functions)
    # ------------------------------------------------------------------

    def _reset_ids(self, next_id: int) -> None:
        """Re-seed id allocation (restore / persistence load)."""
        self._next_id = next_id
        self._id_counter = itertools.count(next_id)

    def _alloc(self, kind: NodeKind, name: str | None, value: str | None) -> int:
        nid = next(self._id_counter)
        self._next_id = nid + 1
        self._records[nid] = _NodeRecord(kind, name, value)
        if kind is NodeKind.ELEMENT and name:
            # Every element enters the name index at birth — including
            # deep-copy clones, which do not go through create_element.
            self._name_index.setdefault(name, set()).add(nid)
        if self._indexes.built:
            self._indexes.on_alloc(nid, kind, name, value)
        if self._obs is not None:
            self._obs.count("store.nodes_created")
        return nid

    def create_document(self) -> int:
        """Allocate a new, empty document node and return its id."""
        return self._alloc(NodeKind.DOCUMENT, None, None)

    def create_element(self, name: str) -> int:
        """Allocate a new parentless element node named *name*."""
        if not name:
            raise StoreError("element name must be non-empty")
        return self._alloc(NodeKind.ELEMENT, name, None)

    def create_attribute(self, name: str, value: str) -> int:
        """Allocate a new parentless attribute node."""
        if not name:
            raise StoreError("attribute name must be non-empty")
        return self._alloc(NodeKind.ATTRIBUTE, name, value)

    def create_text(self, value: str) -> int:
        """Allocate a new parentless text node."""
        return self._alloc(NodeKind.TEXT, None, value)

    def create_comment(self, value: str) -> int:
        """Allocate a new parentless comment node."""
        return self._alloc(NodeKind.COMMENT, None, value)

    def create_processing_instruction(self, target: str, value: str) -> int:
        """Allocate a new parentless processing-instruction node."""
        return self._alloc(NodeKind.PROCESSING_INSTRUCTION, target, value)

    # ------------------------------------------------------------------
    # Accessors (XDM accessor functions)
    # ------------------------------------------------------------------

    def _rec(self, nid: int) -> _NodeRecord:
        try:
            return self._records[nid]
        except KeyError:
            raise StoreError(f"unknown node id {nid}") from None

    def __contains__(self, nid: int) -> bool:
        return nid in self._records

    def __len__(self) -> int:
        """Number of live records (including detached ones)."""
        return len(self._records)

    def kind(self, nid: int) -> NodeKind:
        """Return the node kind of *nid*."""
        return self._rec(nid).kind

    def name(self, nid: int) -> str | None:
        """Return the node name (element/attribute name, PI target)."""
        return self._rec(nid).name

    def parent(self, nid: int) -> int | None:
        """Return the parent node id, or None for parentless nodes."""
        return self._rec(nid).parent

    def children(self, nid: int) -> tuple[int, ...]:
        """Return the child node ids in document order."""
        return tuple(self._rec(nid).children)

    def attributes(self, nid: int) -> tuple[int, ...]:
        """Return the attribute node ids of an element, in stable order."""
        return tuple(self._rec(nid).attributes)

    def value(self, nid: int) -> str | None:
        """Return the content string of a text/attribute/comment/PI node."""
        return self._rec(nid).value

    def string_value(self, nid: int) -> str:
        """The XDM string-value accessor.

        For documents and elements this is the concatenation of the string
        values of all descendant text nodes, in document order.
        """
        rec = self._rec(nid)
        if rec.kind in _HAS_VALUE:
            return rec.value or ""
        parts: list[str] = []
        stack = list(reversed(rec.children))
        while stack:
            cur = self._rec(stack.pop())
            if cur.kind is NodeKind.TEXT:
                parts.append(cur.value or "")
            elif cur.kind in _HAS_CHILDREN:
                stack.extend(reversed(cur.children))
        return "".join(parts)

    def attribute_named(self, nid: int, name: str) -> int | None:
        """Return the id of the attribute named *name* on element *nid*."""
        rec = self._rec(nid)
        for aid in rec.attributes:
            if self._rec(aid).name == name:
                return aid
        return None

    def root(self, nid: int) -> int:
        """Return the id of the root of the tree containing *nid*."""
        cur = nid
        while True:
            parent = self._rec(cur).parent
            if parent is None:
                return cur
            cur = parent

    def descendants_named(self, nid: int, name: str) -> list[int]:
        """Element descendants of *nid* named *name*, via the name index.

        Returns ids in arbitrary order (callers sort into document order).
        Equivalent to filtering :meth:`descendants` by name, but touches
        only index candidates — O(candidates × depth) instead of
        O(subtree) — which wins on selective names in large trees.
        """
        candidates = self._name_index.get(name)
        if not candidates:
            return []
        out = []
        # tuple() takes a GIL-atomic copy: concurrent element construction
        # may add to the index set while a snapshot-less reader iterates.
        for candidate in tuple(candidates):
            if candidate == nid:
                continue
            cur = self._records[candidate].parent
            while cur is not None:
                if cur == nid:
                    out.append(candidate)
                    break
                cur = self._records[cur].parent
        return out

    @property
    def indexes(self):
        """The store's value-index manager (see :mod:`repro.index`)."""
        return self._indexes

    def attr_eq_probe(self, name: str, value: str) -> tuple[int, ...]:
        """Ids of attribute nodes bearing ``name="value"``, store-wide.

        Builds the value indexes on first use.  Exact on content; callers
        re-check attachment (owner element, containment) because the
        index is content-keyed and also lists detached attributes.
        """
        return self._indexes.attr_probe(name, value)

    def token_probe(self, needle: str) -> tuple[int, ...] | None:
        """Candidate text-node ids for a ``contains`` search (superset;
        callers verify).  None when the needle cannot use the index."""
        return self._indexes.token_probe(needle)

    def descendants(self, nid: int, include_self: bool = False) -> Iterator[int]:
        """Yield descendant node ids in document order.

        Attributes are *not* descendants (XPath axis semantics).
        """
        if include_self:
            yield nid
        stack = list(reversed(self._rec(nid).children))
        while stack:
            cur = stack.pop()
            yield cur
            rec = self._rec(cur)
            if rec.kind in _HAS_CHILDREN:
                stack.extend(reversed(rec.children))

    def ancestors(self, nid: int, include_self: bool = False) -> Iterator[int]:
        """Yield ancestor node ids, nearest first."""
        if include_self:
            yield nid
        cur = self._rec(nid).parent
        while cur is not None:
            yield cur
            cur = self._rec(cur).parent

    def size(self, nid: int) -> int:
        """Number of nodes in the subtree rooted at *nid* (incl. attrs)."""
        total = 0
        stack = [nid]
        while stack:
            current = self._rec(stack.pop())
            total += 1 + len(current.attributes)
            stack.extend(current.children)
        return total

    # ------------------------------------------------------------------
    # Document order
    # ------------------------------------------------------------------

    def order_key(self, nid: int) -> tuple:
        """A sortable key realizing document order.

        The key is ``(root_id, pos_0, pos_1, ...)`` where ``pos_i`` is the
        child index at depth ``i``; attribute nodes sort between their owner
        element and its first child via a ``-1`` marker component.  Keys are
        cached; any structural mutation invalidates the cache.
        """
        cached = self._order_cache.get(nid)
        if cached is not None:
            return cached
        rec = self._rec(nid)
        parent = rec.parent
        if parent is None:
            key: tuple = (nid, ())
        else:
            prec = self._rec(parent)
            if rec.kind is NodeKind.ATTRIBUTE:
                # (-1, k): after the element's own key, before child (0, _).
                mine = (-1, prec.attributes.index(nid))
            else:
                mine = (0, prec.children.index(nid))
            root, path = self.order_key(parent)
            key = (root, path + (mine,))
        self._order_cache[nid] = key
        self._cached_roots.setdefault(key[0], set()).add(nid)
        return key

    def compare_order(self, a: int, b: int) -> int:
        """Return -1/0/1 as *a* precedes/equals/follows *b* in doc order."""
        ka, kb = self.order_key(a), self.order_key(b)
        if ka == kb:
            return 0
        # An ancestor's key is a strict prefix of its descendants' keys and
        # tuple comparison already places prefixes first, but the attribute
        # marker (-1) must sort *before* child entries (0); Python tuple
        # comparison of (-1, i) < (0, j) gives exactly that.
        return -1 if ka < kb else 1

    def sort_document_order(self, nids: Iterable[int]) -> list[int]:
        """Sort node ids into document order, removing duplicates."""
        return sorted(set(nids), key=self.order_key)

    # ------------------------------------------------------------------
    # Mutators (used by update application and node construction)
    # ------------------------------------------------------------------

    def _check_can_parent(self, parent: int) -> _NodeRecord:
        rec = self._rec(parent)
        if rec.kind not in _HAS_CHILDREN:
            raise UpdateApplicationError(
                f"cannot insert children into a {rec.kind.value} node"
            )
        return rec

    def _check_insertable(self, nid: int) -> _NodeRecord:
        rec = self._rec(nid)
        if rec.parent is not None:
            raise UpdateApplicationError(
                f"node {nid} already has a parent; insert requires a "
                "parentless node (the normalization copy rule guarantees "
                "this for well-formed programs)"
            )
        if rec.kind is NodeKind.DOCUMENT:
            raise UpdateApplicationError("cannot insert a document node")
        return rec

    def append_child(self, parent: int, child: int) -> None:
        """Attach parentless *child* as the last child of *parent*."""
        prec = self._check_can_parent(parent)
        crec = self._check_insertable(child)
        if crec.kind is NodeKind.ATTRIBUTE:
            raise UpdateApplicationError(
                "attribute nodes must be attached with set_attribute"
            )
        self._check_no_cycle(parent, child)
        if self._snapshots:
            self._cow(parent, child)
        prec.children.append(child)
        crec.parent = parent
        # Appending as last child shifts no existing sibling position, so
        # only the attached subtree's keys (cached under root == child,
        # since the child was parentless) go stale.
        self._touch(child)

    def insert_child_at(self, parent: int, index: int, child: int) -> None:
        """Attach parentless *child* at position *index* among children."""
        prec = self._check_can_parent(parent)
        crec = self._check_insertable(child)
        if crec.kind is NodeKind.ATTRIBUTE:
            raise UpdateApplicationError(
                "attribute nodes must be attached with set_attribute"
            )
        if not 0 <= index <= len(prec.children):
            raise UpdateApplicationError(
                f"insert position {index} out of range for node {parent}"
            )
        self._check_no_cycle(parent, child)
        if index == len(prec.children):
            # Equivalent to append: no sibling shifts.
            roots: tuple[int, ...] = (child,)
        else:
            # Inserting mid-list shifts every following sibling (and its
            # descendants), so the whole target tree goes stale too.
            roots = (self.root(parent), child)
        if self._snapshots:
            self._cow(parent, child)
        prec.children.insert(index, child)
        crec.parent = parent
        self._touch(*roots)

    def insert_after(self, parent: int, anchor: int, child: int) -> None:
        """Attach *child* immediately after sibling *anchor*.

        Precondition (paper Section 3.2): *anchor* must be a child of
        *parent*.
        """
        prec = self._check_can_parent(parent)
        try:
            idx = prec.children.index(anchor)
        except ValueError:
            raise UpdateApplicationError(
                f"anchor node {anchor} is not a child of {parent}"
            ) from None
        self.insert_child_at(parent, idx + 1, child)

    def insert_before(self, parent: int, anchor: int, child: int) -> None:
        """Attach *child* immediately before sibling *anchor*."""
        prec = self._check_can_parent(parent)
        try:
            idx = prec.children.index(anchor)
        except ValueError:
            raise UpdateApplicationError(
                f"anchor node {anchor} is not a child of {parent}"
            ) from None
        self.insert_child_at(parent, idx, child)

    def set_attribute(self, element: int, attr: int) -> None:
        """Attach parentless attribute node *attr* to *element*.

        Replaces any existing attribute with the same name (the replaced
        attribute is detached, per the detach philosophy).
        """
        erec = self._rec(element)
        if erec.kind is not NodeKind.ELEMENT:
            raise UpdateApplicationError("attributes can only go on elements")
        arec = self._rec(attr)
        if arec.kind is not NodeKind.ATTRIBUTE:
            raise UpdateApplicationError(f"node {attr} is not an attribute")
        if arec.parent is not None:
            raise UpdateApplicationError(
                f"attribute {attr} already belongs to element {arec.parent}"
            )
        existing = self.attribute_named(element, arec.name or "")
        if existing is not None:
            self.detach(existing)
        if self._snapshots:
            self._cow(element, attr)
        erec.attributes.append(attr)
        arec.parent = element
        # Appending to the attribute list shifts nothing; only the
        # (parentless) attribute's own cached key goes stale.
        self._touch(attr)

    def detach(self, nid: int) -> None:
        """Sever the parent link of *nid* (the paper's delete semantics).

        The node and its subtree stay live in the store and remain fully
        queryable through any variable still holding them (Section 3.1).
        Detaching an already-parentless node is a no-op, matching the
        tolerant reading of repeated deletes.
        """
        rec = self._rec(nid)
        parent = rec.parent
        if parent is None:
            return
        if self._obs is not None:
            self._obs.count("store.nodes_detached")
        # Removal shifts following siblings and reroots the detached
        # subtree, so the whole (pre-mutation) containing tree goes stale.
        tree_root = self.root(nid)
        if self._snapshots:
            self._cow(nid, parent)
        prec = self._rec(parent)
        if rec.kind is NodeKind.ATTRIBUTE:
            prec.attributes.remove(nid)
        else:
            prec.children.remove(nid)
        rec.parent = None
        self._touch(tree_root)

    def rename(self, nid: int, name: str) -> None:
        """Change the node name of an element, attribute or PI."""
        rec = self._rec(nid)
        if rec.kind not in (
            NodeKind.ELEMENT,
            NodeKind.ATTRIBUTE,
            NodeKind.PROCESSING_INSTRUCTION,
        ):
            raise UpdateApplicationError(
                f"cannot rename a {rec.kind.value} node"
            )
        if not name:
            raise UpdateApplicationError("new name must be non-empty")
        if self._snapshots:
            self._cow(nid)
        if rec.kind is NodeKind.ELEMENT and rec.name != name:
            self._name_index.get(rec.name, set()).discard(nid)
            self._name_index.setdefault(name, set()).add(nid)
        if self._indexes.built:
            self._indexes.on_rename(nid, rec, name)
        rec.name = name
        self._version += 1

    def set_value(self, nid: int, value: str) -> None:
        """Replace the content of a text/attribute/comment/PI node."""
        rec = self._rec(nid)
        if rec.kind not in _HAS_VALUE:
            raise UpdateApplicationError(
                f"cannot set the value of a {rec.kind.value} node"
            )
        if self._snapshots:
            self._cow(nid)
        if self._indexes.built:
            self._indexes.on_set_value(nid, rec, value)
        rec.value = value
        self._version += 1

    def _check_no_cycle(self, parent: int, child: int) -> None:
        # Inserting a node above itself would create a cycle.  Since the
        # inserted node must be parentless, a cycle can only arise if
        # `parent` is inside the subtree of `child`.
        cur: int | None = parent
        while cur is not None:
            if cur == child:
                raise UpdateApplicationError(
                    "insert would create a cycle (target is a descendant "
                    "of the inserted node)"
                )
            cur = self._rec(cur).parent

    # ------------------------------------------------------------------
    # Deep copy (the `copy { ... }` operator and the normalization rule)
    # ------------------------------------------------------------------

    def deep_copy(self, nid: int) -> int:
        """Copy the subtree rooted at *nid*; the copy is parentless.

        Implements the ``deepcopy(store, node)`` data-model operation of
        Fig. 2: new node ids are allocated for every node in the subtree.
        Iterative, so arbitrarily deep trees copy without hitting the
        Python recursion limit.
        """
        root_rec = self._rec(nid)
        root_copy = self._alloc(root_rec.kind, root_rec.name, root_rec.value)
        # Work stack of (source id, copied id) pairs whose attributes and
        # children still need copying.
        stack = [(nid, root_copy)]
        while stack:
            source, copied = stack.pop()
            source_rec = self._rec(source)
            copied_rec = self._rec(copied)
            for aid in source_rec.attributes:
                arec = self._rec(aid)
                acopy = self._alloc(arec.kind, arec.name, arec.value)
                self._rec(acopy).parent = copied
                copied_rec.attributes.append(acopy)
            for cid in source_rec.children:
                crec = self._rec(cid)
                ccopy = self._alloc(crec.kind, crec.name, crec.value)
                self._rec(ccopy).parent = copied
                copied_rec.children.append(ccopy)
                stack.append((cid, ccopy))
        return root_copy

    # ------------------------------------------------------------------
    # Garbage collection of unreachable detached trees
    # ------------------------------------------------------------------

    def gc(self, live_roots: Iterable[int]) -> int:
        """Drop every record not reachable from *live_roots*.

        The caller supplies the node ids still referenced from the outside
        (bound variables, documents).  Returns the number of reclaimed
        records.  This implements the "garbage collection of persistent but
        unreachable nodes" the paper mentions as a consequence of the detach
        semantics (Section 4.1).
        """
        reachable: set[int] = set()
        stack = [self.root(nid) for nid in live_roots if nid in self._records]
        while stack:
            cur = stack.pop()
            if cur in reachable:
                continue
            reachable.add(cur)
            rec = self._rec(cur)
            stack.extend(rec.children)
            stack.extend(rec.attributes)
        dead = [nid for nid in self._records if nid not in reachable]
        for nid in dead:
            rec = self._records[nid]
            if self._snapshots:
                self._cow(nid)
            if rec.kind is NodeKind.ELEMENT and rec.name:
                self._name_index.get(rec.name, set()).discard(nid)
            if self._indexes.built:
                self._indexes.on_free(nid, rec)
            del self._records[nid]
            key = self._order_cache.pop(nid, None)
            if key is not None:
                cached = self._cached_roots.get(key[0])
                if cached is not None:
                    cached.discard(nid)
                    if not cached:
                        del self._cached_roots[key[0]]
        return len(dead)

    # ------------------------------------------------------------------
    # Checkpoint / restore (failure atomicity for snap)
    # ------------------------------------------------------------------

    def checkpoint(self) -> "StoreCheckpoint":
        """Capture the full store state.

        Used to make update-list application *atomic*: the paper's full
        version proposes snap as a failure-containment boundary; with a
        checkpoint, a Δ that fails a precondition mid-application can be
        rolled back instead of leaving a partial store.
        """
        records = {
            nid: (
                rec.kind,
                rec.name,
                rec.parent,
                tuple(rec.children),
                tuple(rec.attributes),
                rec.value,
            )
            for nid, rec in self._records.items()
        }
        return StoreCheckpoint(records=records, next_id=self._next_id)

    def restore(self, checkpoint: "StoreCheckpoint") -> None:
        """Reset the store to a previously captured checkpoint."""
        # Rebinding ``_records`` freezes the old dict in place, which is
        # exactly what active snapshots captured — they need no further
        # copy-on-write pre-images (and must not receive pre-images from
        # the restored world), so detach them all.
        for snapshot in self._snapshots:
            snapshot._detached = True
        self._snapshots = []
        self._records = {}
        self._name_index = {}
        for nid, (kind, name, parent, children, attributes, value) in (
            checkpoint.records.items()
        ):
            rec = _NodeRecord(kind, name, value)
            rec.parent = parent
            rec.children = list(children)
            rec.attributes = list(attributes)
            self._records[nid] = rec
            if kind is NodeKind.ELEMENT and name:
                self._name_index.setdefault(name, set()).add(nid)
        self._reset_ids(checkpoint.next_id)
        self._touch()

    # ------------------------------------------------------------------
    # Introspection / debugging helpers
    # ------------------------------------------------------------------

    def node_ids(self) -> tuple[int, ...]:
        """All live node ids (mainly for tests and invariant checks)."""
        return tuple(self._records)

    def check_invariants(self) -> None:
        """Assert structural invariants; used by property-based tests.

        * every child's parent pointer names the node listing it,
        * no node is listed as a child twice,
        * attribute names are unique per element,
        * parent chains are acyclic,
        * every cached order key matches a fresh recomputation (the scoped
          invalidation of ``_touch`` never leaves a stale key behind).
        """
        seen_child_of: dict[int, int] = {}
        for nid, rec in self._records.items():
            for cid in rec.children:
                crec = self._rec(cid)
                if crec.parent != nid:
                    raise StoreError(
                        f"child {cid} of {nid} has parent {crec.parent}"
                    )
                if cid in seen_child_of:
                    raise StoreError(f"node {cid} has two parents")
                seen_child_of[cid] = nid
            names = [self._rec(aid).name for aid in rec.attributes]
            if len(names) != len(set(names)):
                raise StoreError(f"duplicate attribute names on {nid}")
            for aid in rec.attributes:
                if self._rec(aid).parent != nid:
                    raise StoreError(f"attribute {aid} parent mismatch")
        for nid in self._records:
            slow: int | None = nid
            seen: set[int] = set()
            while slow is not None:
                if slow in seen:
                    raise StoreError(f"parent cycle through {nid}")
                seen.add(slow)
                slow = self._rec(slow).parent
        # Name index: exactly the live elements, under their current name.
        indexed = {
            nid for ids in self._name_index.values() for nid in ids
        }
        elements = {
            nid
            for nid, rec in self._records.items()
            if rec.kind is NodeKind.ELEMENT
        }
        if indexed != elements:
            raise StoreError(
                "name index out of sync: "
                f"{sorted(indexed ^ elements)} differ"
            )
        for name, ids in self._name_index.items():
            for nid in ids:
                if self._rec(nid).name != name:
                    raise StoreError(
                        f"node {nid} indexed under {name!r} but named "
                        f"{self._rec(nid).name!r}"
                    )
        # Value indexes: when built, the incrementally maintained postings
        # must agree exactly with a from-scratch rebuild.
        self._indexes.verify()
        # Order cache: no stale keys, and the root index mirrors the cache.
        for nid, key in self._order_cache.items():
            if nid not in self._records:
                raise StoreError(f"order key cached for dead node {nid}")
            if key != self._fresh_order_key(nid):
                raise StoreError(
                    f"stale cached order key for node {nid}: {key} != "
                    f"{self._fresh_order_key(nid)}"
                )
            if nid not in self._cached_roots.get(key[0], ()):
                raise StoreError(
                    f"cached order key for {nid} missing from the root "
                    f"index under {key[0]}"
                )
        for root, nids in self._cached_roots.items():
            for nid in nids:
                cached = self._order_cache.get(nid)
                if cached is None or cached[0] != root:
                    raise StoreError(
                        f"root index lists {nid} under {root} but the "
                        f"cache has {cached}"
                    )

    def _fresh_order_key(self, nid: int) -> tuple:
        """Recompute a node's order key without the cache (verification)."""
        parts: list[tuple[int, int]] = []
        cur = nid
        while True:
            rec = self._rec(cur)
            parent = rec.parent
            if parent is None:
                return (cur, tuple(reversed(parts)))
            prec = self._rec(parent)
            if rec.kind is NodeKind.ATTRIBUTE:
                parts.append((-1, prec.attributes.index(cur)))
            else:
                parts.append((0, prec.children.index(cur)))
            cur = parent
