"""Node handles: the user-facing view of store nodes.

A :class:`Node` is a lightweight, hashable handle pairing a
:class:`~repro.xdm.store.Store` with a node id.  Node identity (the ``is``
operator of XQuery) is identity of the ``(store, id)`` pair.  All structural
accessors delegate to the store, so handles always observe the *current*
state — exactly the behaviour the paper's compositional updates require.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.xdm.store import NodeKind, Store


class Node:
    """Handle to a node in a :class:`Store`."""

    __slots__ = ("store", "nid")

    def __init__(self, store: Store, nid: int):
        self.store = store
        self.nid = nid

    # -- identity ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Node)
            and other.store is self.store
            and other.nid == self.nid
        )

    def __hash__(self) -> int:
        return hash((id(self.store), self.nid))

    def __repr__(self) -> str:
        name = self.name
        label = f" {name}" if name else ""
        return f"<Node {self.kind.value}{label} #{self.nid}>"

    # -- accessors -----------------------------------------------------

    @property
    def kind(self) -> NodeKind:
        """The XDM node kind."""
        return self.store.kind(self.nid)

    @property
    def name(self) -> str | None:
        """Element/attribute name or PI target; None for other kinds."""
        return self.store.name(self.nid)

    @property
    def parent(self) -> Node | None:
        """The parent node, or None when detached / a root."""
        pid = self.store.parent(self.nid)
        return None if pid is None else Node(self.store, pid)

    @property
    def children(self) -> list[Node]:
        """Child nodes in document order."""
        return [Node(self.store, c) for c in self.store.children(self.nid)]

    @property
    def attributes(self) -> list[Node]:
        """Attribute nodes of an element (empty for other kinds)."""
        return [Node(self.store, a) for a in self.store.attributes(self.nid)]

    @property
    def string_value(self) -> str:
        """The XDM string-value accessor."""
        return self.store.string_value(self.nid)

    @property
    def root(self) -> Node:
        """The root of the tree currently containing this node."""
        return Node(self.store, self.store.root(self.nid))

    def attribute(self, name: str) -> Node | None:
        """The attribute named *name*, or None."""
        aid = self.store.attribute_named(self.nid, name)
        return None if aid is None else Node(self.store, aid)

    def descendants(self, include_self: bool = False) -> Iterator[Node]:
        """Descendant nodes in document order (attributes excluded)."""
        for nid in self.store.descendants(self.nid, include_self):
            yield Node(self.store, nid)

    def ancestors(self, include_self: bool = False) -> Iterator[Node]:
        """Ancestor nodes, nearest first."""
        for nid in self.store.ancestors(self.nid, include_self):
            yield Node(self.store, nid)

    def element_children(self, name: str | None = None) -> list[Node]:
        """Child elements, optionally filtered by name."""
        out = []
        for child in self.children:
            if child.kind is NodeKind.ELEMENT and (
                name is None or child.name == name
            ):
                out.append(child)
        return out

    def deep_copy(self) -> Node:
        """A parentless deep copy of this node (new node ids throughout)."""
        return Node(self.store, self.store.deep_copy(self.nid))

    def is_ancestor_of(self, other: Node) -> bool:
        """True if this node is a (proper) ancestor of *other*."""
        if other.store is not self.store:
            return False
        for anc in self.store.ancestors(other.nid):
            if anc == self.nid:
                return True
        return False
