"""Comparison semantics: value comparisons, general comparisons and
fn:deep-equal, plus document-order utilities.

These implement the XQuery 1.0 rules the paper's example programs rely on
(e.g. the join predicate ``$t/buyer/@person = $p/@id`` is a *general*
comparison between attribute nodes, which atomizes both sides to
xs:untypedAtomic and compares them as strings).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.errors import TypeError_
from repro.xdm.nodes import Node
from repro.xdm.store import NodeKind
from repro.xdm.values import (
    XS_BOOLEAN,
    XS_STRING,
    XS_UNTYPED,
    AtomicValue,
    Item,
    Sequence,
    atomize,
    is_numeric,
)

_OPS = {
    "eq": lambda c: c == 0,
    "ne": lambda c: c != 0,
    "lt": lambda c: c < 0,
    "le": lambda c: c <= 0,
    "gt": lambda c: c > 0,
    "ge": lambda c: c >= 0,
}


def _coerce_pair(a: AtomicValue, b: AtomicValue) -> tuple:
    """Coerce two atomics to comparable Python values per the general
    comparison casting rules; returns ``(x, y)`` ready for ``<``/``==``."""
    ta, tb = a.type, b.type
    if ta == XS_UNTYPED and tb == XS_UNTYPED:
        return a.value, b.value
    if ta == XS_UNTYPED:
        if is_numeric(b):
            try:
                return float(a.value), float(b.value)
            except ValueError:
                raise TypeError_(
                    f"cannot cast {a.value!r} to xs:double for comparison"
                ) from None
        if tb == XS_BOOLEAN:
            return _parse_boolean(a.value), b.value
        return a.value, str(b.value)
    if tb == XS_UNTYPED:
        y, x = _coerce_pair(b, a)
        return x, y
    if is_numeric(a) and is_numeric(b):
        va, vb = a.value, b.value
        if isinstance(va, float) or isinstance(vb, float):
            return float(va), float(vb)
        # int / Decimal mixes compare exactly in Python.
        return va, vb
    if ta == tb:
        return a.value, b.value
    if {ta, tb} == {XS_STRING, XS_UNTYPED}:
        return str(a.value), str(b.value)
    raise TypeError_(f"cannot compare {ta} with {tb}")


def _parse_boolean(text: str) -> bool:
    t = text.strip()
    if t in ("true", "1"):
        return True
    if t in ("false", "0"):
        return False
    raise TypeError_(f"cannot cast {text!r} to xs:boolean")


def compare_atomic(a: AtomicValue, b: AtomicValue) -> int:
    """Three-way comparison of two atomic values after coercion."""
    x, y = _coerce_pair(a, b)
    if isinstance(x, float) and math.isnan(x):
        raise TypeError_("NaN is not comparable")
    if isinstance(y, float) and math.isnan(y):
        raise TypeError_("NaN is not comparable")
    if x == y:
        return 0
    try:
        return -1 if x < y else 1
    except TypeError:
        raise TypeError_(
            f"cannot order {type(x).__name__} against {type(y).__name__}"
        ) from None


def atomic_equal(a: AtomicValue, b: AtomicValue) -> bool:
    """Equality under general-comparison coercion; NaN equals nothing."""
    x, y = _coerce_pair(a, b)
    if isinstance(x, float) and math.isnan(x):
        return False
    if isinstance(y, float) and math.isnan(y):
        return False
    return x == y


def value_compare(op: str, left: Sequence, right: Sequence) -> Sequence:
    """Value comparison (eq, ne, lt, le, gt, ge).

    Empty operand propagates to the empty sequence; both operands must
    atomize to single values.
    """
    la = atomize(left)
    ra = atomize(right)
    if not la or not ra:
        return []
    if len(la) != 1 or len(ra) != 1:
        raise TypeError_(f"value comparison {op} requires singleton operands")
    if op in ("eq", "ne"):
        eq = atomic_equal(la[0], ra[0])
        return [AtomicValue.boolean(eq if op == "eq" else not eq)]
    c = compare_atomic(la[0], ra[0])
    return [AtomicValue.boolean(_OPS[op](c))]


def general_compare(op: str, left: Sequence, right: Sequence) -> bool:
    """General comparison (=, !=, <, <=, >, >=): existential semantics.

    True iff some pair of atomized items satisfies the corresponding value
    comparison.
    """
    la = atomize(left)
    ra = atomize(right)
    if op in ("eq", "ne"):
        for a in la:
            for b in ra:
                eq = atomic_equal(a, b)
                if (op == "eq" and eq) or (op == "ne" and not eq):
                    return True
        return False
    test = _OPS[op]
    for a in la:
        for b in ra:
            if test(compare_atomic(a, b)):
                return True
    return False


def deep_equal(left: Sequence, right: Sequence) -> bool:
    """fn:deep-equal over two sequences."""
    if len(left) != len(right):
        return False
    return all(_deep_equal_item(a, b) for a, b in zip(left, right))


def _deep_equal_item(a: Item, b: Item) -> bool:
    if isinstance(a, Node) != isinstance(b, Node):
        return False
    if isinstance(a, AtomicValue):
        try:
            return atomic_equal(a, b)  # type: ignore[arg-type]
        except TypeError_:
            return False
    return _deep_equal_node(a, b)  # type: ignore[arg-type]


def _deep_equal_node(a: Node, b: Node) -> bool:
    if a.kind is not b.kind:
        return False
    if a.kind in (NodeKind.TEXT, NodeKind.COMMENT):
        return a.string_value == b.string_value
    if a.kind in (NodeKind.ATTRIBUTE, NodeKind.PROCESSING_INSTRUCTION):
        return a.name == b.name and a.string_value == b.string_value
    if a.kind is NodeKind.ELEMENT and a.name != b.name:
        return False
    a_attrs = {attr.name: attr.string_value for attr in a.attributes}
    b_attrs = {attr.name: attr.string_value for attr in b.attributes}
    if a_attrs != b_attrs:
        return False
    a_kids = _comparable_children(a)
    b_kids = _comparable_children(b)
    if len(a_kids) != len(b_kids):
        return False
    for x, y in zip(a_kids, b_kids):
        if isinstance(x, str) or isinstance(y, str):
            if x != y:
                return False
        elif not _deep_equal_node(x, y):
            return False
    return True


def _comparable_children(node: Node) -> list:
    """Children relevant to deep-equal: comments/PIs dropped, runs of
    adjacent text nodes merged into one string (the XDM never distinguishes
    a text run from its concatenation)."""
    out: list = []
    pending_text: list[str] = []
    for child in node.children:
        if child.kind is NodeKind.TEXT:
            pending_text.append(child.string_value)
            continue
        if pending_text:
            out.append("".join(pending_text))
            pending_text = []
        if child.kind in (NodeKind.COMMENT, NodeKind.PROCESSING_INSTRUCTION):
            continue
        out.append(child)
    if pending_text:
        out.append("".join(pending_text))
    return out


def nodes_in_document_order(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes into document order with duplicate elimination.

    Used to deliver path-expression results per the XPath semantics.  All
    nodes must belong to the same store.
    """
    nodes = list(nodes)
    if not nodes:
        return []
    store = nodes[0].store
    for n in nodes:
        if n.store is not store:
            raise TypeError_("cannot order nodes from different stores")
    nids = store.sort_document_order(n.nid for n in nodes)
    return [Node(store, nid) for nid in nids]
