"""XDM (XQuery Data Model) layer: the node store, node handles, atomic
values and comparison semantics.

The paper (Section 3.2) models the state of an XQuery! computation as a
*store* mapping each node id to its kind, parent, name and content.  This
package implements that store plus the accessors/constructors the dynamic
semantics needs, the value universe (nodes + atomic values), and the
comparison operators of XQuery 1.0 that the use cases exercise.
"""

from repro.xdm.store import NodeKind, Store
from repro.xdm.nodes import Node
from repro.xdm.values import (
    AtomicValue,
    UntypedAtomic,
    QName,
    atomize,
    atomize_item,
    effective_boolean_value,
    sequence_string,
    singleton,
)
from repro.xdm.compare import (
    value_compare,
    general_compare,
    deep_equal,
    nodes_in_document_order,
)

__all__ = [
    "NodeKind",
    "Store",
    "Node",
    "AtomicValue",
    "UntypedAtomic",
    "QName",
    "atomize",
    "atomize_item",
    "effective_boolean_value",
    "sequence_string",
    "singleton",
    "value_compare",
    "general_compare",
    "deep_equal",
    "nodes_in_document_order",
]
