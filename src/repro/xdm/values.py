"""Atomic values and sequence helpers of the XDM.

The value space of the engine is: an *item* is either a
:class:`~repro.xdm.nodes.Node` or an :class:`AtomicValue`; a *value* (in the
sense of the paper's judgment ``Expr => value``) is a Python list of items.

The paper focuses on well-formed documents and "does not consider the impact
of types" (Section 3.2), so we implement the small dynamic-type universe that
XQuery 1.0 needs operationally: integer, decimal, double, string, boolean,
untypedAtomic and QName, with the standard promotion and casting rules used
by arithmetic and comparisons.
"""

from __future__ import annotations

import math
from decimal import Decimal
from typing import Any, Union

from repro.errors import AtomizationError, CardinalityError, TypeError_
from repro.xdm.nodes import Node

# Dynamic type names.  Kept as plain strings: they are compared often and
# rendered in error messages verbatim.
XS_INTEGER = "xs:integer"
XS_DECIMAL = "xs:decimal"
XS_DOUBLE = "xs:double"
XS_STRING = "xs:string"
XS_BOOLEAN = "xs:boolean"
XS_UNTYPED = "xs:untypedAtomic"
XS_QNAME = "xs:QName"

_NUMERIC_TYPES = (XS_INTEGER, XS_DECIMAL, XS_DOUBLE)


class AtomicValue:
    """A typed atomic value.

    ``value`` holds the natural Python representation: ``int`` for
    xs:integer, :class:`decimal.Decimal` for xs:decimal (exact, as the
    XML Schema type requires), ``float`` for xs:double, ``str`` for
    xs:string / xs:untypedAtomic, ``bool`` for xs:boolean and
    :class:`QName` for xs:QName.
    """

    __slots__ = ("type", "value")

    def __init__(self, type_: str, value: Any):
        self.type = type_
        self.value = value

    def __repr__(self) -> str:
        return f"AtomicValue({self.type}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AtomicValue)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))

    # -- convenience constructors --------------------------------------

    @staticmethod
    def integer(v: int) -> "AtomicValue":
        return AtomicValue(XS_INTEGER, int(v))

    @staticmethod
    def decimal(v) -> "AtomicValue":
        """xs:decimal from an int/str/Decimal, or (exactly) from a float's
        shortest decimal representation."""
        if isinstance(v, Decimal):
            return AtomicValue(XS_DECIMAL, v)
        if isinstance(v, float):
            return AtomicValue(XS_DECIMAL, Decimal(repr(v)))
        return AtomicValue(XS_DECIMAL, Decimal(v))

    @staticmethod
    def double(v: float) -> "AtomicValue":
        return AtomicValue(XS_DOUBLE, float(v))

    @staticmethod
    def string(v: str) -> "AtomicValue":
        return AtomicValue(XS_STRING, str(v))

    @staticmethod
    def boolean(v: bool) -> "AtomicValue":
        return AtomicValue(XS_BOOLEAN, bool(v))

    @staticmethod
    def untyped(v: str) -> "AtomicValue":
        return AtomicValue(XS_UNTYPED, str(v))

    # -- rendering ------------------------------------------------------

    def lexical(self) -> str:
        """The canonical lexical (string) form of this value."""
        if self.type == XS_BOOLEAN:
            return "true" if self.value else "false"
        if self.type == XS_DECIMAL:
            text = format(self.value, "f")
            if "." in text:
                text = text.rstrip("0").rstrip(".")
            return text or "0"
        if self.type == XS_DOUBLE:
            f = float(self.value)
            if math.isnan(f):
                return "NaN"
            if math.isinf(f):
                return "INF" if f > 0 else "-INF"
            if f == int(f) and abs(f) < 1e16:
                return str(int(f))
            return repr(f)
        return str(self.value)


class UntypedAtomic(AtomicValue):
    """Shorthand subclass for xs:untypedAtomic (the type of node data)."""

    __slots__ = ()

    def __init__(self, value: str):
        super().__init__(XS_UNTYPED, str(value))


class QName:
    """A qualified name.  Namespace handling is prefix pass-through: the
    engine treats ``prefix:local`` lexically, as the paper's examples do."""

    __slots__ = ("prefix", "local")

    def __init__(self, local: str, prefix: str | None = None):
        self.prefix = prefix
        self.local = local

    def __str__(self) -> str:
        return f"{self.prefix}:{self.local}" if self.prefix else self.local

    def __repr__(self) -> str:
        return f"QName({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QName)
            and other.prefix == self.prefix
            and other.local == self.local
        )

    def __hash__(self) -> int:
        return hash((self.prefix, self.local))

    @staticmethod
    def parse(text: str) -> "QName":
        if ":" in text:
            prefix, local = text.split(":", 1)
            return QName(local, prefix)
        return QName(text)


Item = Union[Node, AtomicValue]
Sequence = list  # list[Item]


# ----------------------------------------------------------------------
# Atomization (fn:data)
# ----------------------------------------------------------------------

def atomize_item(item: Item) -> AtomicValue:
    """Atomize a single item: nodes yield their typed value, which in an
    untyped (schemaless) store is ``xs:untypedAtomic(string-value)``."""
    if isinstance(item, Node):
        return UntypedAtomic(item.string_value)
    return item


def atomize(seq: Sequence) -> list[AtomicValue]:
    """Atomize a sequence item-wise (fn:data)."""
    return [atomize_item(item) for item in seq]


def atomize_single(seq: Sequence, what: str = "operand") -> AtomicValue:
    """Atomize a sequence required to contain exactly one item."""
    if len(seq) != 1:
        raise AtomizationError(
            f"{what} must atomize to exactly one value, got {len(seq)} items"
        )
    return atomize_item(seq[0])


def atomize_optional(seq: Sequence, what: str = "operand") -> AtomicValue | None:
    """Atomize a sequence of zero or one items."""
    if not seq:
        return None
    if len(seq) != 1:
        raise AtomizationError(
            f"{what} must atomize to at most one value, got {len(seq)} items"
        )
    return atomize_item(seq[0])


def singleton(seq: Sequence, what: str = "expression") -> Item:
    """Require and return the only item of *seq*."""
    if len(seq) != 1:
        raise CardinalityError(
            f"{what} must evaluate to exactly one item, got {len(seq)}"
        )
    return seq[0]


def single_node(seq: Sequence, what: str = "expression") -> Node:
    """Require and return the only item of *seq*, which must be a node.

    This realizes the metavariable constraints of the semantics figures
    ("the judgment can only be applied if Expr evaluates to ... a node").
    """
    item = singleton(seq, what)
    if not isinstance(item, Node):
        raise TypeError_(f"{what} must evaluate to a node, got {item!r}")
    return item


def node_sequence(seq: Sequence, what: str = "expression") -> list[Node]:
    """Require every item of *seq* to be a node."""
    for item in seq:
        if not isinstance(item, Node):
            raise TypeError_(
                f"{what} must evaluate to a sequence of nodes, got {item!r}"
            )
    return list(seq)


# ----------------------------------------------------------------------
# Effective boolean value (fn:boolean)
# ----------------------------------------------------------------------

def effective_boolean_value(seq: Sequence) -> bool:
    """XQuery 1.0 effective boolean value rules."""
    if not seq:
        return False
    first = seq[0]
    if isinstance(first, Node):
        return True
    if len(seq) > 1:
        raise TypeError_(
            "effective boolean value of a multi-item atomic sequence"
        )
    if first.type == XS_BOOLEAN:
        return bool(first.value)
    if first.type in (XS_STRING, XS_UNTYPED):
        return len(first.value) > 0
    if first.type in _NUMERIC_TYPES:
        v = first.value
        return not (v == 0 or (isinstance(v, float) and math.isnan(v)))
    raise TypeError_(f"no effective boolean value for {first.type}")


# ----------------------------------------------------------------------
# String rendering of sequences
# ----------------------------------------------------------------------

def item_string(item: Item) -> str:
    """fn:string of a single item."""
    if isinstance(item, Node):
        return item.string_value
    return item.lexical()


def sequence_string(seq: Sequence) -> str:
    """Space-joined string of the atomized sequence (attribute-content and
    text-content rendering used by constructors)."""
    return " ".join(av.lexical() for av in atomize(seq))


# ----------------------------------------------------------------------
# Numeric casting / promotion
# ----------------------------------------------------------------------

def cast_to_number(av: AtomicValue) -> AtomicValue:
    """Cast an atomic value to a numeric type (untyped -> double)."""
    if av.type in _NUMERIC_TYPES:
        return av
    if av.type in (XS_UNTYPED, XS_STRING):
        text = av.value.strip()
        try:
            if text and all(c in "+-0123456789" for c in text):
                return AtomicValue.integer(int(text))
            return AtomicValue.double(float(text))
        except ValueError:
            if av.type == XS_UNTYPED:
                return AtomicValue.double(float("nan"))
            raise TypeError_(f"cannot cast {text!r} to a number") from None
    if av.type == XS_BOOLEAN:
        return AtomicValue.integer(1 if av.value else 0)
    raise TypeError_(f"cannot cast {av.type} to a number")


def is_numeric(av: AtomicValue) -> bool:
    """True when the value already has a numeric dynamic type."""
    return av.type in _NUMERIC_TYPES


def promote_pair(a: AtomicValue, b: AtomicValue) -> tuple[AtomicValue, AtomicValue, str]:
    """Promote two numerics to their least common type.

    Returns ``(a', b', type)`` where *type* is the promoted type name.
    """
    order = {XS_INTEGER: 0, XS_DECIMAL: 1, XS_DOUBLE: 2}
    target = max(a.type, b.type, key=lambda t: order[t])
    return a, b, target
