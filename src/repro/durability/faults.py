"""Fault injection for the durability subsystem.

Crash-safety claims are only as good as the crashes they were tested
against.  This module gives the test suite a way to *schedule* failures
at the exact points where the journal/checkpoint protocol is vulnerable:

* ``CRASH_BEFORE_FSYNC`` — the process dies mid-append: only a prefix of
  the record's bytes reach the file (a torn write).  Recovery must
  truncate the tail and come back *without* that snap.
* ``CRASH_AFTER_JOURNAL`` — the process dies right after the record is
  appended and fsynced, before the caller sees the acknowledgement.
  Recovery must come back *with* that snap (it is durable).
* ``CRASH_MID_CHECKPOINT`` — the process dies during compaction, after
  the new checkpoint file is written but before the manifest points at
  it.  Recovery must keep using the old checkpoint + journal pair.
* ``EIO_ON_WRITE`` — the journal append fails with ``OSError`` (disk
  full, I/O error) but the process survives.  The engine must report a
  typed :class:`~repro.errors.DurabilityError` and, under
  ``atomic_snaps``, roll the in-memory store back so memory never runs
  ahead of disk.

Beyond the crash points, the chaos harness (:mod:`repro.resilience.chaos`)
uses *delay points* — places where the injector stalls the caller instead
of killing it, modelling a saturating device rather than a dying one:

* ``SLOW_FSYNC`` — every journal fsync sleeps for the armed duration
  (a congested or failing disk: commits still succeed, slowly).
* ``LOCK_STALL`` — a cooperating harness thread holds the store write
  lock for the armed duration (writer convoy / stop-the-world pause).

Injected crashes raise :class:`InjectedCrash`, which derives from
``BaseException`` (like ``KeyboardInterrupt``) so no recovery-relevant
``except Exception`` handler can swallow it — exactly how a real
``kill -9`` is invisible to in-process handlers.
"""

from __future__ import annotations

import errno
import time
from typing import Any

CRASH_BEFORE_FSYNC = "crash-before-fsync"
CRASH_AFTER_JOURNAL = "crash-after-journal"
CRASH_MID_CHECKPOINT = "crash-mid-checkpoint"
EIO_ON_WRITE = "eio-on-write"

SLOW_FSYNC = "slow-fsync"
LOCK_STALL = "lock-stall"

#: Every crash point the fault-injection tests must cover.
ALL_CRASH_POINTS = (
    CRASH_BEFORE_FSYNC,
    CRASH_AFTER_JOURNAL,
    CRASH_MID_CHECKPOINT,
    EIO_ON_WRITE,
)

#: A replica process dying mid-catch-up-replay (repro.cluster).  Kept
#: out of ALL_CRASH_POINTS: the single-process durable-engine crash
#: matrix never reaches a replica apply loop, so parametrizing it there
#: would arm a point that cannot fire.
CRASH_MID_REPLAY = "crash-mid-replay"

#: Points that stall the caller instead of killing it (chaos harness).
ALL_DELAY_POINTS = (
    SLOW_FSYNC,
    LOCK_STALL,
)


class InjectedCrash(BaseException):
    """A simulated process death at a registered crash point."""

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"injected crash at {point}")


class FaultInjector:
    """Arms crash points with countdowns.

    ``arm(point, after=n)`` makes the *n*-th subsequent hit of *point*
    fire (``after=1`` fires on the next hit).  Unarmed points never
    fire, so production code can call :meth:`hit` unconditionally with a
    ``None`` injector guard.
    """

    def __init__(self, sleep: Any | None = None) -> None:
        self._armed: dict[str, int] = {}
        self._persistent: set[str] = set()
        self._delays: dict[str, float] = {}
        self.fired: list[str] = []
        self.delayed: list[str] = []
        # The stall primitive for delay points.  Injectable so the
        # deterministic simulator can advance virtual time instead of
        # blocking the whole single-process cluster on a real sleep.
        self._sleep = sleep if sleep is not None else time.sleep

    def arm(self, point: str, after: int = 1, persistent: bool = False) -> None:
        """Arm *point*; with ``persistent=True`` it fires on *every* hit
        from the *after*-th on (until disarmed) instead of once — the
        chaos harness uses this for airtight fault windows.  Only the
        survivable ``EIO_ON_WRITE`` may be persistent: a crash point
        that fires ends the simulated process, so re-firing it is
        meaningless."""
        if point not in ALL_CRASH_POINTS and point != CRASH_MID_REPLAY:
            raise ValueError(f"unknown crash point {point!r}")
        if after < 1:
            raise ValueError("after must be >= 1")
        if persistent and point != EIO_ON_WRITE:
            raise ValueError("only eio-on-write may be armed persistently")
        self._armed[point] = after
        if persistent:
            self._persistent.add(point)
        else:
            self._persistent.discard(point)

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)
        self._persistent.discard(point)

    def arm_delay(self, point: str, seconds: float) -> None:
        """Arm a delay point: every subsequent :meth:`delay` hit of
        *point* sleeps for *seconds* until :meth:`disarm_delay`."""
        if point not in ALL_DELAY_POINTS:
            raise ValueError(f"unknown delay point {point!r}")
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self._delays[point] = seconds

    def disarm_delay(self, point: str) -> None:
        self._delays.pop(point, None)

    def delay_of(self, point: str) -> float:
        """The armed delay for *point* in seconds (0.0 when unarmed)."""
        return self._delays.get(point, 0.0)

    def delay(self, point: str) -> None:
        """Stall the caller at *point* when a delay is armed there."""
        seconds = self._delays.get(point)
        if not seconds:
            return
        self.delayed.append(point)
        self._sleep(seconds)

    def will_fire(self, point: str) -> bool:
        """True when the next :meth:`hit` of *point* will fire."""
        return self._armed.get(point) == 1

    def hit(self, point: str) -> None:
        """Fire the fault armed at *point*, if its countdown reaches 0.

        ``EIO_ON_WRITE`` raises ``OSError(EIO)`` (survivable); the crash
        points raise :class:`InjectedCrash` (simulated process death).
        """
        remaining = self._armed.get(point)
        if remaining is None:
            return
        if remaining > 1:
            self._armed[point] = remaining - 1
            return
        if point not in self._persistent:
            del self._armed[point]
        self.fired.append(point)
        if point == EIO_ON_WRITE:
            raise OSError(errno.EIO, "injected I/O error")
        raise InjectedCrash(point)


class FaultyFile:
    """A file-object wrapper that fails after a byte budget.

    Wraps a binary file handle and raises ``OSError(EIO)`` once
    *fail_after_bytes* have been written (mid-write failures truncate
    the write at the budget first, modelling a partially persisted
    buffer).  Used by write-layer tests; the engine-level crash points
    above are driven by :class:`FaultInjector` instead.
    """

    def __init__(self, handle: Any, fail_after_bytes: int):
        self._handle = handle
        self._budget = fail_after_bytes

    def write(self, data: bytes) -> int:
        if self._budget <= 0:
            raise OSError(errno.EIO, "injected I/O error (budget exhausted)")
        if len(data) > self._budget:
            self._handle.write(data[: self._budget])
            self._budget = 0
            raise OSError(errno.EIO, "injected I/O error (short write)")
        self._budget -= len(data)
        return self._handle.write(data)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._handle, name)
