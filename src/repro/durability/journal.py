"""The snap-level write-ahead journal.

The paper makes ``snap`` the unit of atomicity (Section 2.3: "the log
insert and the rollover must be applied together"); this module makes it
the unit of *durability* too.  Every update-list application — one per
snap closure, nested snaps included — appends exactly one journal record
before the mutation is acknowledged to the caller, so a process crash
loses at most the snaps whose acknowledgement the caller never saw, and
never a fraction of one.

Commit protocol (one snap)::

    build entry           # resolved ops + payload subtrees, pre-apply
    apply Δ to the store  # in memory; a precondition failure discards
                          # the entry — a failed snap journals nothing
    append frame + fsync  # the *only* durability point
    acknowledge

The in-memory store is volatile, so applying before appending cannot
expose a committed-but-unjournaled snap to a recovering process: a crash
between the two simply loses an unacknowledged snap, keeping recovery's
contract — the recovered store equals a *prefix* of the acknowledged
snaps (plus possibly the final in-flight one when the crash landed after
the fsync).

File format::

    repro-xquerybang-wal v1\\n      file header (magic line)
    [frame]*                        frames, back to back

    frame := header(16 bytes) + payload
    header := little-endian u32 x 4:
        FRAME_MAGIC, payload length, CRC32(payload),
        CRC32(first 12 header bytes)
    payload := UTF-8 JSON {"seq", "pre", "post", "sem", "ops", "nodes"}

* ``seq`` — strictly contiguous record counter, continuing across
  journal rotations (the manifest stores the last sequence compacted
  into the checkpoint, so recovery can verify no record went missing).
* ``pre``/``post`` — the store's id watermark before/after application.
  Replay re-seeds allocation at ``pre`` (some primitives allocate at
  application time) and verifies it lands on ``post``; a mismatch means
  the journal and checkpoint disagree and recovery refuses to guess.
* ``ops`` — the update requests in their *applied* order (after
  conflict checking and any nondeterministic permutation), with node
  ids resolved.
* ``nodes`` — persist-style rows for every constructed subtree the ops
  reference (inserted payloads, targets outside the checkpointed
  world), captured pre-apply so replay can materialize them.

The header CRC makes torn-tail detection unambiguous: a crash mid-append
leaves a *prefix* of a frame (short header, or short/garbled payload
ending exactly at EOF) which recovery truncates; damage anywhere else
cannot be explained by a torn append and raises
:class:`~repro.errors.JournalCorruptionError`.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any
from zlib import crc32

from repro.errors import JournalCorruptionError
from repro.semantics.update import (
    ApplySemantics,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    SetValueRequest,
)
from repro.xdm.store import NodeKind, Store

from repro.durability.faults import (
    CRASH_AFTER_JOURNAL,
    CRASH_BEFORE_FSYNC,
    EIO_ON_WRITE,
    SLOW_FSYNC,
    FaultInjector,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.update import UpdateRequest

FILE_MAGIC = b"repro-xquerybang-wal v1\n"
FRAME_MAGIC = 0x4C415752  # "RWAL", little endian
_HEADER = struct.Struct("<IIII")
HEADER_SIZE = _HEADER.size

FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_NEVER = "never"
_FSYNC_MODES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_NEVER)


def fsync_directory(path: str) -> None:
    """fsync a directory so a rename/create inside it is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Request (de)serialization
# ---------------------------------------------------------------------------


def encode_request(request: "UpdateRequest") -> tuple[dict, list[int]]:
    """Encode a request as a JSON-able op plus the node ids it references."""
    if isinstance(request, InsertRequest):
        op = {
            "op": "insert",
            "nodes": list(request.nodes),
            "position": request.position,
            "target": request.target,
        }
        return op, [*request.nodes, request.target]
    if isinstance(request, DeleteRequest):
        return {"op": "delete", "node": request.node}, [request.node]
    if isinstance(request, RenameRequest):
        op = {"op": "rename", "node": request.node, "name": request.name}
        return op, [request.node]
    if isinstance(request, SetValueRequest):
        op = {"op": "set-value", "node": request.node, "text": request.text}
        return op, [request.node]
    raise TypeError(f"cannot journal request {request!r}")


def decode_request(op: dict) -> "UpdateRequest":
    """Rebuild an update request from its journaled op (replay)."""
    try:
        kind = op["op"]
        if kind == "insert":
            return InsertRequest(
                nodes=tuple(op["nodes"]),
                position=op["position"],
                target=op["target"],
            )
        if kind == "delete":
            return DeleteRequest(node=op["node"])
        if kind == "rename":
            return RenameRequest(node=op["node"], name=op["name"])
        if kind == "set-value":
            return SetValueRequest(node=op["node"], text=op["text"])
    except (KeyError, TypeError) as exc:
        raise JournalCorruptionError(
            f"malformed journaled op {op!r}: {exc}"
        ) from exc
    raise JournalCorruptionError(f"unknown journaled op kind {op!r}")


def _subtree_rows(store: Store, root: int) -> list[list]:
    """Persist-style rows for the whole subtree rooted at *root*."""
    rows: list[list] = []
    stack = [root]
    records = store._records
    while stack:
        nid = stack.pop()
        rec = records[nid]
        rows.append(
            [
                nid,
                rec.kind.value,
                rec.name,
                rec.parent,
                list(rec.children),
                list(rec.attributes),
                rec.value,
            ]
        )
        stack.extend(rec.attributes)
        stack.extend(rec.children)
    return rows


def materialize_rows(store: Store, rows: list) -> int:
    """Install journaled node rows that are not in the store yet (replay).

    Rows for ids the store already holds are skipped: a node's links only
    ever change through journaled update primitives, so an existing
    record is already at the state the row captured.  Returns the number
    of records created.
    """
    from repro.xdm.store import _NodeRecord

    created = 0
    for nid, kind, name, parent, children, attributes, value in rows:
        if nid in store._records:
            continue
        record = _NodeRecord(NodeKind(kind), name, value)
        record.parent = parent
        record.children = list(children)
        record.attributes = list(attributes)
        store._records[nid] = record
        if record.kind is NodeKind.ELEMENT and name:
            store._name_index.setdefault(name, set()).add(nid)
        created += 1
    if created:
        store._touch()
    return created


# ---------------------------------------------------------------------------
# Journal scanning (shared by recovery and reopen)
# ---------------------------------------------------------------------------


@dataclass
class ScanResult:
    """The readable content of a journal file."""

    records: list[dict]
    good_offset: int  # file offset just past the last intact frame
    torn_bytes: int  # bytes after good_offset (partial final frame)
    # File offset where records[i] starts.  Recovery uses this to cut an
    # unterminated commit group back out of the file (group atomicity:
    # a crash mid-group must lose the *whole* group).
    offsets: list[int] = field(default_factory=list)


def scan_journal(path: str, *, from_offset: int = 0) -> ScanResult:
    """Read every intact frame of the journal at *path*.

    A partial final frame (any strict prefix of a frame ending at EOF,
    including one whose payload bytes are present but fail the CRC) is
    reported as a torn tail.  Damage that a torn append cannot explain —
    a complete frame with a bad CRC mid-file, a garbled header with more
    data behind it, undecodable payload JSON — raises
    :class:`~repro.errors.JournalCorruptionError`.

    ``from_offset`` resumes an *incremental* scan at a byte offset a
    previous scan reported (``good_offset`` — always a frame boundary):
    only frames at or past the offset are decoded, so a tail-follower
    does not re-read the whole log each poll.  The file header is still
    verified; an offset before the header or past EOF (the file was
    rotated/truncated underneath the follower) raises
    :class:`~repro.errors.JournalCorruptionError` rather than guessing.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(FILE_MAGIC):
        raise JournalCorruptionError(
            f"{path!r} does not start with the journal magic"
        )
    offset = len(FILE_MAGIC)
    end = len(data)
    if from_offset:
        if from_offset < len(FILE_MAGIC) or from_offset > end:
            raise JournalCorruptionError(
                f"resume offset {from_offset} is outside {path!r} "
                f"(header {len(FILE_MAGIC)}, size {end}) — the journal "
                "was rotated or truncated underneath the follower"
            )
        offset = from_offset
    records: list[dict] = []
    offsets: list[int] = []
    while offset < end:
        header = data[offset : offset + HEADER_SIZE]
        if len(header) < HEADER_SIZE:
            break  # torn: partial header at EOF
        magic, length, payload_crc, header_crc = _HEADER.unpack(header)
        if crc32(header[:12]) != header_crc or magic != FRAME_MAGIC:
            # A torn append writes a *prefix* of a valid frame; a full
            # 16-byte header that fails its own CRC is damage, not a torn
            # write — unless it is bytes that a partial payload of a
            # previous... no: the previous frame was intact (we are at a
            # frame boundary), so this header was written as a header.
            raise JournalCorruptionError(
                f"bad frame header at offset {offset} of {path!r}"
            )
        payload = data[offset + HEADER_SIZE : offset + HEADER_SIZE + length]
        frame_end = offset + HEADER_SIZE + length
        if len(payload) < length:
            break  # torn: partial payload at EOF
        if crc32(payload) != payload_crc:
            if frame_end == end:
                break  # torn: final frame's payload never fully landed
            raise JournalCorruptionError(
                f"payload CRC mismatch at offset {offset} of {path!r}"
            )
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise JournalCorruptionError(
                f"undecodable journal record at offset {offset} of "
                f"{path!r}: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise JournalCorruptionError(
                f"journal record at offset {offset} of {path!r} is not "
                "an object"
            )
        records.append(record)
        offsets.append(offset)
        offset = frame_end
    return ScanResult(
        records=records,
        good_offset=offset,
        torn_bytes=end - offset,
        offsets=offsets,
    )


class FollowerResyncRequired(JournalCorruptionError):
    """The follower's position was compacted out from under it.

    Raised by :meth:`JournalFollower.poll` when a checkpoint compaction
    folded records the follower never handed out into the checkpoint
    (its watermark is behind the new manifest ``seq``): the frames are
    gone, so frame-granular shipping cannot continue.  Not damage — the
    consumer must resynchronize from the checkpoint (a replica restarts
    with a full catch-up replay).  Subclasses
    :class:`~repro.errors.JournalCorruptionError` so retry policies
    already classify it as never-retryable.
    """


class JournalFollower:
    """Incremental, read-only tail-follow over a durable directory.

    The shipper's half of log-shipping replication: each :meth:`poll`
    re-reads the manifest, resumes the journal scan at the byte offset
    the previous poll ended on (never rescanning the whole log), and
    returns the records past the ``after_seq`` watermark — whole commit
    groups only, in strict sequence order.

    Invariants the follower enforces:

    * **torn tail at the offset** — a partial final frame is simply not
      returned yet; the next poll resumes at the same boundary.  The
      follower never truncates (it does not own the file);
    * **unterminated trailing group** — a ``begin`` whose ``end`` has
      not landed is held back whole (group atomicity extends to the
      wire); the offset stays at the group's first frame;
    * **resume across rotation** — a manifest generation change switches
      the follower to the new journal file.  When the compaction folded
      records the follower never delivered into the checkpoint,
      :class:`FollowerResyncRequired` is raised instead of silently
      skipping them;
    * **sequence discipline** — delivered records are strictly
      contiguous from the watermark; a gap or regression raises
      :class:`~repro.errors.JournalCorruptionError` (permanently fatal,
      never retried).
    """

    def __init__(self, directory: str, *, after_seq: int = 0):
        self.directory = directory
        self.watermark = after_seq
        self.generation: int | None = None
        self.path: str | None = None
        self.offset = 0

    def poll(self) -> list[dict]:
        """Return the new complete records since the last poll."""
        from repro.durability import manifest as manifest_mod

        manifest = manifest_mod.read_manifest(self.directory)
        if manifest["generation"] != self.generation:
            if manifest["seq"] > self.watermark:
                raise FollowerResyncRequired(
                    f"compaction folded records up to seq "
                    f"{manifest['seq']} into the checkpoint but the "
                    f"follower only delivered up to {self.watermark}; "
                    "resynchronize from the checkpoint"
                )
            self.generation = manifest["generation"]
            self.path = os.path.join(self.directory, manifest["journal"])
            self.offset = 0
        assert self.path is not None
        scan = scan_journal(self.path, from_offset=self.offset)
        records = scan.records
        offsets = scan.offsets
        # Hold back a trailing unterminated commit group whole.
        open_at: int | None = None
        for index, record in enumerate(records):
            marker = record.get("group")
            if marker == "begin":
                open_at = index
            elif marker == "end":
                open_at = None
        if open_at is not None:
            next_offset = offsets[open_at]
            records = records[:open_at]
        else:
            next_offset = scan.good_offset
        out: list[dict] = []
        for record in records:
            seq = record.get("seq")
            if not isinstance(seq, int):
                raise JournalCorruptionError(
                    f"journal record without a sequence number in "
                    f"{self.path!r}"
                )
            if seq <= self.watermark:
                continue  # already delivered (re-attach mid-journal)
            if seq != self.watermark + 1:
                raise JournalCorruptionError(
                    f"journal sequence gap while following {self.path!r}: "
                    f"expected {self.watermark + 1}, found {seq}"
                )
            out.append(record)
            self.watermark = seq
        self.offset = next_offset
        return out


# ---------------------------------------------------------------------------
# The journal proper
# ---------------------------------------------------------------------------


@dataclass
class JournalEntry:
    """One snap's worth of durability, built pre-apply."""

    seq: int
    pre_next_id: int
    semantics: str
    ops: list[dict]
    nodes: list[list]
    captured_roots: set[int] = field(default_factory=set)
    # Explicit post-application watermark.  The single-snap path leaves
    # this None and reads the live store at commit time; a transaction
    # commit group pre-computes each member's watermark (the statements
    # were applied against the session view, not the live store).
    post_next_id: int | None = None


class Journal:
    """An append-only write-ahead journal for one engine's store.

    Parameters:
        path: journal file.  :meth:`create` writes the file header;
            :meth:`reopen` appends to an existing (scanned) file.
        fsync: ``"always"`` (fsync every commit — full durability),
            ``"batch"`` (fsync every *fsync_batch* commits — bounded
            loss window), or ``"never"`` (leave flushing to the OS —
            crash-consistent but not crash-durable).
        fsync_batch: commit count between fsyncs in batch mode.
        base_next_id: the store's id watermark at journal start; nodes
            rooted below it live in the checkpoint and are never
            re-serialized into entries.
        next_seq: sequence number the next record will carry.
        compact_max_bytes / compact_max_records: thresholds consulted by
            :attr:`needs_compaction` (None disables that bound).
        epoch: the fencing epoch stamped into every frame payload
            (``"ep"``).  0 outside a cluster; a promoted replica opens
            the journal with the bumped epoch so replicas can refuse
            frames from a deposed primary (:mod:`repro.cluster`).
        faults: optional :class:`~repro.durability.faults.FaultInjector`.
        tracer: optional tracer fed ``journal.*`` counters.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: str = FSYNC_ALWAYS,
        fsync_batch: int = 32,
        base_next_id: int = 0,
        next_seq: int = 1,
        compact_max_bytes: int | None = None,
        compact_max_records: int | None = None,
        epoch: int = 0,
        faults: FaultInjector | None = None,
        tracer: Any | None = None,
        _create: bool = True,
        _existing_bytes: int = 0,
        _existing_records: int = 0,
    ):
        if fsync not in _FSYNC_MODES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_MODES}, not {fsync!r}"
            )
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be >= 1")
        self.path = path
        self.fsync_mode = fsync
        self.fsync_batch = fsync_batch
        self.base_next_id = base_next_id
        self.next_seq = next_seq
        self.compact_max_bytes = compact_max_bytes
        self.compact_max_records = compact_max_records
        self.epoch = epoch
        self.faults = faults
        self.tracer = tracer
        # Fencing hook (see repro.cluster.fence): called before every
        # append; raises StaleEpochError when a newer epoch has been
        # published, refusing writes from a deposed primary *before*
        # they can interleave with the promoted one's.
        self.fence: Any | None = None
        # Circuit breaker protecting the commit path; installed by
        # DurableEngine when a resilience policy enables it.  The update
        # applier consults it before journaling a non-empty Δ and feeds
        # commit outcomes back into it (see
        # repro.semantics.update.apply_update_list).
        self.breaker: Any | None = None
        # Evidence counters (also mirrored into the tracer when present).
        self.records = _existing_records  # records in the current file
        self.bytes = _existing_bytes or len(FILE_MAGIC)  # file size
        self.fsyncs = 0
        self._commits_since_fsync = 0
        if _create:
            # Unbuffered: a crash never loses bytes to a Python buffer,
            # and partial appends are genuine OS-level partial writes.
            self._handle = open(path, "wb", buffering=0)
            self._handle.write(FILE_MAGIC)
            os.fsync(self._handle.fileno())
            fsync_directory(os.path.dirname(path) or ".")
            self.bytes = len(FILE_MAGIC)
        else:
            self._handle = open(path, "ab", buffering=0)

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(cls, path: str, **kwargs: Any) -> "Journal":
        """Create a fresh journal file (header only) at *path*."""
        return cls(path, _create=True, **kwargs)

    @classmethod
    def reopen(
        cls,
        path: str,
        *,
        scan: ScanResult,
        **kwargs: Any,
    ) -> "Journal":
        """Append to an existing journal whose content was just scanned
        (and whose torn tail, if any, was truncated by recovery)."""
        journal = cls(
            path,
            _create=False,
            _existing_bytes=scan.good_offset,
            _existing_records=len(scan.records),
            **kwargs,
        )
        return journal

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def sync(self) -> None:
        """Force an fsync now (used on close and by batch mode)."""
        if self._handle.closed:
            return
        if self.faults is not None:
            self.faults.delay(SLOW_FSYNC)
        os.fsync(self._handle.fileno())
        self.fsyncs += 1
        self._commits_since_fsync = 0
        if self.tracer is not None:
            self.tracer.count("journal.fsyncs")

    @property
    def closed(self) -> bool:
        return self._handle.closed

    @property
    def needs_compaction(self) -> bool:
        """True once the journal crosses a configured size bound."""
        if (
            self.compact_max_bytes is not None
            and self.bytes >= self.compact_max_bytes
        ):
            return True
        return (
            self.compact_max_records is not None
            and self.records >= self.compact_max_records
        )

    def rotate(self, path: str, base_next_id: int) -> None:
        """Switch to a fresh journal file (checkpoint compaction).

        The sequence numbering continues — the manifest records the last
        sequence folded into the checkpoint, so recovery can prove the
        new journal picks up exactly where the checkpoint ends.

        The old file is fsynced before it is closed: in ``batch`` mode it
        may hold acknowledged-but-unflushed frames, and until the caller
        publishes the new manifest a crash recovers from the *old*
        checkpoint + journal pair — whose tail must therefore be durable.
        """
        old = self._handle
        if not old.closed and self._commits_since_fsync:
            os.fsync(old.fileno())
            self.fsyncs += 1
        self._handle = open(path, "wb", buffering=0)
        self._handle.write(FILE_MAGIC)
        os.fsync(self._handle.fileno())
        fsync_directory(os.path.dirname(path) or ".")
        old.close()
        self.path = path
        self.base_next_id = base_next_id
        self.records = 0
        self.bytes = len(FILE_MAGIC)
        self._commits_since_fsync = 0

    # -- the write path --------------------------------------------------

    def build_entry(
        self,
        store: Store,
        requests: list,
        semantics: ApplySemantics,
    ) -> JournalEntry | None:
        """Serialize *requests* (in applied order) into a journal entry.

        Called *before* the requests are applied, so the captured node
        rows and the ``pre`` watermark describe the store the replayed
        ops will run against.  Returns None for an empty Δ (an empty
        snap leaves no record).
        """
        if not requests:
            return None
        ops: list[dict] = []
        nodes: list[list] = []
        captured: set[int] = set()
        for request in requests:
            op, refs = encode_request(request)
            ops.append(op)
            for ref in refs:
                root = store.root(ref)
                if root < self.base_next_id or root in captured:
                    # Rooted in the checkpointed world (or an earlier
                    # replayed record): replay already has it.  Links
                    # into it only change through journaled ops.
                    continue
                captured.add(root)
                nodes.extend(_subtree_rows(store, root))
        return JournalEntry(
            seq=self.next_seq,
            pre_next_id=store._next_id,
            semantics=semantics.value,
            ops=ops,
            nodes=nodes,
            captured_roots=captured,
        )

    @staticmethod
    def _frame(payload_obj: dict) -> bytes:
        """Encode one payload object as a CRC-framed journal frame."""
        payload = json.dumps(payload_obj, separators=(",", ":")).encode(
            "utf-8"
        )
        header_head = struct.pack(
            "<III", FRAME_MAGIC, len(payload), crc32(payload)
        )
        return header_head + struct.pack("<I", crc32(header_head)) + payload

    def _entry_payload(self, entry: JournalEntry, store: Store) -> dict:
        post = entry.post_next_id
        if post is None:
            post = store._next_id
        return {
            "seq": entry.seq,
            "ep": self.epoch,
            "pre": entry.pre_next_id,
            "post": post,
            "sem": entry.semantics,
            "ops": entry.ops,
            "nodes": entry.nodes,
        }

    def commit(self, entry: JournalEntry, store: Store) -> None:
        """Append *entry* and make it durable per the fsync policy.

        Called after the update list applied cleanly; ``store._next_id``
        now holds the post-application watermark the replay must land
        on.  Raises ``OSError`` when the append fails (the caller turns
        that into a :class:`~repro.errors.DurabilityError`).
        """
        if self.fence is not None:
            self.fence()
        if self._handle.closed:
            # A deposed/shut-down owner's append must be a typed
            # durability refusal, not a ValueError from the file object.
            raise OSError("journal is closed")
        frame = self._frame(self._entry_payload(entry, store))
        faults = self.faults
        if faults is not None:
            faults.hit(EIO_ON_WRITE)
            if faults.will_fire(CRASH_BEFORE_FSYNC):
                # A genuine torn append: half the frame reaches the OS,
                # then the process "dies".
                self._handle.write(frame[: max(1, len(frame) // 2)])
                faults.hit(CRASH_BEFORE_FSYNC)  # raises InjectedCrash
            else:
                faults.hit(CRASH_BEFORE_FSYNC)  # tick a countdown > 1
        try:
            self._handle.write(frame)
        except ValueError as exc:  # closed between the check and the write
            raise OSError(str(exc)) from exc
        if self.fsync_mode == FSYNC_ALWAYS:
            self.sync()
        elif self.fsync_mode == FSYNC_BATCH:
            self._commits_since_fsync += 1
            if self._commits_since_fsync >= self.fsync_batch:
                self.sync()
        if faults is not None:
            # The record is durable; the caller just never hears back.
            faults.hit(CRASH_AFTER_JOURNAL)
        self.next_seq = entry.seq + 1
        self.records += 1
        self.bytes += len(frame)
        if self.tracer is not None:
            self.tracer.count("journal.records")
            self.tracer.count("journal.bytes", len(frame))

    def commit_group(
        self, entries: list[JournalEntry], store: Store, txn_id: int
    ) -> None:
        """Append *entries* as one atomic commit group.

        Framing: a ``group begin`` marker, one member frame per entry,
        then a ``group end`` marker; every frame consumes a sequence
        number.  Durability is group-granular — one fsync after the end
        marker (batch mode counts the whole group as one commit unit) —
        and recovery replays a group only when its end marker landed,
        truncating an unterminated group whole.  On an append failure
        the file is truncated back to the pre-group offset (best effort)
        before the ``OSError`` propagates, so a *surviving* process
        never leaves a half-group for later frames to bury.
        """
        if self.fence is not None:
            self.fence()
        if self._handle.closed:
            raise OSError("journal is closed")
        seq = self.next_seq
        count = len(entries)
        frames = [
            self._frame(
                {
                    "seq": seq,
                    "ep": self.epoch,
                    "group": "begin",
                    "txn": txn_id,
                    "count": count,
                }
            )
        ]
        for index, entry in enumerate(entries):
            entry.seq = seq + 1 + index
            frames.append(self._frame(self._entry_payload(entry, store)))
        frames.append(
            self._frame(
                {
                    "seq": seq + count + 1,
                    "ep": self.epoch,
                    "group": "end",
                    "txn": txn_id,
                    "count": count,
                }
            )
        )
        blob = b"".join(frames)
        start_bytes = self.bytes
        faults = self.faults
        try:
            if faults is not None:
                faults.hit(EIO_ON_WRITE)
                if faults.will_fire(CRASH_BEFORE_FSYNC):
                    # Torn group: a strict prefix of the group reaches
                    # the OS, then the process "dies".  Recovery must
                    # drop the whole group.
                    self._handle.write(blob[: max(1, len(blob) // 2)])
                    faults.hit(CRASH_BEFORE_FSYNC)  # raises InjectedCrash
                else:
                    faults.hit(CRASH_BEFORE_FSYNC)  # tick a countdown > 1
            self._handle.write(blob)
            if self.fsync_mode == FSYNC_ALWAYS:
                self.sync()
            elif self.fsync_mode == FSYNC_BATCH:
                self._commits_since_fsync += 1
                if self._commits_since_fsync >= self.fsync_batch:
                    self.sync()
        except (OSError, ValueError) as exc:
            try:
                self._handle.flush()
                os.ftruncate(self._handle.fileno(), start_bytes)
            except (OSError, ValueError):
                pass
            if isinstance(exc, ValueError):
                # Closed between the fence check and the write.
                raise OSError(str(exc)) from exc
            raise
        if faults is not None:
            # The group is durable; the caller just never hears back.
            faults.hit(CRASH_AFTER_JOURNAL)
        self.next_seq = seq + count + 2
        self.records += count + 2
        self.bytes += len(blob)
        if self.tracer is not None:
            self.tracer.count("journal.records", count + 2)
            self.tracer.count("journal.bytes", len(blob))
            self.tracer.count("journal.groups")

    def __repr__(self) -> str:
        return (
            f"Journal(path={self.path!r}, records={self.records}, "
            f"bytes={self.bytes}, next_seq={self.next_seq}, "
            f"fsync={self.fsync_mode!r})"
        )
