"""Crash recovery: checkpoint + journal → a consistent engine.

Recovery is a pure function of the durable directory's contents:

1. read the manifest (the authoritative checkpoint/journal pairing);
2. load the checkpoint through :func:`repro.persist.load_engine`
   (which already validates the dump and the store invariants);
3. scan the journal: every intact frame in order, CRC-checked.  A torn
   tail — any strict prefix of a final frame, the signature of a crash
   mid-append — is truncated off the file; damage anywhere else raises
   :class:`~repro.errors.JournalCorruptionError` (recovery never guesses
   around interior corruption);
4. replay each record: materialize the captured payload subtrees that
   the checkpoint does not hold (skipping ids already present — replay
   is idempotent over re-covered rows), re-seed id allocation at the
   record's ``pre`` watermark, apply the ops in their journaled order,
   and verify the allocator lands exactly on the recorded ``post``
   watermark — any divergence means the journal does not describe this
   checkpoint and recovery refuses to continue;
5. verify sequence continuity (first record = manifest ``seq`` + 1,
   strictly contiguous after) and the store's structural invariants.

The result is a store equal to replaying a *prefix* of the committed
snaps: everything acknowledged before the crash, plus possibly one final
snap whose journal append hit the disk but whose acknowledgement the
client never saw.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import JournalCorruptionError, XQueryError
from repro.xdm.store import Store

from repro.durability import manifest as manifest_mod
from repro.durability.journal import (
    ScanResult,
    decode_request,
    materialize_rows,
    scan_journal,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine


@dataclass
class RecoveryReport:
    """What recovery did, for operators and the ``repro recover`` CLI."""

    directory: str
    generation: int
    checkpoint: str
    journal: str
    records_replayed: int
    ops_applied: int
    nodes_materialized: int
    truncated_bytes: int
    next_seq: int
    groups_replayed: int = 0

    def render(self) -> str:
        lines = [
            f"recovered {self.directory!r} (generation {self.generation})",
            f"  checkpoint: {self.checkpoint}",
            f"  journal:    {self.journal}",
            f"  replayed {self.records_replayed} record(s), "
            f"{self.ops_applied} op(s), "
            f"{self.nodes_materialized} materialized node(s)",
        ]
        if self.groups_replayed:
            lines.append(
                f"  replayed {self.groups_replayed} commit group(s) "
                "all-or-nothing"
            )
        if self.truncated_bytes:
            lines.append(
                f"  truncated a torn tail of {self.truncated_bytes} byte(s)"
            )
        lines.append(f"  next sequence number: {self.next_seq}")
        return "\n".join(lines)


@dataclass
class RecoveryResult:
    """A recovered engine plus the evidence of how it was rebuilt."""

    engine: "Engine"
    report: RecoveryReport
    manifest: dict
    scan: ScanResult


def replay_record(store: Store, record: dict) -> tuple[int, int]:
    """Replay one journal record onto *store*.

    Returns ``(ops_applied, nodes_materialized)``.  Raises
    :class:`~repro.errors.JournalCorruptionError` when the record does
    not faithfully extend the store (failed precondition, watermark
    divergence, malformed content).
    """
    try:
        seq = record["seq"]
        pre = record["pre"]
        post = record["post"]
        ops = record["ops"]
        nodes = record["nodes"]
    except (KeyError, TypeError) as exc:
        raise JournalCorruptionError(
            f"journal record is missing field {exc}"
        ) from exc
    created = materialize_rows(store, nodes)
    store._reset_ids(pre)
    requests = [decode_request(op) for op in ops]
    try:
        for request in requests:
            request.apply(store)
    except XQueryError as exc:
        raise JournalCorruptionError(
            f"replay of journal record {seq} failed: {exc}"
        ) from exc
    if store._next_id != post:
        raise JournalCorruptionError(
            f"replay of journal record {seq} diverged: store watermark "
            f"{store._next_id} != recorded post-state {post}"
        )
    return len(requests), created


def recover(
    directory: str,
    *,
    verify_invariants: bool = True,
    readonly: bool = False,
    tracer: Any | None = None,
) -> RecoveryResult:
    """Rebuild the engine persisted in durable *directory*.

    Truncates a torn journal tail in place (so a subsequent reopen
    appends at a clean frame boundary).  Raises
    :class:`~repro.errors.DurabilityError` for a missing/ malformed
    manifest or checkpoint and
    :class:`~repro.errors.JournalCorruptionError` for journal damage a
    torn append cannot explain.

    ``readonly=True`` (a replica catching up on a journal it does not
    own — :mod:`repro.cluster`) never writes: a torn tail or an
    unterminated trailing commit group is *skipped* during replay but
    left on disk for the journal's owner to truncate.  The returned
    scan still reflects only the replayed prefix, so the caller's
    watermark and resume offset agree with what was applied.
    """
    from repro.persist import load_engine

    manifest = manifest_mod.read_manifest(directory)
    checkpoint_path = os.path.join(directory, manifest["checkpoint"])
    journal_path = os.path.join(directory, manifest["journal"])
    engine = load_engine(checkpoint_path)
    scan = scan_journal(journal_path)
    truncated_bytes = scan.torn_bytes
    if scan.torn_bytes and not readonly:
        with open(journal_path, "r+b") as handle:
            handle.truncate(scan.good_offset)
            os.fsync(handle.fileno())
        if tracer is not None:
            tracer.count("journal.truncated_tails")
    # Commit-group atomicity: walk the group markers first.  An interior
    # anomaly (nested begin, end without begin, member-count mismatch)
    # is damage a crash cannot explain; a *trailing* unterminated group
    # — a begin whose end never landed, running to the end of the intact
    # records — is exactly what a crash mid-group leaves, and the whole
    # group is cut back out of the file before anything replays.
    open_at: int | None = None
    open_count = 0
    members_seen = 0
    for index, record in enumerate(scan.records):
        marker = record.get("group")
        if marker == "begin":
            if open_at is not None:
                raise JournalCorruptionError(
                    f"nested commit-group begin at record {index} of "
                    f"{journal_path!r}"
                )
            count = record.get("count")
            if not isinstance(count, int) or count < 0:
                raise JournalCorruptionError(
                    f"commit-group begin at record {index} of "
                    f"{journal_path!r} carries a bad member count "
                    f"{count!r}"
                )
            open_at = index
            open_count = count
            members_seen = 0
        elif marker == "end":
            if open_at is None:
                raise JournalCorruptionError(
                    f"commit-group end without begin at record {index} "
                    f"of {journal_path!r}"
                )
            if members_seen != open_count or record.get("count") != open_count:
                raise JournalCorruptionError(
                    f"commit group at record {open_at} of "
                    f"{journal_path!r} declares {open_count} member(s) "
                    f"but closes after {members_seen}"
                )
            open_at = None
        elif marker is not None:
            raise JournalCorruptionError(
                f"unknown commit-group marker {marker!r} at record "
                f"{index} of {journal_path!r}"
            )
        elif open_at is not None:
            members_seen += 1
            if members_seen > open_count:
                raise JournalCorruptionError(
                    f"commit group at record {open_at} of "
                    f"{journal_path!r} overran its declared "
                    f"{open_count} member(s)"
                )
    if open_at is not None:
        cut = scan.offsets[open_at]
        if not readonly:
            with open(journal_path, "r+b") as handle:
                handle.truncate(cut)
                os.fsync(handle.fileno())
        truncated_bytes += scan.good_offset - cut
        # Mutate the scan in place so Journal.reopen(scan=...) and the
        # sequence accounting below agree with the file on disk (in
        # readonly mode: with the prefix that was actually replayed).
        del scan.records[open_at:]
        del scan.offsets[open_at:]
        scan.good_offset = cut
        scan.torn_bytes = 0
        if tracer is not None:
            tracer.count("journal.truncated_groups")
    expected_seq = manifest["seq"] + 1
    ops_applied = 0
    nodes_materialized = 0
    groups_replayed = 0
    for record in scan.records:
        if record.get("seq") != expected_seq:
            raise JournalCorruptionError(
                f"journal sequence gap: expected record {expected_seq}, "
                f"found {record.get('seq')!r}"
            )
        marker = record.get("group")
        if marker is not None:
            # Markers consume a sequence number but apply nothing; the
            # walk above already proved the group well-formed.
            if marker == "end":
                groups_replayed += 1
            expected_seq += 1
            continue
        applied, created = replay_record(engine.store, record)
        ops_applied += applied
        nodes_materialized += created
        expected_seq += 1
    if verify_invariants:
        engine.store.check_invariants()
    if tracer is not None:
        tracer.count("journal.recoveries")
    report = RecoveryReport(
        directory=directory,
        generation=manifest["generation"],
        checkpoint=manifest["checkpoint"],
        journal=manifest["journal"],
        records_replayed=len(scan.records),
        ops_applied=ops_applied,
        nodes_materialized=nodes_materialized,
        truncated_bytes=truncated_bytes,
        next_seq=expected_seq,
        groups_replayed=groups_replayed,
    )
    return RecoveryResult(
        engine=engine, report=report, manifest=manifest, scan=scan
    )
