"""A crash-safe engine: checkpoint + write-ahead journal + compaction.

:class:`DurableEngine` wraps an :class:`~repro.engine.Engine` and ties
its snap applications to a journal in a durable directory (see
:mod:`repro.durability.manifest` for the on-disk layout).  Opening the
same directory again recovers: checkpoint loaded, journal replayed,
torn tail truncated — the store comes back equal to a prefix of the
committed snaps.

The wrapper delegates everything it does not define to the inner engine,
so it drops into existing call sites — including
:class:`~repro.concurrent.ConcurrentExecutor`, which serializes updating
queries (and therefore journal appends) under the store's write lock and
duck-types :meth:`maybe_compact` to fold the journal into a fresh
checkpoint once it crosses the configured size.

``atomic_snaps`` defaults to **True** here (unlike the bare engine): a
snap whose update list fails a precondition mid-application rolls the
store back *and journals nothing*, keeping memory and disk in lockstep.
Without it, a failed snap would leave the in-memory store partially
mutated while the journal (correctly) recorded nothing — recovery would
then disagree with the process it replaced.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Optional

from repro.engine import Engine
from repro.errors import DurabilityError
from repro.obs.tracer import SharedTracer

from repro.durability import manifest as manifest_mod
from repro.durability.faults import CRASH_MID_CHECKPOINT, FaultInjector
from repro.durability.journal import FSYNC_ALWAYS, Journal
from repro.durability.recover import RecoveryReport, recover

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import QueryResult
    from repro.resilience.breaker import CircuitBreaker
    from repro.resilience.health import HealthReport
    from repro.resilience.policy import ResiliencePolicy


class DurableEngine:
    """An engine whose committed snaps survive process death.

    Parameters:
        path: the durable directory.  When it holds a manifest the
            engine is *recovered* from it; otherwise the directory is
            initialized with a checkpoint of *engine* (or a fresh
            engine) and an empty journal.
        engine: an engine to make durable on first open.  Passing one
            for an existing directory is an error — the recovered state
            is authoritative.
        fsync / fsync_batch: journal durability policy (see
            :class:`~repro.durability.journal.Journal`).
        compact_max_bytes / compact_max_records: journal size bounds;
            :meth:`maybe_compact` folds the journal into a new
            checkpoint once either is crossed.
        atomic_snaps: roll back (and journal nothing) on a failed snap.
            Defaults to True — see the module docstring.
        verify_recovery: run ``store.check_invariants()`` after replay.
        faults: a :class:`~repro.durability.faults.FaultInjector`
            (tests only).
        tracer: tracer for ``journal.*`` counters; a fresh
            :class:`~repro.obs.tracer.SharedTracer` when omitted.
        resilience: a :class:`~repro.resilience.ResiliencePolicy`.  When
            its breaker is enabled (the default policy enables it), a
            :class:`~repro.resilience.CircuitBreaker` is installed on the
            journal: repeated commit failures open the circuit and the
            engine enters *degraded read-only mode* — reads keep serving,
            non-empty snaps get a typed
            :class:`~repro.errors.CircuitOpenError` until a half-open
            probe succeeds.  ``None`` (the default) keeps the breaker
            off, preserving the pre-resilience fail-every-time behavior.

    Extra keyword arguments are forwarded to the :class:`Engine`
    constructor when a fresh engine is created.
    """

    def __init__(
        self,
        path: str,
        *,
        engine: Optional[Engine] = None,
        fsync: str = FSYNC_ALWAYS,
        fsync_batch: int = 32,
        compact_max_bytes: int | None = 4 * 1024 * 1024,
        compact_max_records: int | None = 4096,
        atomic_snaps: bool = True,
        verify_recovery: bool = True,
        faults: FaultInjector | None = None,
        tracer: Any | None = None,
        resilience: "ResiliencePolicy | None" = None,
        **engine_kwargs: Any,
    ):
        self.path = path
        self.tracer = tracer if tracer is not None else SharedTracer()
        self.faults = faults
        self.resilience = resilience
        self.recovered = False
        self.last_recovery: RecoveryReport | None = None
        # Serializes compaction against itself (the store write lock
        # serializes it against queries).
        self._compact_lock = threading.Lock()
        journal_opts = dict(
            fsync=fsync,
            fsync_batch=fsync_batch,
            compact_max_bytes=compact_max_bytes,
            compact_max_records=compact_max_records,
            faults=faults,
            tracer=self.tracer,
        )
        if manifest_mod.exists(path):
            if engine is not None or engine_kwargs:
                raise DurabilityError(
                    f"{path!r} already holds a durable engine; opening it "
                    "recovers that state (drop the engine argument)"
                )
            result = recover(
                path, verify_invariants=verify_recovery, tracer=self.tracer
            )
            self.engine = result.engine
            self.engine.evaluator.atomic_snaps = atomic_snaps
            self.recovered = True
            self.last_recovery = result.report
            self._generation = result.manifest["generation"]
            self.journal = Journal.reopen(
                os.path.join(path, result.manifest["journal"]),
                scan=result.scan,
                base_next_id=self.engine.store._next_id,
                next_seq=result.report.next_seq,
                **journal_opts,
            )
            self._drop_orphans(result.manifest)
        else:
            os.makedirs(path, exist_ok=True)
            if engine is None:
                engine = Engine(atomic_snaps=atomic_snaps, **engine_kwargs)
            else:
                engine.evaluator.atomic_snaps = atomic_snaps
            self.engine = engine
            self._generation = 1
            checkpoint = manifest_mod.checkpoint_name(1)
            journal_file = manifest_mod.journal_name(1)
            self._write_checkpoint(os.path.join(path, checkpoint))
            self.journal = Journal.create(
                os.path.join(path, journal_file),
                base_next_id=engine.store._next_id,
                next_seq=1,
                **journal_opts,
            )
            # The manifest is the commit point: before this replace the
            # directory is not (yet) a durable engine.
            manifest_mod.write_manifest(
                path,
                generation=1,
                checkpoint=checkpoint,
                journal=journal_file,
                seq=0,
            )
        self.engine.journal = self.journal
        self.breaker: "CircuitBreaker | None" = None
        if resilience is not None:
            self.breaker = resilience.make_breaker(self.tracer)
            self.journal.breaker = self.breaker

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Flush and close the journal (idempotent).  The directory can
        be reopened — committed snaps replay from the journal."""
        self.journal.close()

    def __enter__(self) -> "DurableEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- checkpoint compaction -------------------------------------------

    def checkpoint(self) -> None:
        """Fold the journal into a fresh checkpoint now.

        Writes a new checkpoint + empty journal pair and atomically
        repoints the manifest; the old pair stays authoritative until
        the manifest replace, so a crash at any interior point recovers
        from the old pair (``CRASH_MID_CHECKPOINT`` in the fault
        matrix).  Serializes against running queries via the store's
        write lock — do not call while holding it.
        """
        with self._compact_lock:
            with self.engine.store.lock.write_locked():
                self._compact_unsynchronized()

    def maybe_compact(self) -> bool:
        """Compact when the journal crossed its size bounds.

        Non-blocking against concurrent compaction (returns False if one
        is already running); called by the serving layer after write
        requests, outside the store lock.
        """
        if self.journal.closed or not self.journal.needs_compaction:
            return False
        if not self._compact_lock.acquire(blocking=False):
            return False
        try:
            if not self.journal.needs_compaction:
                return False
            with self.engine.store.lock.write_locked():
                self._compact_unsynchronized()
            return True
        finally:
            self._compact_lock.release()

    def _compact_unsynchronized(self) -> None:
        # Compaction is fenced exactly like an append: it rewrites the
        # manifest, so a deposed primary running it would repoint the
        # fleet at a checkpoint+journal pair that lacks everything the
        # promoted node has acked since — orphaning durable writes
        # without ever touching the (fenced) commit path.  Found by the
        # deterministic simulator (repro.sim): a zombie primary's
        # forced checkpoint after failover vaporized the new primary's
        # acked tail.
        if self.journal.fence is not None:
            self.journal.fence()
        generation = self._generation + 1
        checkpoint = manifest_mod.checkpoint_name(generation)
        journal_file = manifest_mod.journal_name(generation)
        old_checkpoint = manifest_mod.checkpoint_name(self._generation)
        old_journal = self.journal.path
        # Everything journaled so far is folded into this checkpoint.
        seq = self.journal.next_seq - 1
        self._write_checkpoint(os.path.join(self.path, checkpoint))
        if self.faults is not None:
            # The window where the new checkpoint exists but the
            # manifest still points at the old pair.
            self.faults.hit(CRASH_MID_CHECKPOINT)
        self.journal.rotate(
            os.path.join(self.path, journal_file),
            base_next_id=self.engine.store._next_id,
        )
        manifest_mod.write_manifest(
            self.path,
            generation=generation,
            checkpoint=checkpoint,
            journal=journal_file,
            seq=seq,
        )
        self._generation = generation
        if self.tracer is not None:
            self.tracer.count("journal.compactions")
        for stale in (
            os.path.join(self.path, old_checkpoint),
            old_journal,
        ):
            try:
                os.unlink(stale)
            except OSError:
                pass

    def _write_checkpoint(self, path: str) -> None:
        from repro.persist import _engine_payload, _write_payload

        # Unlocked internals: compaction already holds the write lock
        # (and RWLock is not reentrant), first open owns the engine.
        _write_payload(_engine_payload(self.engine), path, fsync=True)

    def _drop_orphans(self, manifest: dict) -> None:
        """Remove checkpoint/journal files a crashed compaction left
        behind (files the manifest does not reference)."""
        keep = {
            manifest_mod.MANIFEST_NAME,
            manifest["checkpoint"],
            manifest["journal"],
        }
        try:
            entries = os.listdir(self.path)
        except OSError:
            return
        for entry in entries:
            if entry in keep:
                continue
            if entry.startswith(("checkpoint-", "journal-")) or (
                entry.endswith(".tmp")
            ):
                try:
                    os.unlink(os.path.join(self.path, entry))
                except OSError:
                    pass

    # -- engine surface ---------------------------------------------------

    def execute(self, query: str, *args: Any, **kwargs: Any) -> "QueryResult":
        """Delegate to the inner engine, then compact if due."""
        result = self.engine.execute(query, *args, **kwargs)
        self.maybe_compact()
        return result

    def bind(self, name: str, value: Any) -> None:
        """Bind a global and checkpoint — bindings live outside the
        store, so only a checkpoint makes them durable."""
        self.engine.bind(name, value)
        self.checkpoint()

    def load_document(self, name: str, xml_text: str) -> Any:
        """Load a document and checkpoint (document catalog entries are
        not journaled)."""
        node = self.engine.load_document(name, xml_text)
        self.checkpoint()
        return node

    def register_module(self, uri: str, text: str) -> None:
        node = self.engine.register_module(uri, text)
        self.checkpoint()
        return node

    def load_module(self, text: str) -> Any:
        """Load a module and checkpoint — function declarations are not
        part of the persisted store, so the checkpoint's module/global
        state is what recovery rebuilds from."""
        result = self.engine.load_module(text)
        self.checkpoint()
        return result

    @property
    def degraded(self) -> bool:
        """True while the durability circuit refuses writes (reads still
        serve).  Always False without a breaker."""
        breaker = self.breaker
        if breaker is None:
            return False
        from repro.resilience.breaker import CLOSED

        return breaker.state != CLOSED

    def health(self) -> "HealthReport":
        """A structured health/readiness report for this engine.

        Sections: the inner engine's report, plus ``durability``
        (journal lag — records/bytes since the last checkpoint,
        unflushed batch-mode commits — generation, last recovery) and,
        with a breaker, ``circuit`` (its state snapshot).  Status is
        DEGRADED while the circuit is open or half-open, UNHEALTHY once
        the journal is closed.
        """
        from repro.resilience.breaker import CLOSED
        from repro.resilience.health import (
            DEGRADED,
            UNHEALTHY,
            HealthReport,
        )

        report = self.engine.health()
        recovery = None
        if self.last_recovery is not None:
            recovery = {
                "records_replayed": self.last_recovery.records_replayed,
                "ops_applied": self.last_recovery.ops_applied,
                "truncated_bytes": self.last_recovery.truncated_bytes,
                "next_seq": self.last_recovery.next_seq,
            }
        report.sections["durability"] = {
            "path": self.path,
            "generation": self._generation,
            "fsync": self.journal.fsync_mode,
            "journal_records": self.journal.records,
            "journal_bytes": self.journal.bytes,
            "unflushed_commits": self.journal._commits_since_fsync,
            "journal_closed": self.journal.closed,
            "recovered": self.recovered,
            "last_recovery": recovery,
        }
        if self.journal.closed:
            report.worsen(UNHEALTHY)
        breaker = self.breaker
        if breaker is not None:
            snapshot = breaker.to_dict()
            snapshot["retry_after_ms"] = breaker.retry_after_ms()
            report.sections["circuit"] = snapshot
            if snapshot["state"] != CLOSED:
                report.worsen(DEGRADED)
        return report

    def session(self, **kwargs: Any):
        """Open a transactional :class:`~repro.txn.Session`.

        Same surface as :meth:`Engine.session`; a commit lands in the
        journal as one atomic frame group (recovery replays it
        all-or-nothing), and each commit is followed by a compaction
        check.  The caller's ``on_commit`` hook, when given, runs after
        that check.
        """
        caller_hook = kwargs.pop("on_commit", None)

        def after_commit() -> None:
            self.maybe_compact()
            if caller_hook is not None:
                caller_hook()

        return self.engine.session(on_commit=after_commit, **kwargs)

    @contextmanager
    def transaction(self, **kwargs: Any):
        """Scope one MVCC transaction: commit on clean exit, roll back
        on exception.

        Historically this raised — the legacy checkpoint/rollback
        transaction would have un-applied snaps the journal had already
        made durable.  The session-based transaction has no such
        problem: statements buffer on a snapshot view and nothing
        touches the store or the journal until the atomic commit (one
        journal frame group), so durable engines support multi-query
        atomicity directly::

            with durable.transaction() as txn:
                txn.execute('snap insert nodes <bid/> into $bids')
                txn.execute('snap delete nodes $watch/item[1]')
            # both journaled as one group — or neither
        """
        session = self.session(**kwargs)
        try:
            with session.transaction() as txn:
                yield txn
        finally:
            session.close()

    def __getattr__(self, name: str) -> Any:
        # Everything else — prepare, store, evaluator, variable,
        # serialize, prepared_cache, ... — behaves exactly as on the
        # inner engine.  (Only called for names not defined above.)
        return getattr(self.engine, name)

    def __repr__(self) -> str:
        return (
            f"DurableEngine(path={self.path!r}, "
            f"generation={self._generation}, journal={self.journal!r})"
        )
