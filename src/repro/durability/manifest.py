"""The checkpoint+journal pairing manifest.

A durable engine's on-disk state is a directory::

    MANIFEST.json            which checkpoint/journal pair is current
    checkpoint-<gen>.json    a repro.persist dump
    journal-<gen>.wal        the write-ahead journal since that dump

The manifest is the *single commit point* of checkpoint compaction: the
new checkpoint and the new (empty) journal are fully written and fsynced
first, then the manifest is atomically replaced (``os.replace`` + a
directory fsync) to point at them.  A crash anywhere before the replace
leaves the old pair authoritative and the new files as unreferenced
orphans; a crash after it leaves the new pair authoritative.  There is
no window in which neither pair is complete.

Manifest fields::

    {"format": "repro-xquerybang-manifest", "version": 1,
     "generation": 3,
     "checkpoint": "checkpoint-000003.json",
     "journal": "journal-000003.wal",
     "seq": 1042}

``seq`` is the sequence number of the last journal record folded into
the checkpoint; the journal's first record must carry ``seq + 1``.
"""

from __future__ import annotations

import json
import os

from repro.errors import DurabilityError

from repro.durability.journal import fsync_directory

MANIFEST_NAME = "MANIFEST.json"
_FORMAT = "repro-xquerybang-manifest"
_VERSION = 1


def checkpoint_name(generation: int) -> str:
    return f"checkpoint-{generation:06d}.json"


def journal_name(generation: int) -> str:
    return f"journal-{generation:06d}.wal"


def manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def read_manifest(directory: str) -> dict:
    """Load and validate the manifest of a durable directory."""
    path = manifest_path(directory)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except ValueError as exc:
        raise DurabilityError(
            f"manifest {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise DurabilityError(f"{path!r} is not a {_FORMAT} file")
    if payload.get("version") != _VERSION:
        raise DurabilityError(
            f"unsupported manifest version {payload.get('version')!r}"
        )
    for key, type_ in (
        ("generation", int),
        ("checkpoint", str),
        ("journal", str),
        ("seq", int),
    ):
        if not isinstance(payload.get(key), type_):
            raise DurabilityError(
                f"manifest {path!r} field {key!r} is missing or malformed"
            )
    return payload


def write_manifest(
    directory: str,
    *,
    generation: int,
    checkpoint: str,
    journal: str,
    seq: int,
) -> None:
    """Atomically (re)write the manifest — the compaction commit point."""
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "generation": generation,
        "checkpoint": checkpoint,
        "journal": journal,
        "seq": seq,
    }
    path = manifest_path(directory)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    fsync_directory(directory)


def exists(directory: str) -> bool:
    return os.path.exists(manifest_path(directory))
