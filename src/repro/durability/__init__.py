"""Durability: write-ahead journaling, crash recovery, fault injection.

The paper's snap is the unit of atomicity (Section 2.3); this package
makes it the unit of durability.  See :mod:`repro.durability.journal`
for the commit protocol and file format,
:mod:`repro.durability.recover` for the recovery algorithm,
:mod:`repro.durability.durable` for the :class:`DurableEngine` wrapper
(checkpoint compaction, serving integration) and
:mod:`repro.durability.faults` for the crash-point harness the tests
drive.  ``docs/durability.md`` has the full specification, including
the crash matrix.
"""

from repro.durability.durable import DurableEngine
from repro.durability.faults import (
    ALL_CRASH_POINTS,
    CRASH_AFTER_JOURNAL,
    CRASH_BEFORE_FSYNC,
    CRASH_MID_CHECKPOINT,
    CRASH_MID_REPLAY,
    EIO_ON_WRITE,
    FaultInjector,
    FaultyFile,
    InjectedCrash,
)
from repro.durability.journal import (
    FollowerResyncRequired,
    Journal,
    JournalFollower,
    ScanResult,
    scan_journal,
)
from repro.durability.recover import (
    RecoveryReport,
    RecoveryResult,
    recover,
)

__all__ = [
    "DurableEngine",
    "Journal",
    "JournalFollower",
    "FollowerResyncRequired",
    "ScanResult",
    "scan_journal",
    "RecoveryReport",
    "RecoveryResult",
    "recover",
    "FaultInjector",
    "FaultyFile",
    "InjectedCrash",
    "ALL_CRASH_POINTS",
    "CRASH_BEFORE_FSYNC",
    "CRASH_AFTER_JOURNAL",
    "CRASH_MID_CHECKPOINT",
    "CRASH_MID_REPLAY",
    "EIO_ON_WRITE",
]
