"""The public engine facade.

Typical use::

    from repro import Engine

    engine = Engine()
    engine.load_document("auction", xmark_xml_text)
    engine.bind("log", engine.parse_fragment("<log/>"))
    result = engine.execute('count($auction//person)')
    print(result.first_value())

``execute`` runs the full pipeline of the paper's Section 4.2: parse →
normalize → (optionally compile to the algebra and optimize) → evaluate,
with the implicit top-level ``snap`` wrapped around the query body
(Section 2.3).
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping, Optional, Union

from repro.concurrent.control import CancelToken
from repro.errors import DynamicError, StaticError, XQueryError
from repro.lang import core_ast as core
from repro.lang.normalize import normalize, normalize_module
from repro.lang.simplify import simplify_module
from repro.lang.parser import parse_module
from repro.obs.report import ExplainReport, QueryStats, SlowQueryRecord
from repro.obs.tracer import Tracer, maybe_span
from repro.prepared import PreparedQuery, PreparedQueryCache
from repro.semantics.context import DynamicContext, FunctionRegistry
from repro.semantics.evaluator import Evaluator
from repro.semantics.functions import default_registry
from repro.semantics.update import ApplySemantics
from repro.xdm.nodes import Node
from repro.xdm.store import Store
from repro.xdm.values import AtomicValue, Item, Sequence, item_string
from repro.xmlio.parser import parse_document, parse_fragment
from repro.xmlio.serializer import serialize_sequence


PythonValue = Union[None, bool, int, float, str, Node, AtomicValue, list, tuple]


@dataclass(frozen=True, kw_only=True)
class ExecutionOptions:
    """Per-call execution options, accepted uniformly by
    :meth:`Engine.execute`, :meth:`Engine.prepare`,
    :meth:`Engine.compile` and :meth:`PreparedQuery.execute`.

    All fields are keyword-only and the object is immutable, so an options
    value can be built once and shared across calls::

        opts = ExecutionOptions(optimize=True, collect_stats=True)
        result = engine.execute(query, options=opts)
        result.stats.phase_times_ms  # parse/compile/evaluate/snap-apply ...

    Individual keyword arguments on the engine methods override the
    corresponding field for that one call.

    Attributes:
        optimize: compile the query body to the nested-relational algebra
            and apply the side-effect-guarded rewrites (Section 4).
            ``Engine.compile`` alone defaults this to True when neither an
            options object nor the keyword is given.
        semantics: update-application semantics for this call's implicit
            top-level snap — 'ordered', 'nondeterministic' or
            'conflict-detection' (None = the engine default).
        bindings: values for free ``$variables``, installed for the call
            and restored afterwards (prepared-statement style).
        collect_stats: record phase spans, counters and observations;
            the result's ``stats`` is a :class:`~repro.obs.report.QueryStats`.
        explain: attach an :class:`~repro.obs.report.ExplainReport` to the
            result (plan before/after rewriting, rule firings, purity).
        timeout_ms: cooperative execution deadline in milliseconds.  The
            evaluator and the algebra's tuple pipeline poll the deadline
            at iteration boundaries; when it fires the call raises
            :class:`~repro.errors.QueryTimeoutError` and the pending
            update list is discarded (never half-applied).  None (the
            default) disables the check entirely.
        cancel: a :class:`~repro.concurrent.CancelToken`; firing it from
            any thread makes the call raise
            :class:`~repro.errors.QueryCancelledError` at its next check
            point, with the same discard-the-Δ guarantee.
        use_indexes: answer eligible descendant steps and value
            predicates from the store's structural and value indexes
            (see :mod:`repro.index`).  On by default; turning it off
            forces the sequential paths — results are identical either
            way (the equivalence the property suite checks).
        max_lag_seq: staleness bound for routed reads, in journal
            records behind the primary's committed watermark.  Only
            consulted by :class:`~repro.cluster.QueryRouter`: a read
            may be served by a replica at most this many records
            stale; when no backend qualifies the call fails with a
            transient :class:`~repro.errors.ReplicaLagError` rather
            than silently serving staler data.  ``0`` demands
            fully-caught-up state; None (the default) accepts any
            healthy backend.  Ignored on the in-process path (lag is
            zero by definition).
    """

    optimize: bool = False
    semantics: str | ApplySemantics | None = None
    bindings: Mapping[str, "PythonValue"] | None = None
    collect_stats: bool = False
    explain: bool = False
    timeout_ms: float | None = None
    cancel: "CancelToken | None" = None
    use_indexes: bool = True
    max_lag_seq: int | None = None

    def __post_init__(self) -> None:
        if self.semantics is not None and not isinstance(
            self.semantics, ApplySemantics
        ):
            ApplySemantics(self.semantics)  # raises ValueError when invalid
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive (or None)")
        if self.max_lag_seq is not None and self.max_lag_seq < 0:
            raise ValueError("max_lag_seq must be >= 0 (or None)")

    @property
    def resolved_semantics(self) -> ApplySemantics | None:
        """The semantics field as an :class:`ApplySemantics` (or None)."""
        if self.semantics is None or isinstance(self.semantics, ApplySemantics):
            return self.semantics
        return ApplySemantics(self.semantics)


_DEFAULT_OPTIONS = ExecutionOptions()

# Sentinel distinguishing "optimize passed positionally" (deprecated) from
# "not passed at all" in the Engine method shims below.
_UNSET = object()


def _shim_positional_optimize(value, optimize, method: str):
    """Support the pre-ExecutionOptions positional ``optimize`` argument.

    ``engine.execute(q, True)`` keeps working for now but warns; the
    keyword form wins when both are given.
    """
    if value is _UNSET:
        return optimize
    warnings.warn(
        f"passing 'optimize' positionally to Engine.{method}() is "
        "deprecated; use optimize=... or "
        "options=ExecutionOptions(optimize=...)",
        DeprecationWarning,
        stacklevel=3,
    )
    if optimize is None:
        return value
    return optimize


def _merge_options(
    options: ExecutionOptions | None, **overrides
) -> ExecutionOptions:
    """Resolve an options object against explicit keyword overrides.

    Explicit keywords (non-None) take precedence over the options object;
    omitted keywords fall back to the options fields, then to the
    :class:`ExecutionOptions` defaults.
    """
    base = options if options is not None else _DEFAULT_OPTIONS
    updates = {
        name: value for name, value in overrides.items() if value is not None
    }
    if updates:
        base = replace(base, **updates)
    return base


def to_sequence(value: PythonValue) -> Sequence:
    """Coerce a Python value into an XDM sequence."""
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        out: Sequence = []
        for item in value:
            out.extend(to_sequence(item))
        return out
    if isinstance(value, (Node, AtomicValue)):
        return [value]
    if isinstance(value, bool):
        return [AtomicValue.boolean(value)]
    if isinstance(value, int):
        return [AtomicValue.integer(value)]
    if isinstance(value, float):
        return [AtomicValue.double(value)]
    from decimal import Decimal

    if isinstance(value, Decimal):
        return [AtomicValue.decimal(value)]
    if isinstance(value, str):
        return [AtomicValue.string(value)]
    raise XQueryError(f"cannot convert {type(value).__name__} to an XDM value")


class QueryResult:
    """The value of a query, with conveniences for tests and examples.

    ``stats`` is a :class:`~repro.obs.report.QueryStats` when the query ran
    with ``collect_stats=True`` (None otherwise); ``explain`` is an
    :class:`~repro.obs.report.ExplainReport` when requested.
    """

    def __init__(
        self,
        items: Sequence,
        engine: "Engine",
        stats: Optional[QueryStats] = None,
        explain: Optional[ExplainReport] = None,
    ):
        self.items = items
        self._engine = engine
        self.stats = stats
        self.explain = explain

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def serialize(self, indent: bool = False) -> str:
        """XML serialization of the result sequence."""
        return serialize_sequence(self.items, indent)

    def strings(self) -> list[str]:
        """fn:string of every item."""
        return [item_string(item) for item in self.items]

    def first_value(self):
        """The Python value of the first item (None when empty)."""
        if not self.items:
            return None
        item = self.items[0]
        if isinstance(item, AtomicValue):
            return item.value
        return item

    def values(self) -> list:
        """Python values of all atomic items; nodes stay as handles."""
        return [
            item.value if isinstance(item, AtomicValue) else item
            for item in self.items
        ]

    def __repr__(self) -> str:
        return f"QueryResult({self.serialize()!r})"


class Engine:
    """An XQuery! processor instance: one store, one set of bindings.

    Parameters:
        default_semantics: update-application semantics for the implicit
            top-level snap and any ``snap`` without an explicit keyword —
            'ordered' (default), 'nondeterministic' or 'conflict-detection'.
        trace_sink: callable receiving fn:trace messages.
        atomic_snaps: roll the store back when a snap's update list fails
            a precondition mid-application (failure containment).
        static_checks: validate variable scoping and function resolution
            before evaluating (catches typos before any update fires).
        prepared_cache_size: capacity of the prepared-query LRU that
            ``execute`` is transparently routed through (see ``prepare``).
        on_slow_query: callable receiving a
            :class:`~repro.obs.report.SlowQueryRecord` whenever a query
            (prepared or direct) takes at least ``slow_query_ms``
            milliseconds of wall time.  The record carries the query's
            stats when the call collected them.
        slow_query_ms: threshold for ``on_slow_query`` (default 100 ms).
        journal: a :class:`~repro.durability.Journal`; every snap
            application appends one durable record before it is
            acknowledged.  Usually installed by
            :class:`~repro.durability.DurableEngine`, which also owns
            recovery and checkpoint compaction.
    """

    def __init__(
        self,
        default_semantics: str = "ordered",
        trace_sink: Callable[[str], None] | None = None,
        atomic_snaps: bool = False,
        static_checks: bool = False,
        prepared_cache_size: int = 128,
        on_slow_query: Callable[[SlowQueryRecord], None] | None = None,
        slow_query_ms: float = 100.0,
        journal=None,
    ):
        self.store = Store()
        self.functions: FunctionRegistry = default_registry()
        self.evaluator = Evaluator(
            self.store, self.functions, trace_sink, atomic_snaps=atomic_snaps
        )
        self.evaluator.journal = journal
        self.default_semantics = ApplySemantics(default_semantics)
        self.static_checks = static_checks
        # Library-module system: uri -> source text, plus load bookkeeping.
        self._module_library: dict[str, str] = {}
        self._loaded_modules: dict[str, tuple[list, str | None]] = {}
        self._loading: set[str] = set()
        self.prepared_cache = PreparedQueryCache(prepared_cache_size)
        self.on_slow_query = on_slow_query
        self.slow_query_ms = slow_query_ms
        # Serializes preparation (frontend + prolog registration) and
        # module loading.  Two threads preparing the same query must not
        # each register the prolog's functions — the second registration
        # would bump the registry generation and evict every cached
        # prepared query, including the first thread's.  Reentrant:
        # preparing can recursively load imported modules.
        self._prepare_lock = threading.RLock()
        # OCC bookkeeping for sessions/transactions, created on first use.
        self._txn_manager = None

    @property
    def journal(self):
        """The write-ahead journal snap applications commit to (or None).

        Lives on the evaluator so every apply path — direct, prepared,
        algebra-driven — sees it without extra plumbing, the same
        discipline as the tracer and execution control.
        """
        return self.evaluator.journal

    @journal.setter
    def journal(self, journal) -> None:
        self.evaluator.journal = journal

    def _maybe_check(self, module: core.CModule) -> None:
        if self.static_checks:
            from repro.lang.static_check import check_module

            check_module(
                module, self.functions, set(self.evaluator.globals)
            )

    # ------------------------------------------------------------------
    # Data loading and variable binding
    # ------------------------------------------------------------------

    def load_document(self, name: str, xml_text: str) -> Node:
        """Parse *xml_text* into the store, bind ``$name`` to the document
        node and register it in the fn:doc catalog under *name*."""
        doc = parse_document(xml_text, self.store)
        self.bind(name, doc)
        self.evaluator.documents[name] = doc
        return doc

    def parse_fragment(self, xml_text: str) -> Node:
        """Parse a single element into this engine's store (parentless)."""
        return parse_fragment(xml_text, self.store)

    def bind(self, name: str, value: PythonValue) -> None:
        """Bind the global variable ``$name``."""
        self.evaluator.globals[name] = to_sequence(value)

    def variable(self, name: str) -> Sequence:
        """Current value of a global variable.

        Raises :class:`~repro.errors.DynamicError` (XPDY0002) when the
        variable is not bound, naming the variable.
        """
        try:
            return self.evaluator.globals[name]
        except KeyError:
            raise DynamicError(f"variable ${name} is not bound") from None

    # ------------------------------------------------------------------
    # Modules
    # ------------------------------------------------------------------

    def register_module(self, uri: str, text: str) -> None:
        """Make a library module available to ``import module namespace
        p = "uri"``.  The text is parsed lazily on first import.

        Invalidates the prepared-query cache: a newly available module can
        change how an ``import`` (and hence name resolution) resolves."""
        with self._prepare_lock:
            self._module_library[uri] = text
            self.prepared_cache.clear()

    def _resolve_imports(self, module: core.CModule) -> None:
        for prefix, uri in module.imports:
            self._import_module(prefix, uri)

    def _import_module(self, prefix: str, uri: str) -> None:
        if uri in self._loading:
            raise DynamicError(f"circular module import of {uri!r}")
        if uri not in self._loaded_modules:
            text = self._module_library.get(uri)
            if text is None:
                raise DynamicError(
                    f"no module registered for namespace {uri!r}; call "
                    "Engine.register_module(uri, text) first"
                )
            self._loading.add(uri)
            try:
                library = simplify_module(normalize_module(parse_module(text)))
                self._resolve_imports(library)
                functions = []
                for decl in library.declarations:
                    if isinstance(decl, core.CFunction):
                        self.functions.register_user(decl)
                        functions.append(decl)
                self._maybe_check(library)
                for decl in library.declarations:
                    if isinstance(decl, core.CVarDecl) and decl.expr is not None:
                        value = self.evaluator.run_snapped(
                            decl.expr, self._context(), self.default_semantics
                        )
                        self.evaluator.globals[decl.name] = value
                self._loaded_modules[uri] = (functions, library.declared_prefix)
            finally:
                self._loading.discard(uri)
        functions, lib_prefix = self._loaded_modules[uri]
        # Expose the library's functions and variables under the
        # *importer's* prefix.
        for function in functions:
            local = function.name.split(":")[-1]
            self.functions.register_user_as(f"{prefix}:{local}", function)
        if lib_prefix:
            for name, value in list(self.evaluator.globals.items()):
                if name.startswith(f"{lib_prefix}:"):
                    local = name.split(":", 1)[1]
                    self.evaluator.globals.setdefault(
                        f"{prefix}:{local}", value
                    )

    def load_module(self, text: str) -> Optional[QueryResult]:
        """Load a module: register its functions, evaluate its variable
        declarations in order (each under the implicit snap), and run the
        query body if there is one.

        Invalidates the prepared-query cache: newly declared functions can
        change name resolution and the optimizer's purity verdicts for
        queries prepared earlier."""
        with self._prepare_lock:
            return self._load_module_locked(text)

    def _load_module_locked(self, text: str) -> Optional[QueryResult]:
        self.prepared_cache.clear()
        module = simplify_module(normalize_module(parse_module(text)))
        self._resolve_imports(module)
        result: Optional[QueryResult] = None
        for decl in module.declarations:
            if isinstance(decl, core.CFunction):
                self.functions.register_user(decl)
        self._maybe_check(module)
        for decl in module.declarations:
            if isinstance(decl, core.CVarDecl):
                if decl.expr is None:
                    if decl.name not in self.evaluator.globals:
                        raise DynamicError(
                            f"external variable ${decl.name} is not bound"
                        )
                    continue
                value = self.evaluator.run_snapped(
                    decl.expr, self._context(), self.default_semantics
                )
                self.evaluator.globals[decl.name] = value
        if module.body is not None:
            result = self._run(module.body)
        return result

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        _positional_optimize=_UNSET,
        *,
        optimize: bool | None = None,
        semantics: str | ApplySemantics | None = None,
        bindings: Mapping[str, PythonValue] | None = None,
        collect_stats: bool | None = None,
        explain: bool | None = None,
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
        use_indexes: bool | None = None,
        options: ExecutionOptions | None = None,
    ) -> QueryResult:
        """Parse, normalize and evaluate *query* (which may include a
        prolog).  With ``optimize=True`` the query body is compiled to the
        nested-relational algebra and rewritten before execution
        (Section 4).

        All options are keyword-only; an :class:`ExecutionOptions` can be
        passed via ``options=`` and individual keywords override its
        fields.  ``bindings`` supplies values for free ``$variables`` for
        this call only; ``collect_stats=True`` attaches a
        :class:`~repro.obs.report.QueryStats` to the result and
        ``explain=True`` an :class:`~repro.obs.report.ExplainReport`.

        Transparently routed through the prepared-query cache: repeating
        the same query text skips the whole frontend (see ``prepare``).
        Dynamic prolog steps — variable-declaration initializers under the
        implicit snap — still run on every call."""
        optimize = _shim_positional_optimize(
            _positional_optimize, optimize, "execute"
        )
        opts = _merge_options(
            options,
            optimize=optimize,
            semantics=semantics,
            bindings=bindings,
            collect_stats=collect_stats,
            explain=explain,
            timeout_ms=timeout_ms,
            cancel=cancel,
            use_indexes=use_indexes,
        )
        tracer = Tracer() if opts.collect_stats else None
        prepared = self._prepare(
            query, opts.optimize, opts.resolved_semantics, tracer
        )
        return prepared.execute(options=opts, _tracer=tracer)

    def prepare(
        self,
        query: str,
        _positional_optimize=_UNSET,
        *,
        optimize: bool | None = None,
        semantics: str | ApplySemantics | None = None,
        options: ExecutionOptions | None = None,
    ) -> PreparedQuery:
        """Run the frontend once — parse → normalize → simplify → static
        check → (with ``optimize=True``) compile and rewrite to the
        algebra — and return a reusable :class:`PreparedQuery`.

        Results are cached in a bounded LRU keyed by ``(query text,
        optimize, snap semantics)``; ``register_module`` and
        ``load_module`` invalidate the cache, as does any change to the
        set of registered user functions.  ``bindings``/``collect_stats``/
        ``explain`` options take effect per *execution*, so they are
        accepted here (inside ``options=``) but only read by
        :meth:`PreparedQuery.execute`.

        Per-call parameters bind free ``$variables`` at execute time::

            pq = engine.prepare('get_item($itemid, $userid)')
            pq.execute(bindings={"itemid": "item3", "userid": "person7"})
        """
        optimize = _shim_positional_optimize(
            _positional_optimize, optimize, "prepare"
        )
        opts = _merge_options(options, optimize=optimize, semantics=semantics)
        return self._prepare(query, opts.optimize, opts.resolved_semantics)

    def compile(
        self,
        query: str,
        _positional_optimize=_UNSET,
        *,
        optimize: bool | None = None,
        semantics: str | ApplySemantics | None = None,
        options: ExecutionOptions | None = None,
    ):
        """Compile *query* to an algebra plan without running it.  Returns
        the plan; useful for inspecting rewrites.  Prolog functions are
        registered (the purity analysis needs their bodies) but variable
        initializers are *not* evaluated.

        For backward compatibility ``compile`` alone optimizes by default:
        when neither ``optimize=`` nor ``options=`` is given it behaves as
        ``optimize=True``."""
        optimize = _shim_positional_optimize(
            _positional_optimize, optimize, "compile"
        )
        if optimize is None and options is None:
            optimize = True
        opts = _merge_options(options, optimize=optimize, semantics=semantics)
        from repro.algebra.compile import compile_query

        snapshot = self.functions.snapshot()
        try:
            module = self._frontend(query, None)
            self._resolve_imports(module)
            for decl in module.declarations:
                if isinstance(decl, core.CFunction):
                    self.functions.register_user(decl)
            if module.body is None:
                raise DynamicError("query has no body to compile")
            return compile_query(
                module.body,
                self,
                optimize=opts.optimize,
                semantics=opts.resolved_semantics,
            )
        except RecursionError:
            # Hostile depth: normalize/simplify/compile recurse over the
            # AST, so a query nested past the interpreter's headroom must
            # become a typed refusal, not a stack crash.
            self.functions.restore(snapshot)
            raise StaticError(
                "query nests too deeply to compile; refused"
            ) from None
        except Exception:
            # Compilation failed: undo this query's prolog registrations so
            # a broken query cannot shift name resolution (or bump the
            # registry generation, evicting every cached prepared query).
            self.functions.restore(snapshot)
            raise

    def explain(self, query: str) -> ExplainReport:
        """The optimizer's decisions for *query*, without running it.

        Returns an :class:`~repro.obs.report.ExplainReport` with the plan
        before and after rewriting, every rewrite rule considered (fired or
        not, with the guard detail) and the per-clause purity verdicts the
        guards were based on.  Side-effect-free: prolog function
        registrations are rolled back afterwards."""
        from repro.algebra.compile import compile_query
        from repro.algebra.plan import plan_operators, pretty_plan

        snapshot = self.functions.snapshot()
        try:
            module = self._frontend(query, None)
            self._resolve_imports(module)
            for decl in module.declarations:
                if isinstance(decl, core.CFunction):
                    self.functions.register_user(decl)
            self._maybe_check(module)
            if module.body is None:
                raise DynamicError("query has no body to explain")
            naive = compile_query(module.body, self, optimize=False)
            tracer = Tracer()
            optimized = compile_query(
                module.body, self, optimize=True, tracer=tracer
            )
        finally:
            self.functions.restore(snapshot)
        return ExplainReport(
            query_text=query,
            plan_before=pretty_plan(naive),
            plan_after=pretty_plan(optimized),
            operators_before=plan_operators(naive),
            operators_after=plan_operators(optimized),
            rules=list(tracer.rules),
            purity=list(tracer.purity),
            costs=list(tracer.costs),
        )

    def _frontend(
        self, query: str, tracer: Tracer | None
    ) -> core.CModule:
        """parse → normalize → simplify, with per-phase spans when traced."""
        with maybe_span(tracer, "parse"):
            module = parse_module(query)
        with maybe_span(tracer, "normalize"):
            module = normalize_module(module)
        with maybe_span(tracer, "simplify"):
            module = simplify_module(module)
        return module

    def _prepare(
        self,
        query: str,
        optimize: bool,
        semantics: ApplySemantics | None = None,
        tracer: Tracer | None = None,
    ) -> PreparedQuery:
        resolved = semantics or self.default_semantics
        key = (query, optimize, resolved.value)
        # The whole lookup-or-build runs under the prepare lock: when two
        # threads race on the same uncached query, the second must find
        # the first's entry instead of re-registering the prolog (which
        # would bump the registry generation and evict every cached
        # entry).  Uncontended acquisition is noise next to execution.
        with self._prepare_lock:
            cached = self.prepared_cache.lookup(key, self.functions.generation)
            if cached is not None:
                if tracer is not None:
                    tracer.count("prepared_cache.hits")
                return cached
            if tracer is not None:
                tracer.count("prepared_cache.misses")
            return self._prepare_locked(
                query, optimize, resolved, tracer, key
            )

    def _prepare_locked(
        self,
        query: str,
        optimize: bool,
        resolved: ApplySemantics,
        tracer: Tracer | None,
        key: tuple,
    ) -> PreparedQuery:
        snapshot = self.functions.snapshot()
        try:
            module = self._frontend(query, tracer)
            self._resolve_imports(module)
            for decl in module.declarations:
                if isinstance(decl, core.CFunction):
                    self.functions.register_user(decl)
            with maybe_span(tracer, "static-check"):
                self._maybe_check(module)
            plan = None
            if optimize and module.body is not None:
                from repro.algebra.compile import compile_query

                with maybe_span(tracer, "compile"):
                    plan = compile_query(
                        module.body,
                        self,
                        optimize=True,
                        semantics=resolved,
                        tracer=tracer,
                    )
        except RecursionError:
            # Hostile depth past the parser's guard: the normalize /
            # simplify / static-check / compile phases are recursive too,
            # so depth that survives parsing must still end as a typed
            # refusal with the registry restored, never a stack crash.
            self.functions.restore(snapshot)
            raise StaticError(
                "query nests too deeply to prepare; refused"
            ) from None
        except Exception:
            # Scoped prolog registration: a query that fails to prepare
            # leaves the function registry (and its generation, hence the
            # prepared cache) exactly as it found them.
            self.functions.restore(snapshot)
            raise
        prepared = PreparedQuery(
            engine=self,
            query_text=query,
            module=module,
            plan=plan,
            optimize=optimize,
            generation=self.functions.generation,
            semantics=resolved,
        )
        self.prepared_cache.store(key, prepared)
        return prepared

    def _run(self, body: core.CoreExpr, optimize: bool = False) -> QueryResult:
        if optimize:
            from repro.algebra.compile import compile_query
            from repro.algebra.execute import execute_plan

            plan = compile_query(body, self, optimize=True)
            items = execute_plan(plan, self)
            return QueryResult(items, self)
        items = self.evaluator.run_snapped(
            body, self._context(), self.default_semantics
        )
        return QueryResult(items, self)

    def _context(self) -> DynamicContext:
        return DynamicContext(dict(self.evaluator.globals))

    # ------------------------------------------------------------------
    # Sessions and transactions (multi-query atomicity)
    # ------------------------------------------------------------------

    @property
    def txn_manager(self):
        """The engine's :class:`~repro.txn.TransactionManager` (lazy).

        Shared by every session opened on this engine; once it exists,
        autocommitted (non-session) Δs are published to it too, so open
        transactions validate against direct writes as well.
        """
        if self._txn_manager is None:
            from repro.txn.session import TransactionManager

            self._txn_manager = TransactionManager()
            self.evaluator.txn_log = self._txn_manager
        return self._txn_manager

    def session(
        self,
        *,
        semantics: str | ApplySemantics | None = None,
        tracer: Tracer | None = None,
        limits=None,
        on_commit: Callable[[], None] | None = None,
    ):
        """Open a :class:`~repro.txn.Session` on this engine.

        The one transactional surface shared by ``Engine``,
        ``DurableEngine``, ``ConcurrentExecutor`` and the auction
        service: ``session.execute(...)`` buffers statements on a
        private MVCC snapshot (read-your-writes), ``session.commit()``
        validates optimistically (first-committer-wins, §3.2 rules)
        and applies atomically — as one journal frame group when the
        engine is durable.  Keyword-only knobs: *semantics* (default
        snap semantics for the session's statements), *tracer*
        (receives ``txn.*`` counters and spans), *limits* (an
        :class:`~repro.resilience.admission.AdmissionLimits` bounding
        the merged Δ at commit), *on_commit* (post-commit hook, e.g.
        compaction).
        """
        from repro.txn import Session

        return Session(
            self,
            semantics=semantics,
            tracer=tracer,
            limits=limits,
            on_commit=on_commit,
        )

    def transaction(self):
        """Group several ``execute`` calls into an all-or-nothing unit.

        .. deprecated:: 1.4
            Use :meth:`session` — ``with engine.session() as s:`` plus
            ``s.transaction()`` — which adds snapshot isolation,
            optimistic conflict validation and group-atomic journaling.
            This shim keeps the historical checkpoint/rollback contract
            (engine-level ``execute`` calls inside the block write the
            live store immediately; an exception restores store and
            bindings) and will be removed in a future release.
        """
        # Warn at call time, not at __enter__, so the warning points at
        # the caller's `engine.transaction()` line.
        warnings.warn(
            "Engine.transaction() is deprecated; use Engine.session() "
            "for snapshot-isolated, conflict-validated transactions",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._legacy_transaction()

    @contextmanager
    def _legacy_transaction(self):
        checkpoint = self.store.checkpoint()
        globals_snapshot = {
            name: list(value)
            for name, value in self.evaluator.globals.items()
        }
        documents_snapshot = dict(self.evaluator.documents)
        try:
            yield self
        except BaseException:
            self.store.restore(checkpoint)
            self.evaluator.globals = globals_snapshot
            self.evaluator.documents = documents_snapshot
            raise

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def health(self):
        """A structured liveness report for this engine.

        The base engine is in-memory and always HEALTHY; the report
        carries an ``engine`` section (store size, bindings, prepared
        cache) that wrappers — :class:`~repro.durability.DurableEngine`,
        :class:`~repro.concurrent.ConcurrentExecutor` — extend with
        durability and serving sections and may downgrade.
        """
        from repro.resilience.health import HealthReport

        report = HealthReport()
        report.sections["engine"] = {
            "store_nodes": len(self.store._records),
            "next_node_id": self.store._next_id,
            "globals": len(self.evaluator.globals),
            "documents": len(self.evaluator.documents),
            "prepared_cached": len(self.prepared_cache),
            "journal_attached": self.evaluator.journal is not None,
        }
        return report

    def serialize(self, items: Iterable[Item], indent: bool = False) -> str:
        """Serialize any sequence of items from this engine's store."""
        return serialize_sequence(list(items), indent)

    def gc(self) -> int:
        """Reclaim store records unreachable from any global binding."""
        live: list[int] = []
        for value in self.evaluator.globals.values():
            for item in value:
                if isinstance(item, Node):
                    live.append(item.nid)
        return self.store.gc(live)
