"""The public engine facade.

Typical use::

    from repro import Engine

    engine = Engine()
    engine.load_document("auction", xmark_xml_text)
    engine.bind("log", engine.parse_fragment("<log/>"))
    result = engine.execute('count($auction//person)')
    print(result.first_value())

``execute`` runs the full pipeline of the paper's Section 4.2: parse →
normalize → (optionally compile to the algebra and optimize) → evaluate,
with the implicit top-level ``snap`` wrapped around the query body
(Section 2.3).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Optional, Union

from repro.errors import DynamicError, XQueryError
from repro.lang import core_ast as core
from repro.lang.normalize import normalize, normalize_module
from repro.lang.simplify import simplify_module
from repro.lang.parser import parse_module
from repro.prepared import PreparedQuery, PreparedQueryCache
from repro.semantics.context import DynamicContext, FunctionRegistry
from repro.semantics.evaluator import Evaluator
from repro.semantics.functions import default_registry
from repro.semantics.update import ApplySemantics
from repro.xdm.nodes import Node
from repro.xdm.store import Store
from repro.xdm.values import AtomicValue, Item, Sequence, item_string
from repro.xmlio.parser import parse_document, parse_fragment
from repro.xmlio.serializer import serialize_sequence


PythonValue = Union[None, bool, int, float, str, Node, AtomicValue, list, tuple]


def to_sequence(value: PythonValue) -> Sequence:
    """Coerce a Python value into an XDM sequence."""
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        out: Sequence = []
        for item in value:
            out.extend(to_sequence(item))
        return out
    if isinstance(value, (Node, AtomicValue)):
        return [value]
    if isinstance(value, bool):
        return [AtomicValue.boolean(value)]
    if isinstance(value, int):
        return [AtomicValue.integer(value)]
    if isinstance(value, float):
        return [AtomicValue.double(value)]
    from decimal import Decimal

    if isinstance(value, Decimal):
        return [AtomicValue.decimal(value)]
    if isinstance(value, str):
        return [AtomicValue.string(value)]
    raise XQueryError(f"cannot convert {type(value).__name__} to an XDM value")


class QueryResult:
    """The value of a query, with conveniences for tests and examples."""

    def __init__(self, items: Sequence, engine: "Engine"):
        self.items = items
        self._engine = engine

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def serialize(self, indent: bool = False) -> str:
        """XML serialization of the result sequence."""
        return serialize_sequence(self.items, indent)

    def strings(self) -> list[str]:
        """fn:string of every item."""
        return [item_string(item) for item in self.items]

    def first_value(self):
        """The Python value of the first item (None when empty)."""
        if not self.items:
            return None
        item = self.items[0]
        if isinstance(item, AtomicValue):
            return item.value
        return item

    def values(self) -> list:
        """Python values of all atomic items; nodes stay as handles."""
        return [
            item.value if isinstance(item, AtomicValue) else item
            for item in self.items
        ]

    def __repr__(self) -> str:
        return f"QueryResult({self.serialize()!r})"


class Engine:
    """An XQuery! processor instance: one store, one set of bindings.

    Parameters:
        default_semantics: update-application semantics for the implicit
            top-level snap and any ``snap`` without an explicit keyword —
            'ordered' (default), 'nondeterministic' or 'conflict-detection'.
        trace_sink: callable receiving fn:trace messages.
        atomic_snaps: roll the store back when a snap's update list fails
            a precondition mid-application (failure containment).
        static_checks: validate variable scoping and function resolution
            before evaluating (catches typos before any update fires).
        prepared_cache_size: capacity of the prepared-query LRU that
            ``execute`` is transparently routed through (see ``prepare``).
    """

    def __init__(
        self,
        default_semantics: str = "ordered",
        trace_sink: Callable[[str], None] | None = None,
        atomic_snaps: bool = False,
        static_checks: bool = False,
        prepared_cache_size: int = 128,
    ):
        self.store = Store()
        self.functions: FunctionRegistry = default_registry()
        self.evaluator = Evaluator(
            self.store, self.functions, trace_sink, atomic_snaps=atomic_snaps
        )
        self.default_semantics = ApplySemantics(default_semantics)
        self.static_checks = static_checks
        # Library-module system: uri -> source text, plus load bookkeeping.
        self._module_library: dict[str, str] = {}
        self._loaded_modules: dict[str, tuple[list, str | None]] = {}
        self._loading: set[str] = set()
        self.prepared_cache = PreparedQueryCache(prepared_cache_size)

    def _maybe_check(self, module: core.CModule) -> None:
        if self.static_checks:
            from repro.lang.static_check import check_module

            check_module(
                module, self.functions, set(self.evaluator.globals)
            )

    # ------------------------------------------------------------------
    # Data loading and variable binding
    # ------------------------------------------------------------------

    def load_document(self, name: str, xml_text: str) -> Node:
        """Parse *xml_text* into the store, bind ``$name`` to the document
        node and register it in the fn:doc catalog under *name*."""
        doc = parse_document(xml_text, self.store)
        self.bind(name, doc)
        self.evaluator.documents[name] = doc
        return doc

    def parse_fragment(self, xml_text: str) -> Node:
        """Parse a single element into this engine's store (parentless)."""
        return parse_fragment(xml_text, self.store)

    def bind(self, name: str, value: PythonValue) -> None:
        """Bind the global variable ``$name``."""
        self.evaluator.globals[name] = to_sequence(value)

    def variable(self, name: str) -> Sequence:
        """Current value of a global variable."""
        return self.evaluator.globals[name]

    # ------------------------------------------------------------------
    # Modules
    # ------------------------------------------------------------------

    def register_module(self, uri: str, text: str) -> None:
        """Make a library module available to ``import module namespace
        p = "uri"``.  The text is parsed lazily on first import.

        Invalidates the prepared-query cache: a newly available module can
        change how an ``import`` (and hence name resolution) resolves."""
        self._module_library[uri] = text
        self.prepared_cache.clear()

    def _resolve_imports(self, module: core.CModule) -> None:
        for prefix, uri in module.imports:
            self._import_module(prefix, uri)

    def _import_module(self, prefix: str, uri: str) -> None:
        if uri in self._loading:
            raise DynamicError(f"circular module import of {uri!r}")
        if uri not in self._loaded_modules:
            text = self._module_library.get(uri)
            if text is None:
                raise DynamicError(
                    f"no module registered for namespace {uri!r}; call "
                    "Engine.register_module(uri, text) first"
                )
            self._loading.add(uri)
            try:
                library = simplify_module(normalize_module(parse_module(text)))
                self._resolve_imports(library)
                functions = []
                for decl in library.declarations:
                    if isinstance(decl, core.CFunction):
                        self.functions.register_user(decl)
                        functions.append(decl)
                self._maybe_check(library)
                for decl in library.declarations:
                    if isinstance(decl, core.CVarDecl) and decl.expr is not None:
                        value = self.evaluator.run_snapped(
                            decl.expr, self._context(), self.default_semantics
                        )
                        self.evaluator.globals[decl.name] = value
                self._loaded_modules[uri] = (functions, library.declared_prefix)
            finally:
                self._loading.discard(uri)
        functions, lib_prefix = self._loaded_modules[uri]
        # Expose the library's functions and variables under the
        # *importer's* prefix.
        for function in functions:
            local = function.name.split(":")[-1]
            self.functions.register_user_as(f"{prefix}:{local}", function)
        if lib_prefix:
            for name, value in list(self.evaluator.globals.items()):
                if name.startswith(f"{lib_prefix}:"):
                    local = name.split(":", 1)[1]
                    self.evaluator.globals.setdefault(
                        f"{prefix}:{local}", value
                    )

    def load_module(self, text: str) -> Optional[QueryResult]:
        """Load a module: register its functions, evaluate its variable
        declarations in order (each under the implicit snap), and run the
        query body if there is one.

        Invalidates the prepared-query cache: newly declared functions can
        change name resolution and the optimizer's purity verdicts for
        queries prepared earlier."""
        self.prepared_cache.clear()
        module = simplify_module(normalize_module(parse_module(text)))
        self._resolve_imports(module)
        result: Optional[QueryResult] = None
        for decl in module.declarations:
            if isinstance(decl, core.CFunction):
                self.functions.register_user(decl)
        self._maybe_check(module)
        for decl in module.declarations:
            if isinstance(decl, core.CVarDecl):
                if decl.expr is None:
                    if decl.name not in self.evaluator.globals:
                        raise DynamicError(
                            f"external variable ${decl.name} is not bound"
                        )
                    continue
                value = self.evaluator.run_snapped(
                    decl.expr, self._context(), self.default_semantics
                )
                self.evaluator.globals[decl.name] = value
        if module.body is not None:
            result = self._run(module.body)
        return result

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def execute(self, query: str, optimize: bool = False) -> QueryResult:
        """Parse, normalize and evaluate *query* (which may include a
        prolog).  With ``optimize=True`` the query body is compiled to the
        nested-relational algebra and rewritten before execution
        (Section 4).

        Transparently routed through the prepared-query cache: repeating
        the same query text skips the whole frontend (see ``prepare``).
        Dynamic prolog steps — variable-declaration initializers under the
        implicit snap — still run on every call."""
        return self.prepare(query, optimize=optimize).execute()

    def prepare(self, query: str, optimize: bool = False) -> PreparedQuery:
        """Run the frontend once — parse → normalize → simplify → static
        check → (with ``optimize=True``) compile and rewrite to the
        algebra — and return a reusable :class:`PreparedQuery`.

        Results are cached in a bounded LRU keyed by ``(query text,
        optimize, default snap semantics)``; ``register_module`` and
        ``load_module`` invalidate the cache, as does any change to the
        set of registered user functions.

        Per-call parameters bind free ``$variables`` at execute time::

            pq = engine.prepare('get_item($itemid, $userid)')
            pq.execute(bindings={"itemid": "item3", "userid": "person7"})
        """
        key = (query, optimize, self.default_semantics.value)
        cached = self.prepared_cache.lookup(key, self.functions.generation)
        if cached is not None:
            return cached
        module = simplify_module(normalize_module(parse_module(query)))
        self._resolve_imports(module)
        for decl in module.declarations:
            if isinstance(decl, core.CFunction):
                self.functions.register_user(decl)
        self._maybe_check(module)
        plan = None
        if optimize and module.body is not None:
            from repro.algebra.compile import compile_query

            plan = compile_query(module.body, self, optimize=True)
        prepared = PreparedQuery(
            engine=self,
            query_text=query,
            module=module,
            plan=plan,
            optimize=optimize,
            generation=self.functions.generation,
        )
        self.prepared_cache.store(key, prepared)
        return prepared

    def compile(self, query: str):
        """Compile *query* to an (optimized) algebra plan without running
        it.  Returns the plan; useful for inspecting rewrites.  Prolog
        functions are registered (the purity analysis needs their bodies)
        but variable initializers are *not* evaluated."""
        from repro.algebra.compile import compile_query

        module = simplify_module(normalize_module(parse_module(query)))
        self._resolve_imports(module)
        for decl in module.declarations:
            if isinstance(decl, core.CFunction):
                self.functions.register_user(decl)
        if module.body is None:
            raise DynamicError("query has no body to compile")
        return compile_query(module.body, self, optimize=True)

    def _run(self, body: core.CoreExpr, optimize: bool = False) -> QueryResult:
        if optimize:
            from repro.algebra.compile import compile_query
            from repro.algebra.execute import execute_plan

            plan = compile_query(body, self, optimize=True)
            items = execute_plan(plan, self)
            return QueryResult(items, self)
        items = self.evaluator.run_snapped(
            body, self._context(), self.default_semantics
        )
        return QueryResult(items, self)

    def _context(self) -> DynamicContext:
        return DynamicContext(dict(self.evaluator.globals))

    # ------------------------------------------------------------------
    # Transactions (multi-query atomicity)
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self):
        """Group several ``execute`` calls into an all-or-nothing unit.

        On any exception the store *and* the global bindings roll back to
        the state at entry (the paper treats transactions as orthogonal to
        snap — Section 5 — so this is engine-level plumbing, not language
        semantics)::

            with engine.transaction():
                engine.execute('snap delete { $log/logentry }')
                engine.execute('archive()')   # raise => delete undone
        """
        checkpoint = self.store.checkpoint()
        globals_snapshot = {
            name: list(value)
            for name, value in self.evaluator.globals.items()
        }
        documents_snapshot = dict(self.evaluator.documents)
        try:
            yield self
        except BaseException:
            self.store.restore(checkpoint)
            self.evaluator.globals = globals_snapshot
            self.evaluator.documents = documents_snapshot
            raise

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def serialize(self, items: Iterable[Item], indent: bool = False) -> str:
        """Serialize any sequence of items from this engine's store."""
        return serialize_sequence(list(items), indent)

    def gc(self) -> int:
        """Reclaim store records unreachable from any global binding."""
        live: list[int] = []
        for value in self.evaluator.globals.values():
            for item in value:
                if isinstance(item, Node):
                    live.append(item.nid)
        return self.store.gc(live)
