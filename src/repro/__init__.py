"""XQuery! — an XML query language with side effects.

A complete Python reproduction of Ghelli, Ré & Siméon, *XQuery!: An XML
query language with side effects* (EDBT 2006): a compositional extension of
an XQuery 1.0 subset with first-class updates (insert / delete / replace /
rename / copy) and programmer-controlled update application via the
``snap`` operator, plus the paper's optimizer architecture (purity-guarded
rewrites over a nested-relational algebra).

Quickstart::

    from repro import Engine

    engine = Engine()
    engine.load_document("doc", "<inventory><item id='1'/></inventory>")
    engine.execute('snap insert { <item id="2"/> } into { $doc/inventory }')
    print(engine.execute('count($doc/inventory/item)').first_value())  # 2
"""

from repro.concurrent.control import CancelToken
from repro.concurrent.executor import ConcurrentExecutor
from repro.durability import DurableEngine, FaultInjector, recover
from repro.engine import Engine, ExecutionOptions, QueryResult, to_sequence
from repro.errors import (
    CircuitOpenError,
    DurabilityError,
    JournalCorruptionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReplicaLagError,
    ResourceLimitError,
    ServiceOverloadedError,
    StaleEpochError,
    TransactionConflictError,
    XQueryError,
)
from repro.obs import ExplainReport, QueryStats, SlowQueryRecord, Tracer
from repro.prepared import PreparedQuery, PreparedQueryCache
from repro.resilience import (
    AdmissionLimits,
    CircuitBreaker,
    HealthReport,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.txn import Session, Transaction
from repro.xdm import AtomicValue, Node, NodeKind, Store
from repro.xmlio import parse_document, parse_fragment, serialize

__version__ = "1.7.0"

__all__ = [
    "Engine",
    "ExecutionOptions",
    "QueryResult",
    "PreparedQuery",
    "PreparedQueryCache",
    "QueryStats",
    "ExplainReport",
    "SlowQueryRecord",
    "Tracer",
    "to_sequence",
    "CancelToken",
    "ConcurrentExecutor",
    "DurableEngine",
    "FaultInjector",
    "recover",
    "XQueryError",
    "DurabilityError",
    "JournalCorruptionError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "ServiceOverloadedError",
    "CircuitOpenError",
    "ResourceLimitError",
    "TransactionConflictError",
    "ReplicaLagError",
    "StaleEpochError",
    "Session",
    "Transaction",
    "ResiliencePolicy",
    "RetryPolicy",
    "CircuitBreaker",
    "AdmissionLimits",
    "HealthReport",
    "AtomicValue",
    "Node",
    "NodeKind",
    "Store",
    "parse_document",
    "parse_fragment",
    "serialize",
    "__version__",
]
