"""XML input/output: parsing well-formed documents into the node store and
serializing store subtrees back to XML text.

The paper's data model focuses on well-formed documents (Section 3.2); this
package implements a small, dependency-free XML 1.0 subset parser —
elements, attributes, text, comments, processing instructions, CDATA and the
five predefined entities — which covers XMark-style data and every example
in the paper.
"""

from repro.xmlio.parser import parse_document, parse_fragment
from repro.xmlio.serializer import serialize, serialize_sequence

__all__ = ["parse_document", "parse_fragment", "serialize", "serialize_sequence"]
