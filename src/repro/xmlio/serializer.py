"""Serialization of store subtrees (and mixed sequences) to XML text."""

from __future__ import annotations

from repro.errors import SerializationError
from repro.xdm.nodes import Node
from repro.xdm.store import NodeKind
from repro.xdm.values import AtomicValue, Sequence


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attribute(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def serialize(node: Node, indent: bool = False) -> str:
    """Serialize the subtree rooted at *node* to XML text.

    With ``indent=True`` element-only content is pretty-printed; mixed
    content is always emitted verbatim to preserve the string value.
    """
    parts: list[str] = []
    _serialize_node(node, parts, 0, indent)
    return "".join(parts)


def serialize_sequence(seq: Sequence, indent: bool = False) -> str:
    """Serialize a value: nodes as XML, atomics via their lexical form,
    adjacent atomics separated by a single space (XSLT/XQuery rules)."""
    parts: list[str] = []
    previous_atomic = False
    for item in seq:
        if isinstance(item, AtomicValue):
            if previous_atomic:
                parts.append(" ")
            parts.append(_escape_text(item.lexical()))
            previous_atomic = True
        else:
            parts.append(serialize(item, indent))
            previous_atomic = False
    return "".join(parts)


def _children_are_elements_only(node: Node) -> bool:
    kids = node.children
    if not kids:
        return False
    return all(
        child.kind in (NodeKind.ELEMENT, NodeKind.COMMENT, NodeKind.PROCESSING_INSTRUCTION)
        for child in kids
    )


def _serialize_node(node: Node, parts: list[str], depth: int, indent: bool) -> None:
    kind = node.kind
    pad = "  " * depth if indent else ""
    if kind is NodeKind.DOCUMENT:
        for child in node.children:
            _serialize_node(child, parts, depth, indent)
            if indent:
                parts.append("\n")
        return
    if kind is NodeKind.TEXT:
        parts.append(_escape_text(node.string_value))
        return
    if kind is NodeKind.COMMENT:
        parts.append(f"<!--{node.string_value}-->")
        return
    if kind is NodeKind.PROCESSING_INSTRUCTION:
        value = node.string_value
        body = f" {value}" if value else ""
        parts.append(f"<?{node.name}{body}?>")
        return
    if kind is NodeKind.ATTRIBUTE:
        raise SerializationError(
            "cannot serialize a free-standing attribute node"
        )
    # Element.
    parts.append(f"<{node.name}")
    for attr in node.attributes:
        parts.append(f' {attr.name}="{_escape_attribute(attr.string_value)}"')
    kids = node.children
    if not kids:
        parts.append("/>")
        return
    parts.append(">")
    if indent and _children_are_elements_only(node):
        for child in kids:
            parts.append("\n" + "  " * (depth + 1))
            _serialize_node(child, parts, depth + 1, indent)
        parts.append("\n" + pad)
    else:
        for child in kids:
            _serialize_node(child, parts, depth + 1, False)
    parts.append(f"</{node.name}>")
