"""A small well-formed XML parser targeting the node store.

Hand-written single-pass scanner.  Supported: the XML declaration, elements,
attributes (single or double quoted), character data, the five predefined
entities plus decimal/hexadecimal character references, CDATA sections,
comments and processing instructions.  Not supported (out of scope for the
paper, Section 3.2 "well-formed documents"): DTDs, general entities,
namespaces beyond lexical prefixes.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xdm.nodes import Node
from repro.xdm.store import Store

_PREDEFINED = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_NAME_START = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Cursor over the input text with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)

    def location(self) -> tuple[int, int]:
        line = self.text.count("\n", 0, self.pos) + 1
        last_nl = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_nl
        return line, column

    def error(self, message: str) -> XMLParseError:
        line, column = self.location()
        return XMLParseError(message, line, column)

    def eof(self) -> bool:
        return self.pos >= self.n

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.n else ""

    def startswith(self, s: str) -> bool:
        return self.text.startswith(s, self.pos)

    def advance(self, k: int = 1) -> None:
        self.pos += k

    def expect(self, s: str) -> None:
        if not self.startswith(s):
            raise self.error(f"expected {s!r}")
        self.pos += len(s)

    def skip_whitespace(self) -> None:
        while self.pos < self.n and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_until(self, marker: str, what: str) -> str:
        end = self.text.find(marker, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        out = self.text[self.pos : end]
        self.pos = end + len(marker)
        return out

    def read_name(self) -> str:
        start = self.pos
        if self.pos >= self.n or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.n and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]


def _decode(text: str, sc: _Scanner) -> str:
    """Resolve predefined entities and character references in *text*."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        c = text[i]
        if c != "&":
            out.append(c)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end < 0:
            raise sc.error("unterminated entity reference")
        name = text[i + 1 : end]
        try:
            if name.startswith("#x") or name.startswith("#X"):
                out.append(chr(int(name[2:], 16)))
            elif name.startswith("#"):
                out.append(chr(int(name[1:])))
            else:
                out.append(_PREDEFINED[name])
        except (KeyError, ValueError):
            raise sc.error(f"unknown entity &{name};") from None
        i = end + 1
    return "".join(out)


def parse_document(text: str, store: Store | None = None) -> Node:
    """Parse an XML document; return the document node handle.

    A fresh store is created unless one is supplied.  Hostile input —
    however malformed, nested or oversized — yields a typed
    :class:`~repro.errors.XMLParseError`, never an untyped crash: a
    document nested beyond the interpreter's recursion headroom is
    refused, not allowed to blow the stack.
    """
    store = store if store is not None else Store()
    sc = _Scanner(text)
    doc = store.create_document()
    try:
        _parse_prolog(sc)
        _parse_misc(sc, store, doc)
        if sc.eof() or sc.peek() != "<":
            raise sc.error("expected a root element")
        root = _parse_element(sc, store)
        store.append_child(doc, root)
        _parse_misc(sc, store, doc)
    except RecursionError:
        raise sc.error(
            "document nests too deeply to parse; refused"
        ) from None
    sc.skip_whitespace()
    if not sc.eof():
        raise sc.error("content after the root element")
    return Node(store, doc)


def parse_fragment(text: str, store: Store | None = None) -> Node:
    """Parse a single element (no XML declaration); return its handle.

    The element is parentless — convenient for constructing test fixtures
    and for the examples' literal data.  Same hostile-input contract as
    :func:`parse_document`: malformed or absurdly nested input is a
    typed refusal, never a crash.
    """
    store = store if store is not None else Store()
    sc = _Scanner(text)
    sc.skip_whitespace()
    if sc.eof() or sc.peek() != "<":
        raise sc.error("expected an element")
    try:
        nid = _parse_element(sc, store)
    except RecursionError:
        raise sc.error(
            "document nests too deeply to parse; refused"
        ) from None
    sc.skip_whitespace()
    if not sc.eof():
        raise sc.error("content after the element")
    return Node(store, nid)


def _parse_prolog(sc: _Scanner) -> None:
    sc.skip_whitespace()
    if sc.startswith("<?xml"):
        sc.read_until("?>", "XML declaration")
    sc.skip_whitespace()
    if sc.startswith("<!DOCTYPE"):
        raise sc.error("DTDs are not supported")


def _parse_misc(sc: _Scanner, store: Store, parent: int) -> None:
    """Comments/PIs/whitespace allowed around the root element."""
    while True:
        sc.skip_whitespace()
        if sc.startswith("<!--"):
            sc.advance(4)
            value = sc.read_until("-->", "comment")
            store.append_child(parent, store.create_comment(value))
        elif sc.startswith("<?"):
            sc.advance(2)
            target = sc.read_name()
            value = sc.read_until("?>", "processing instruction").strip()
            store.append_child(
                parent, store.create_processing_instruction(target, value)
            )
        else:
            return


def _parse_element(sc: _Scanner, store: Store) -> int:
    sc.expect("<")
    name = sc.read_name()
    element = store.create_element(name)
    # Attributes.
    while True:
        sc.skip_whitespace()
        ch = sc.peek()
        if ch == ">" or sc.startswith("/>"):
            break
        if not ch:
            raise sc.error(f"unterminated start tag <{name}>")
        attr_name = sc.read_name()
        sc.skip_whitespace()
        sc.expect("=")
        sc.skip_whitespace()
        quote = sc.peek()
        if quote not in ("'", '"'):
            raise sc.error("attribute value must be quoted")
        sc.advance()
        raw = sc.read_until(quote, "attribute value")
        value = _decode(raw, sc)
        if store.attribute_named(element, attr_name) is not None:
            raise sc.error(f"duplicate attribute {attr_name!r} on <{name}>")
        store.set_attribute(element, store.create_attribute(attr_name, value))
    if sc.startswith("/>"):
        sc.advance(2)
        return element
    sc.expect(">")
    _parse_content(sc, store, element, name)
    return element


def _parse_content(sc: _Scanner, store: Store, element: int, name: str) -> None:
    text_parts: list[str] = []

    def flush_text() -> None:
        if text_parts:
            store.append_child(element, store.create_text("".join(text_parts)))
            text_parts.clear()

    while True:
        if sc.eof():
            raise sc.error(f"unterminated element <{name}>")
        if sc.startswith("</"):
            flush_text()
            sc.advance(2)
            end_name = sc.read_name()
            if end_name != name:
                raise sc.error(
                    f"mismatched end tag </{end_name}> for <{name}>"
                )
            sc.skip_whitespace()
            sc.expect(">")
            return
        if sc.startswith("<!--"):
            flush_text()
            sc.advance(4)
            value = sc.read_until("-->", "comment")
            store.append_child(element, store.create_comment(value))
        elif sc.startswith("<![CDATA["):
            sc.advance(len("<![CDATA["))
            text_parts.append(sc.read_until("]]>", "CDATA section"))
        elif sc.startswith("<?"):
            flush_text()
            sc.advance(2)
            target = sc.read_name()
            value = sc.read_until("?>", "processing instruction").strip()
            store.append_child(
                element, store.create_processing_instruction(target, value)
            )
        elif sc.peek() == "<":
            flush_text()
            child = _parse_element(sc, store)
            store.append_child(element, child)
        else:
            start = sc.pos
            nxt = sc.text.find("<", sc.pos)
            if nxt < 0:
                nxt = sc.n
            raw = sc.text[start:nxt]
            sc.pos = nxt
            text_parts.append(_decode(raw, sc))
