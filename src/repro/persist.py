"""Engine-state persistence: save a whole database to disk and reopen it.

The dump is a single JSON document capturing the store *losslessly* —
every record including detached subtrees (which XML serialization alone
could not represent), plus the global bindings, the fn:doc catalog and the
registered library modules.  Node identity (ids) survives the round trip,
so saved handles referenced from bindings keep working.

Format (version 1)::

    {
      "format": "repro-xquerybang-db",
      "version": 1,
      "next_id": 1234,
      "records": [[nid, kind, name, parent, [children], [attrs], value], ...],
      "globals": {"name": [ ["node", nid] | ["integer", 5] | ... ]},
      "documents": {"name": nid},
      "modules": {"uri": "source text"},
      "settings": {"default_semantics": "ordered", ...}
    }
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.engine import Engine
from repro.errors import XQueryError
from repro.xdm.nodes import Node
from repro.xdm.store import NodeKind, Store
from repro.xdm.values import (
    XS_BOOLEAN,
    XS_DECIMAL,
    XS_DOUBLE,
    XS_INTEGER,
    XS_STRING,
    XS_UNTYPED,
    AtomicValue,
)

_FORMAT = "repro-xquerybang-db"
_VERSION = 1

_TYPE_TAGS = {
    XS_INTEGER: "integer",
    XS_DECIMAL: "decimal",
    XS_DOUBLE: "double",
    XS_STRING: "string",
    XS_BOOLEAN: "boolean",
    XS_UNTYPED: "untyped",
}
_TAG_TYPES = {tag: type_ for type_, tag in _TYPE_TAGS.items()}


def _dump_item(item) -> list:
    if isinstance(item, Node):
        return ["node", item.nid]
    tag = _TYPE_TAGS.get(item.type)
    if tag is None:
        raise XQueryError(f"cannot persist a value of type {item.type}")
    payload = item.value
    if tag == "decimal":
        payload = str(payload)  # Decimal is not JSON-native; keep exact
    return [tag, payload]


def _load_item(entry: list, store: Store):
    # Validate shape and payload types instead of coercing: a corrupt
    # dump must fail loudly, not round a truthy string into `true`.
    if (
        not isinstance(entry, (list, tuple))
        or len(entry) != 2
        or not isinstance(entry[0], str)
    ):
        raise XQueryError(f"malformed persisted value entry {entry!r}")
    tag, payload = entry
    if tag == "node":
        if isinstance(payload, bool) or not isinstance(payload, int):
            raise XQueryError(
                f"persisted node entry has non-integer id {payload!r}"
            )
        return Node(store, payload)
    type_ = _TAG_TYPES.get(tag)
    if type_ is None:
        raise XQueryError(f"unknown persisted value tag {tag!r}")
    if tag == "integer":
        if isinstance(payload, bool) or not isinstance(payload, int):
            raise XQueryError(
                f"persisted integer has non-integer payload {payload!r}"
            )
    elif tag == "decimal":
        from decimal import Decimal, InvalidOperation

        if not isinstance(payload, str):
            raise XQueryError(
                f"persisted decimal has non-string payload {payload!r}"
            )
        try:
            payload = Decimal(payload)
        except InvalidOperation:
            raise XQueryError(
                f"persisted decimal payload {payload!r} does not parse"
            ) from None
    elif tag == "double":
        if isinstance(payload, bool) or not isinstance(
            payload, (int, float)
        ):
            raise XQueryError(
                f"persisted double has non-numeric payload {payload!r}"
            )
        payload = float(payload)
    elif tag == "boolean":
        if not isinstance(payload, bool):
            raise XQueryError(
                f"persisted boolean has non-boolean payload {payload!r}"
            )
    elif not isinstance(payload, str):  # string / untyped
        raise XQueryError(
            f"persisted {tag} has non-string payload {payload!r}"
        )
    return AtomicValue(type_, payload)


def _engine_payload(engine: Engine) -> dict[str, Any]:
    """Build the dump payload.  Reads the store without locking — the
    caller must hold the store's write lock (or own the engine
    exclusively, e.g. single-threaded use or checkpoint compaction,
    which already runs under the write lock)."""
    store = engine.store
    records = []
    for nid in store.node_ids():
        records.append(
            [
                nid,
                store.kind(nid).value,
                store.name(nid),
                store.parent(nid),
                list(store.children(nid)),
                list(store.attributes(nid)),
                store.value(nid),
            ]
        )
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "next_id": store._next_id,
        "records": records,
        "globals": {
            name: [_dump_item(item) for item in value]
            for name, value in engine.evaluator.globals.items()
        },
        "documents": {
            name: node.nid for name, node in engine.evaluator.documents.items()
        },
        "modules": dict(engine._module_library),
        "settings": {
            "default_semantics": engine.default_semantics.value,
            "atomic_snaps": engine.evaluator.atomic_snaps,
            "static_checks": engine.static_checks,
        },
    }


def _write_payload(payload: dict, path: str, fsync: bool = False) -> None:
    """Write a dump payload to *path* atomically (tmp + ``os.replace``).

    With ``fsync=True`` the file's bytes and the directory entry are
    forced to stable storage before returning — required when the dump
    is a durability checkpoint rather than a best-effort export.
    """
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    if fsync:
        from repro.durability.journal import fsync_directory

        fsync_directory(os.path.dirname(path) or ".")


def save_engine(engine: Engine, path: str) -> None:
    """Serialize *engine*'s full state to *path* (a single JSON file).

    Takes the store's write lock for the duration of the state capture,
    so saving while a :class:`~repro.concurrent.ConcurrentExecutor` is
    live yields a consistent dump — never a half-applied snap.  Must not
    be called from a thread already holding either side of the store
    lock (it is not reentrant).
    """
    with engine.store.lock.write_locked():
        payload = _engine_payload(engine)
    _write_payload(payload, path)


def load_engine(path: str) -> Engine:
    """Reconstruct an engine saved with :func:`save_engine`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise XQueryError(f"{path!r} is not a {_FORMAT} dump")
    if payload.get("version") != _VERSION:
        raise XQueryError(
            f"unsupported dump version {payload.get('version')!r}"
        )
    settings = payload.get("settings", {})
    engine = Engine(
        default_semantics=settings.get("default_semantics", "ordered"),
        atomic_snaps=settings.get("atomic_snaps", False),
        static_checks=settings.get("static_checks", False),
    )
    store = engine.store
    _restore_records(store, payload["records"], payload["next_id"])
    engine.evaluator.globals = {
        name: [_load_item(entry, store) for entry in value]
        for name, value in payload["globals"].items()
    }
    engine.evaluator.documents = {
        name: Node(store, nid)
        for name, nid in payload["documents"].items()
    }
    for uri, text in payload.get("modules", {}).items():
        engine.register_module(uri, text)
    store.check_invariants()
    return engine


def _restore_records(store: Store, records: list, next_id: int) -> None:
    # Rebuild the raw record table; the store's public constructors cannot
    # express arbitrary ids, so this (deliberately) reaches inside.
    from repro.xdm.store import _NodeRecord

    store._records = {}
    store._name_index = {}
    for nid, kind, name, parent, children, attributes, value in records:
        record = _NodeRecord(NodeKind(kind), name, value)
        record.parent = parent
        record.children = list(children)
        record.attributes = list(attributes)
        store._records[nid] = record
        if record.kind is NodeKind.ELEMENT and name:
            store._name_index.setdefault(name, set()).add(nid)
    store._reset_ids(next_id)
    store._touch()
