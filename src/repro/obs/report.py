"""Structured reports built from a :class:`~repro.obs.tracer.Tracer`.

Three user-facing objects:

* :class:`QueryStats` — the ``QueryResult.stats`` payload: per-phase wall
  time, counters (snaps, cache hits, store churn, barriers) and folded
  observations (pending-update lengths, conflict-table sizes).
* :class:`ExplainReport` — the ``Engine.explain`` payload: the plan before
  and after rewriting, the list of rewrite-rule firings (with why-not
  reasons) and the purity verdicts the guards were based on.
* :class:`SlowQueryRecord` — what the ``Engine(on_slow_query=...)`` hook
  receives.

Every report serializes losslessly through ``to_dict()`` (plain dicts,
lists and scalars — ``json.dumps``-able as-is) and ``to_json()``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Observation, PhaseSpan, RuleFiring, Tracer


class QueryStats:
    """Execution statistics of one traced query run.

    Attributes:
        spans: the phase-span forest (parse/…/evaluate/snap-apply).
        counters: event counts, e.g. ``snap.count``,
            ``prepared_cache.hits``, ``store.nodes_created``,
            ``exec.barrier.hash_build``.
        observations: folded magnitudes, e.g. ``snap.pending_updates``,
            ``conflict.table.writes``.
        duration_ms: wall time from tracer creation to report assembly.
    """

    __slots__ = ("spans", "counters", "observations", "duration_ms")

    def __init__(
        self,
        spans: list["PhaseSpan"],
        counters: dict[str, int],
        observations: dict[str, "Observation"],
        duration_ms: float,
    ):
        self.spans = spans
        self.counters = counters
        self.observations = observations
        self.duration_ms = duration_ms

    @classmethod
    def from_tracer(cls, tracer: "Tracer") -> "QueryStats":
        return cls(
            spans=list(tracer.spans),
            counters=dict(tracer.counters),
            observations=dict(tracer.observations),
            duration_ms=tracer.elapsed_ms(),
        )

    # -- convenience accessors (the acceptance-critical numbers) ---------

    @property
    def phase_times_ms(self) -> dict[str, float]:
        """Total wall milliseconds per phase name, summed across the span
        forest (nested spans count toward their own name only)."""
        totals: dict[str, float] = {}

        def walk(spans: list["PhaseSpan"]) -> None:
            for span in spans:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration_ms
                walk(span.children)

        walk(self.spans)
        return totals

    @property
    def snap_count(self) -> int:
        """Number of update-list applications (snap closures) this run."""
        return self.counters.get("snap.count", 0)

    @property
    def pending_updates_total(self) -> int:
        """Total pending update requests across all snaps this run."""
        obs = self.observations.get("snap.pending_updates")
        return int(obs.total) if obs is not None else 0

    @property
    def cache_hits(self) -> int:
        return self.counters.get("prepared_cache.hits", 0)

    @property
    def cache_misses(self) -> int:
        return self.counters.get("prepared_cache.misses", 0)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "duration_ms": self.duration_ms,
            "phases": [span.to_dict() for span in self.spans],
            "phase_times_ms": self.phase_times_ms,
            "counters": dict(self.counters),
            "observations": {
                name: obs.to_dict() for name, obs in self.observations.items()
            },
            "snap_count": self.snap_count,
            "pending_updates_total": self.pending_updates_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return (
            f"QueryStats({self.duration_ms:.3f}ms, "
            f"snaps={self.snap_count}, "
            f"pending={self.pending_updates_total}, "
            f"cache={self.cache_hits}h/{self.cache_misses}m)"
        )


class ExplainReport:
    """The optimizer's decisions for one query, made inspectable.

    Attributes:
        query_text: the source text.
        plan_before: pretty-printed plan with rewriting disabled.
        plan_after: pretty-printed plan the optimizer actually produced.
        operators_before / operators_after: operator-name lists of the two
            plans (machine-checkable shape).
        rules: every rewrite rule considered, with ``fired`` and a detail
            dict (guard outcomes, or the reason the rule did not apply).
        purity: per-clause effect verdicts (``pure`` / ``may_update`` /
            ``may_snap``) of the decomposed pipeline — the judgments the
            rule guards consulted.
        costs: the cost model's decisions
            (:class:`repro.index.CostDecision`) — chosen access paths,
            hash-join build sides and join orders, each with its rejected
            alternatives and estimates.  Empty when the cost pass did not
            run (small store, rewriting disabled, non-FLWOR body).
    """

    __slots__ = (
        "query_text",
        "plan_before",
        "plan_after",
        "operators_before",
        "operators_after",
        "rules",
        "purity",
        "costs",
    )

    def __init__(
        self,
        query_text: str,
        plan_before: str,
        plan_after: str,
        operators_before: list[str],
        operators_after: list[str],
        rules: list["RuleFiring"],
        purity: list[dict],
        costs: list | None = None,
    ):
        self.query_text = query_text
        self.plan_before = plan_before
        self.plan_after = plan_after
        self.operators_before = operators_before
        self.operators_after = operators_after
        self.rules = rules
        self.purity = purity
        self.costs = costs or []

    @property
    def fired_rules(self) -> list["RuleFiring"]:
        """The rules that actually rewrote the plan."""
        return [rule for rule in self.rules if rule.fired]

    @property
    def rewritten(self) -> bool:
        """True when the optimizer changed the plan shape."""
        return self.operators_before != self.operators_after

    def to_dict(self) -> dict:
        return {
            "query": self.query_text,
            "plan_before": self.plan_before,
            "plan_after": self.plan_after,
            "operators_before": list(self.operators_before),
            "operators_after": list(self.operators_after),
            "rewritten": self.rewritten,
            "rules": [rule.to_dict() for rule in self.rules],
            "purity": [dict(verdict) for verdict in self.purity],
            "costs": [decision.to_dict() for decision in self.costs],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """A human-readable multi-line rendering (CLI ``--explain``)."""
        lines = ["plan (before rewriting):"]
        lines.extend("  " + line for line in self.plan_before.splitlines())
        lines.append("plan (after rewriting):")
        lines.extend("  " + line for line in self.plan_after.splitlines())
        lines.append("rewrite rules:")
        if not self.rules:
            lines.append("  (query body is not a FLWOR pipeline; no rules apply)")
        for rule in self.rules:
            status = "fired" if rule.fired else "did not fire"
            detail = ""
            if rule.detail:
                detail = " — " + ", ".join(
                    f"{key}={value}" for key, value in sorted(rule.detail.items())
                )
            lines.append(f"  {rule.rule}: {status}{detail}")
        if self.purity:
            lines.append("purity verdicts:")
            for verdict in self.purity:
                flags = []
                if verdict.get("may_update"):
                    flags.append("may_update")
                if verdict.get("may_snap"):
                    flags.append("may_snap")
                lines.append(
                    f"  {verdict.get('clause', '?')}: "
                    + ("pure" if verdict.get("pure") else " ".join(flags) or "impure")
                )
        if self.costs:
            lines.append("cost decisions:")
            for decision in self.costs:
                lines.append(
                    f"  {decision.decision} ({decision.target}): "
                    f"{decision.chosen} — {decision.reason}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        fired = [rule.rule for rule in self.fired_rules]
        return f"ExplainReport(rewritten={self.rewritten}, fired={fired})"


@dataclass(frozen=True)
class SlowQueryRecord:
    """What an ``Engine(on_slow_query=...)`` hook receives."""

    query_text: str
    duration_ms: float
    threshold_ms: float
    stats: Optional[QueryStats] = None
    timestamp: float = 0.0

    @staticmethod
    def now() -> float:
        return time.time()

    def to_dict(self) -> dict:
        return {
            "query": self.query_text,
            "duration_ms": self.duration_ms,
            "threshold_ms": self.threshold_ms,
            "timestamp": self.timestamp,
            "stats": self.stats.to_dict() if self.stats is not None else None,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
