"""Pipeline observability: phase spans, counters, explain reports.

The instrumentation substrate every layer of the engine reports into —
see :mod:`repro.obs.tracer` for the collection side and
:mod:`repro.obs.report` for the user-facing report objects.
"""

from repro.obs.report import ExplainReport, QueryStats, SlowQueryRecord
from repro.obs.tracer import (
    Observation,
    PhaseSpan,
    RuleFiring,
    Tracer,
    maybe_span,
)

__all__ = [
    "ExplainReport",
    "Observation",
    "PhaseSpan",
    "QueryStats",
    "RuleFiring",
    "SlowQueryRecord",
    "Tracer",
    "maybe_span",
]
