"""The zero-dependency tracer behind the pipeline observability layer.

A :class:`Tracer` collects three kinds of evidence while a query runs:

* **phase spans** — nested wall-clock intervals named after the pipeline
  stages (parse, normalize, simplify, static-check, compile,
  rewrite-per-rule, prolog, evaluate, snap-apply);
* **counters** — monotonically increasing event counts (snaps applied,
  prepared-cache hits, store nodes created/detached, materialization
  barriers hit; a durable engine adds ``journal.records``,
  ``journal.bytes``, ``journal.fsyncs``, ``journal.compactions``,
  ``journal.recoveries`` and ``journal.truncated_tails`` — see
  :mod:`repro.durability`);
* **observations** — per-event magnitudes folded into count/total/min/max
  summaries (pending-update-list lengths per snap, conflict-check table
  sizes, hash-join build sizes).

Plus two optimizer-specific records: which rewrite **rules** fired (with
why-not reasons) and the per-clause **purity verdicts** the guards were
based on — FLUX-style inspectable static analysis results.

Design constraint: instrumentation is *disabled by default* and must cost
<5% on the hot execution paths.  The discipline throughout the engine is
therefore *guard on None*: hot code holds a ``tracer`` that is ``None``
unless the caller asked for stats, and every instrumentation site is
``if tracer is not None: ...`` — one attribute load and pointer compare
when disabled, nothing else.  The tracer itself is only ever constructed
on the stats-collecting path, so its own methods need not be micro-tuned.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from typing import Any, Callable, Iterator, Optional


class PhaseSpan:
    """One named wall-clock interval; spans nest to form a phase tree."""

    __slots__ = ("name", "start", "end", "children")

    def __init__(self, name: str, start: float):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.children: list["PhaseSpan"] = []

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1000.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ms": self.duration_ms,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"PhaseSpan({self.name!r}, {self.duration_ms:.3f}ms)"


class Observation:
    """A folded histogram: count / total / min / max of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return (
            f"Observation(count={self.count}, total={self.total}, "
            f"min={self.min}, max={self.max})"
        )


class RuleFiring:
    """One optimizer rewrite-rule decision: did it fire, and why (not)."""

    __slots__ = ("rule", "fired", "detail")

    def __init__(self, rule: str, fired: bool, detail: dict | None = None):
        self.rule = rule
        self.fired = fired
        self.detail = detail or {}

    def to_dict(self) -> dict:
        return {"rule": self.rule, "fired": self.fired, "detail": self.detail}

    def __repr__(self) -> str:
        return f"RuleFiring({self.rule!r}, fired={self.fired})"


class Tracer:
    """Collects spans, counters, observations and optimizer records.

    One tracer lives for one traced query execution; the engine threads it
    through the frontend, the optimizer, the evaluator, update application
    and the store, then folds it into a
    :class:`~repro.obs.report.QueryStats`.
    """

    __slots__ = (
        "clock",
        "created",
        "spans",
        "counters",
        "observations",
        "rules",
        "purity",
        "costs",
        "_stack",
    )

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.created = clock()
        self.spans: list[PhaseSpan] = []
        self.counters: dict[str, int] = {}
        self.observations: dict[str, Observation] = {}
        self.rules: list[RuleFiring] = []
        self.purity: list[dict] = []
        self.costs: list = []  # list[repro.index.cost.CostDecision]
        self._stack: list[PhaseSpan] = []

    # -- phase spans -----------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[PhaseSpan]:
        """Open a nested phase span for the duration of the ``with`` body."""
        span = PhaseSpan(name, self.clock())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self.clock()
            self._stack.pop()

    # -- counters and observations --------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter *name* by *n*."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Fold *value* into the observation summary for *name*."""
        obs = self.observations.get(name)
        if obs is None:
            obs = self.observations[name] = Observation()
        obs.add(value)

    # -- optimizer records -----------------------------------------------

    def rule(self, name: str, fired: bool, detail: dict | None = None) -> None:
        """Record a rewrite-rule decision."""
        self.rules.append(RuleFiring(name, fired, detail))

    def record_purity(self, verdicts: list[dict]) -> None:
        """Record the per-clause purity verdicts of an optimized pipeline."""
        self.purity.extend(verdicts)

    def cost(self, decision) -> None:
        """Record a cost-model decision (a CostDecision).

        Deliberately a separate channel from :meth:`rule`: rules are
        correctness-guarded plan transformations, cost decisions pick
        among plans the guards already admitted.
        """
        self.costs.append(decision)

    # -- misc ------------------------------------------------------------

    def elapsed_ms(self) -> float:
        """Milliseconds since this tracer was created."""
        return (self.clock() - self.created) * 1000.0

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self.spans)}, counters={len(self.counters)}, "
            f"rules={len(self.rules)})"
        )


class SharedTracer(Tracer):
    """A tracer safe to share across threads — counters and observations
    only.

    The concurrent front ends (:mod:`repro.concurrent.executor`,
    :class:`~repro.usecases.webservice.AuctionFrontEnd`) aggregate
    service-level evidence — queue depth, lock waits, snapshot age,
    timeout/cancel/shed counts — from every worker into one place.  A
    plain :class:`Tracer` folds ``count``/``observe`` with unlocked
    read-modify-write dict updates and keeps an ambient span *stack*,
    neither of which survives concurrent use; this subclass serializes
    the folds under a mutex and rejects spans outright (a wall-clock
    interval belongs to one thread's one execution — per-query tracers
    still do that job).
    """

    __slots__ = ("_mutex",)

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        super().__init__(clock)
        self._mutex = threading.Lock()

    def span(self, name: str):
        raise RuntimeError(
            "SharedTracer does not support spans; use a per-query Tracer "
            "for phase timing"
        )

    def count(self, name: str, n: int = 1) -> None:
        with self._mutex:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        with self._mutex:
            obs = self.observations.get(name)
            if obs is None:
                obs = self.observations[name] = Observation()
            obs.add(value)

    def snapshot_counters(self) -> dict[str, int]:
        """A consistent copy of the counters."""
        with self._mutex:
            return dict(self.counters)

    def snapshot_observations(self) -> dict[str, dict]:
        """A consistent copy of the observation summaries (as dicts)."""
        with self._mutex:
            return {
                name: obs.to_dict()
                for name, obs in self.observations.items()
            }


def maybe_span(tracer: Tracer | None, name: str):
    """``tracer.span(name)`` when tracing, a no-op context otherwise.

    For warm paths where the ``if tracer is not None`` dance would obscure
    the code; truly hot paths should keep the explicit guard.
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name)
