"""An HdrHistogram-style latency recorder.

Fixed memory, O(1) recording, bounded relative error: values (integer
microseconds) land in power-of-two buckets split into 2048 linear
sub-buckets, so any recorded value is off by at most one part in 1024
(~0.1%) — precise enough to gate p999 regressions, small enough to put
one histogram per outcome class in every report.

Why not a sorted list?  An open-loop run at 500 req/s for a soak hour is
1.8M samples; the histogram holds them in a few tens of KB with exact
counts and mergeable state (worker threads record into private
histograms, the report merges them).

The percentile convention follows HdrHistogram: ``percentile(p)``
returns the *highest equivalent value* of the bucket containing the
p-th percentile sample, so reported percentiles never understate an
observed latency.
"""

from __future__ import annotations

_SUB_BUCKET_BITS = 11  # 2048 linear sub-buckets per power-of-two bucket
_SUB_BUCKET_COUNT = 1 << _SUB_BUCKET_BITS
_SUB_BUCKET_HALF = _SUB_BUCKET_COUNT >> 1
_SUB_BUCKET_MASK = _SUB_BUCKET_COUNT - 1


class LatencyHistogram:
    """Record integer microsecond values; answer percentile queries.

    Parameters:
        max_value_us: highest trackable value (default one hour).  Larger
            recorded values are clamped to it (and counted — a stalled
            request must never vanish from the tail).
    """

    __slots__ = (
        "max_value_us", "_counts", "_bucket_count",
        "count", "total", "min_recorded", "max_recorded",
    )

    def __init__(self, max_value_us: int = 3_600_000_000):
        if max_value_us < _SUB_BUCKET_COUNT:
            raise ValueError(
                f"max_value_us must be >= {_SUB_BUCKET_COUNT}"
            )
        self.max_value_us = max_value_us
        buckets = 1
        smallest_untrackable = _SUB_BUCKET_COUNT
        while smallest_untrackable <= max_value_us:
            smallest_untrackable <<= 1
            buckets += 1
        self._bucket_count = buckets
        self._counts = [0] * ((buckets + 1) * _SUB_BUCKET_HALF)
        self.count = 0
        self.total = 0
        self.min_recorded: int | None = None
        self.max_recorded: int | None = None

    # -- recording ---------------------------------------------------------

    def record(self, value_us: int, count: int = 1) -> None:
        """Fold *count* occurrences of *value_us* into the histogram."""
        if value_us < 0:
            value_us = 0
        if value_us > self.max_value_us:
            value_us = self.max_value_us
        self._counts[self._index_for(value_us)] += count
        self.count += count
        self.total += value_us * count
        if self.min_recorded is None or value_us < self.min_recorded:
            self.min_recorded = value_us
        if self.max_recorded is None or value_us > self.max_recorded:
            self.max_recorded = value_us

    def record_corrected(
        self, value_us: int, expected_interval_us: int
    ) -> None:
        """Record *value_us* compensating for coordinated omission.

        When a measured value exceeds the expected sampling interval,
        the stall also delayed the samples that *would* have been taken
        during it; a plain record silently drops them and flatters the
        tail.  This re-synthesizes the missing samples the way
        HdrHistogram's ``recordValueWithExpectedInterval`` does.  (The
        driver measures from the *scheduled* start instead, which makes
        this correction redundant there — see docs/loadgen.md — but the
        recorder supports both disciplines.)
        """
        self.record(value_us)
        if expected_interval_us <= 0:
            return
        missing = value_us - expected_interval_us
        while missing >= expected_interval_us:
            self.record(missing)
            missing -= expected_interval_us

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold *other* into this histogram (same bucket geometry)."""
        if other.max_value_us != self.max_value_us:
            raise ValueError("cannot merge histograms of different range")
        for index, count in enumerate(other._counts):
            if count:
                self._counts[index] += count
        self.count += other.count
        self.total += other.total
        for bound in (other.min_recorded,):
            if bound is not None and (
                self.min_recorded is None or bound < self.min_recorded
            ):
                self.min_recorded = bound
        for bound in (other.max_recorded,):
            if bound is not None and (
                self.max_recorded is None or bound > self.max_recorded
            ):
                self.max_recorded = bound

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """The highest equivalent value at percentile *p* (0 < p <= 100).

        Returns 0 on an empty histogram.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            return 0
        target = max(1, round(self.count * (p / 100.0)))
        cumulative = 0
        for index, count in enumerate(self._counts):
            if not count:
                continue
            cumulative += count
            if cumulative >= target:
                return self._highest_equivalent(index)
        return self._highest_equivalent(len(self._counts) - 1)

    def percentiles(self, points: tuple[float, ...]) -> dict[str, int]:
        """Several percentiles in one cumulative walk."""
        out: dict[str, int] = {}
        for p in points:
            out[_label(p)] = self.percentile(p)
        return out

    def to_dict(self) -> dict:
        """JSON-able summary (microseconds; the report layer scales)."""
        return {
            "count": self.count,
            "min_us": self.min_recorded or 0,
            "max_us": self.max_recorded or 0,
            "mean_us": round(self.mean, 3),
            **{
                f"{label}_us": value
                for label, value in self.percentiles(
                    (50.0, 90.0, 99.0, 99.9)
                ).items()
            },
        }

    # -- bucket geometry ---------------------------------------------------

    @staticmethod
    def _bucket_index(value_us: int) -> int:
        return (value_us | _SUB_BUCKET_MASK).bit_length() - _SUB_BUCKET_BITS

    def _index_for(self, value_us: int) -> int:
        bucket = self._bucket_index(value_us)
        sub = value_us >> bucket
        return (bucket + 1) * _SUB_BUCKET_HALF + (sub - _SUB_BUCKET_HALF)

    @staticmethod
    def _highest_equivalent(counts_index: int) -> int:
        bucket = (counts_index >> (_SUB_BUCKET_BITS - 1)) - 1
        sub = (counts_index & (_SUB_BUCKET_HALF - 1)) + _SUB_BUCKET_HALF
        if bucket < 0:
            bucket, sub = 0, counts_index
        return ((sub + 1) << bucket) - 1


def _label(p: float) -> str:
    text = f"{p:g}".replace(".", "")
    return f"p{text}"
