"""Open-loop load harness with an SLO scoreboard (ROADMAP item 3).

``python -m repro.loadgen --rate 500 --duration 20 --mix xmark-rw --json``
replays a seeded XMark read/write mix against the serving stack at a
target arrival rate and reports latency percentiles, throughput and
shed/refusal rates against declared SLOs.  ``--virtual`` switches to a
deterministic virtual-time simulation whose report is bit-for-bit
reproducible for a given seed.  ``python -m repro.loadgen.hostile``
runs the seeded hostile-input fuzz campaign over the same boundary.

See ``docs/loadgen.md`` for the design (open-loop scheduling,
coordinated-omission defense, SLO configuration, fuzz corpus).
"""

from repro.loadgen.clock import VirtualClock, WallClock
from repro.loadgen.driver import LoadDriver, LoadProfile, RunRecorder
from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.report import LoadReport, build_report, validate_report
from repro.loadgen.slo import (
    SLO,
    SLOVerdict,
    default_slos,
    parse_slo_overrides,
)
from repro.loadgen.workload import MIXES, Operation, Workload

__all__ = [
    "LatencyHistogram",
    "LoadDriver",
    "LoadProfile",
    "LoadReport",
    "MIXES",
    "Operation",
    "RunRecorder",
    "SLO",
    "SLOVerdict",
    "VirtualClock",
    "WallClock",
    "Workload",
    "build_report",
    "default_slos",
    "parse_slo_overrides",
    "validate_report",
]
