"""The open-loop load driver.

**Open loop** means arrivals are scheduled by the clock, not by
completions: request *i* is due at ``start + i/rate`` whether or not
earlier requests have finished.  A closed-loop driver (issue, wait,
issue) silently backs off whenever the system stalls — the stall
throttles the driver, the driver stops observing, and the report shows
a healthy p99 for a system that spent half the run frozen.  That
failure mode is *coordinated omission*, and this driver defends against
it twice:

* **schedule-lag accounting** — when the dispatcher itself falls behind
  its timetable (the run queue is saturated, the GIL is pinned), the
  lag is recorded into its own histogram and gated by an SLO instead of
  silently shrinking the offered load;
* **response-time measurement** — every latency is measured from the
  request's *scheduled* arrival, not from the moment it was actually
  submitted, so queueing and dispatcher lag land in the latency tail
  where an operator would feel them.

Two modes share the scheduling code path:

* **wall mode** drives a real :class:`~repro.usecases.webservice.
  AuctionFrontEnd` (worker pool, bounded queue, admission control,
  typed refusals) from a dispatcher thread;
* **virtual mode** replays the same deterministic workload through an
  event-ordered simulation on a :class:`~repro.loadgen.clock.
  VirtualClock`: operations execute for real against an in-process
  :class:`~repro.usecases.webservice.AuctionService` (so outcomes —
  successes, typed refusals — are the engine's own), while *durations*
  come from a seeded service-time model, making the entire report a
  pure function of the seed: bit-for-bit reproducible.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from heapq import heappop, heappush, heapify
from typing import Any, Callable

from repro.errors import (
    QueryTimeoutError,
    ServiceOverloadedError,
    XQueryError,
)
from repro.loadgen.clock import VirtualClock, WallClock
from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.report import LoadReport, build_report
from repro.loadgen.slo import SLO, default_slos
from repro.loadgen.workload import Operation, Workload

#: Synthetic refusal code for requests the driver itself refused to
#: dispatch (bounded in-flight transactional work) — same registry code
#: the service's own shed uses.
SHED_CODE = "REPR0003"


@dataclass(frozen=True)
class LoadProfile:
    """Everything that defines one load run (and keys its report)."""

    rate: float = 100.0
    duration_s: float = 10.0
    mix: str = "xmark-rw"
    seed: int = 1
    workers: int = 4
    queue_size: int = 64
    timeout_ms: float = 2000.0
    arrivals: str = "uniform"  # or "poisson"
    items: int = 40
    persons: int = 50

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.arrivals not in ("uniform", "poisson"):
            raise ValueError("arrivals must be 'uniform' or 'poisson'")

    @property
    def scheduled_requests(self) -> int:
        return int(self.rate * self.duration_s)

    def arrival_times(self) -> list[float]:
        """Relative arrival times (seconds from run start), seeded."""
        n = self.scheduled_requests
        if self.arrivals == "uniform":
            return [i / self.rate for i in range(n)]
        rng = random.Random(f"repro.loadgen.arrivals:{self.seed}")
        times: list[float] = []
        t = 0.0
        for _ in range(n):
            t += rng.expovariate(self.rate)
            times.append(t)
        return times

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "duration_s": self.duration_s,
            "mix": self.mix,
            "seed": self.seed,
            "workers": self.workers,
            "queue_size": self.queue_size,
            "timeout_ms": self.timeout_ms,
            "arrivals": self.arrivals,
            "items": self.items,
            "persons": self.persons,
            "scheduled": self.scheduled_requests,
        }


class RunRecorder:
    """Thread-safe accumulator for one run's outcomes.

    Successful responses land in the latency histogram; refusals are
    counted per registry code (shed separately flagged) so fast typed
    refusals can never flatter the latency percentiles; anything
    untyped is an ``internal_error`` — the outcome class that must stay
    at zero.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.latency = LatencyHistogram()
        self.schedule_lag = LatencyHistogram()
        self.refusals: dict[str, int] = {}
        self.successes = 0
        self.shed = 0
        self.dispatched = 0
        self.completed = 0
        self.internal_count = 0
        self.internal_errors: list[str] = []  # bounded sample of the above

    def record_dispatch(self, lag_s: float) -> None:
        with self._mutex:
            self.dispatched += 1
            self.schedule_lag.record(int(lag_s * 1e6))

    def record_outcome(
        self, scheduled: float, finished: float, error: BaseException | None
    ) -> None:
        latency_us = int(max(0.0, finished - scheduled) * 1e6)
        with self._mutex:
            self.completed += 1
            if error is None:
                self.successes += 1
                self.latency.record(latency_us)
            elif isinstance(error, XQueryError):
                code = error.code
                self.refusals[code] = self.refusals.get(code, 0) + 1
                if isinstance(error, ServiceOverloadedError):
                    self.shed += 1
            else:
                self.internal_count += 1
                if len(self.internal_errors) < 32:
                    self.internal_errors.append(repr(error))

    @property
    def refused_total(self) -> int:
        return sum(self.refusals.values())


class ServiceModel:
    """Seeded service-time model for virtual-time runs.

    Durations are drawn per dispatched operation from a lognormal
    around a per-class base cost; the draw order equals the arrival
    order, so the stream is deterministic for a given seed.
    """

    BASE_S = {"read": 0.002, "write": 0.006, "txn": 0.010}

    def __init__(self, seed: int):
        self._rng = random.Random(f"repro.loadgen.service:{seed}")

    def service_s(self, op: Operation) -> float:
        return self.BASE_S[op.op_class] * self._rng.lognormvariate(0.0, 0.4)


class LoadDriver:
    """Run one :class:`LoadProfile` and produce a :class:`LoadReport`.

    Parameters:
        profile: the run definition.
        mode: ``"wall"`` (real front end, real time) or ``"virtual"``
            (deterministic simulation; see the module docstring).
        slos: objectives to evaluate (defaults to
            :func:`~repro.loadgen.slo.default_slos` at the profile's
            rate).
        front: an existing :class:`~repro.usecases.webservice.
            AuctionFrontEnd` to drive (wall mode; one is built and torn
            down when omitted).
        service: an existing :class:`~repro.usecases.webservice.
            AuctionService` for virtual mode's live execution (built
            when omitted); pass ``live=False`` to skip engine execution
            entirely and model outcomes as always-successful (pure
            scheduler/recorder simulation — what the unit tests use).
    """

    def __init__(
        self,
        profile: LoadProfile,
        *,
        mode: str = "wall",
        slos: list[SLO] | None = None,
        front: Any | None = None,
        service: Any | None = None,
        live: bool = True,
    ):
        if mode not in ("wall", "virtual"):
            raise ValueError("mode must be 'wall' or 'virtual'")
        self.profile = profile
        self.mode = mode
        self.slos = slos if slos is not None else default_slos(profile.rate)
        self._front = front
        self._service = service
        self._live = live

    # -- entry point -------------------------------------------------------

    def run(self) -> LoadReport:
        if self.mode == "virtual":
            return self._run_virtual()
        return self._run_wall()

    # -- wall mode ---------------------------------------------------------

    def _run_wall(self) -> LoadReport:
        from concurrent.futures import ThreadPoolExecutor

        from repro.resilience.policy import ResiliencePolicy
        from repro.usecases.webservice import AuctionFrontEnd, AuctionService
        from repro.xmark import XMarkConfig, generate_auction_xml

        profile = self.profile
        owned = self._front is None
        if owned:
            xml = generate_auction_xml(
                XMarkConfig(persons=profile.persons, items=profile.items)
            )
            service = AuctionService(auction_xml=xml, maxlog=64)
            front = AuctionFrontEnd(
                service,
                workers=profile.workers,
                queue_size=profile.queue_size,
                default_timeout_ms=profile.timeout_ms,
                resilience=ResiliencePolicy(max_wait_ms=profile.timeout_ms),
            )
        else:
            front = self._front
        tracer = front.executor.tracer
        recorder = RunRecorder()
        clock = WallClock()
        workload = Workload(
            profile.mix,
            profile.seed,
            items=profile.items,
            persons=profile.persons,
        )
        arrivals = profile.arrival_times()
        # Transactional endpoints are synchronous; a small bounded side
        # pool keeps the dispatcher non-blocking, and the semaphore is
        # the pool's admission control: over the bound, the driver sheds
        # with the same registry code the service's own queue uses.
        txn_pool = ThreadPoolExecutor(
            max_workers=max(2, profile.workers // 2),
            thread_name_prefix="repro-loadgen-txn",
        )
        txn_slots = threading.Semaphore(profile.queue_size)
        start = clock.now()
        try:
            for offset in arrivals:
                scheduled = start + offset
                clock.sleep_until(scheduled)
                op = workload.operation()
                lag_s = clock.now() - scheduled
                recorder.record_dispatch(lag_s)
                tracer.count("loadgen.dispatched")
                self._dispatch_wall(
                    front, txn_pool, txn_slots, op, scheduled, recorder,
                    clock, tracer,
                )
            self._drain(recorder, clock, start)
        finally:
            txn_pool.shutdown(wait=True)
            if owned:
                front.shutdown()
                service.close()
        elapsed = clock.now() - start
        return build_report(
            profile=profile,
            mode="wall",
            recorder=recorder,
            elapsed_s=elapsed,
            slos=self.slos,
            counters=_loadgen_counters(tracer),
        )

    def _dispatch_wall(
        self,
        front: Any,
        txn_pool: Any,
        txn_slots: threading.Semaphore,
        op: Operation,
        scheduled: float,
        recorder: RunRecorder,
        clock: WallClock,
        tracer: Any,
    ) -> None:
        def finish(error: BaseException | None) -> None:
            recorder.record_outcome(scheduled, clock.now(), error)
            if error is None:
                tracer.count("loadgen.successes")
            elif isinstance(error, XQueryError):
                tracer.count("loadgen.refused")
            else:
                tracer.count("loadgen.internal_errors")

        if op.query is not None:
            try:
                future = front.submit_query(
                    op.query, op.bindings, timeout_ms=self.profile.timeout_ms
                )
            except XQueryError as error:
                finish(error)
                return
            future.add_done_callback(
                lambda f: finish(f.exception())
            )
            return
        # Transactional endpoint (place_bid / add_watch).
        if not txn_slots.acquire(blocking=False):
            tracer.count("loadgen.txn_shed")
            finish(
                ServiceOverloadedError(
                    "transactional side pool is saturated; request shed",
                    queue_depth=self.profile.queue_size,
                    queue_capacity=self.profile.queue_size,
                    retry_after_ms=50.0,
                )
            )
            return

        def call() -> None:
            try:
                if op.name == "place_bid":
                    front.place_bid(op.itemid, op.userid, op.amount)
                else:
                    front.add_watch(op.itemid, op.userid)
            except BaseException as error:  # noqa: BLE001 - classified
                finish(error)
            else:
                finish(None)
            finally:
                txn_slots.release()

        txn_pool.submit(call)

    def _drain(
        self, recorder: RunRecorder, clock: WallClock, start: float
    ) -> None:
        """Wait (bounded) for in-flight requests after the last arrival.

        Every request carries a deadline, so the grace period only has
        to outlast one timeout plus scheduling noise; anything still
        unaccounted after that is recorded as an internal error — a
        hang must show up in the report, not stall the harness.
        """
        grace_s = (self.profile.timeout_ms / 1000.0) + 10.0
        deadline = clock.now() + grace_s
        while clock.now() < deadline:
            with recorder._mutex:
                done = recorder.completed >= recorder.dispatched
            if done:
                return
            time.sleep(0.02)
        with recorder._mutex:
            missing = recorder.dispatched - recorder.completed
            if missing > 0:
                recorder.internal_count += missing
                recorder.internal_errors.append(
                    f"HANG: {missing} request(s) unaccounted after "
                    f"{grace_s:.0f}s drain"
                )

    # -- virtual mode ------------------------------------------------------

    def _run_virtual(self) -> LoadReport:
        profile = self.profile
        clock = VirtualClock()
        recorder = RunRecorder()
        workload = Workload(
            profile.mix,
            profile.seed,
            items=profile.items,
            persons=profile.persons,
        )
        model = ServiceModel(profile.seed)
        execute = self._virtual_executor()
        # Worker-availability heap: the simulation's only state.  An
        # arrival whose estimated backlog exceeds the queue capacity is
        # shed exactly like the real bounded queue would shed it.
        free: list[float] = [0.0] * profile.workers
        heapify(free)
        last_completion = 0.0
        try:
            for offset in profile.arrival_times():
                clock.sleep_until(offset)
                op = workload.operation()
                recorder.record_dispatch(0.0)
                service_s = model.service_s(op)
                backlog_s = max(0.0, free[0] - offset)
                if backlog_s * profile.rate > profile.queue_size:
                    recorder.record_outcome(
                        offset,
                        offset,
                        ServiceOverloadedError(
                            "virtual queue backlog over capacity; "
                            "request shed",
                            queue_depth=profile.queue_size,
                            queue_capacity=profile.queue_size,
                            retry_after_ms=backlog_s * 1000.0,
                        ),
                    )
                    continue
                begin = max(offset, heappop(free))
                error = execute(op)
                completion = begin + service_s
                # Deadline discipline: a response that took longer than
                # the timeout budget (queue wait included) is a timeout,
                # same as the real control would rule.
                if (completion - offset) * 1000.0 > profile.timeout_ms:
                    error = QueryTimeoutError(
                        "virtual deadline exceeded",
                        timeout_ms=profile.timeout_ms,
                    )
                    completion = offset + profile.timeout_ms / 1000.0
                heappush(free, completion)
                last_completion = max(last_completion, completion)
                recorder.record_outcome(offset, completion, error)
        finally:
            self._close_virtual_service()
        elapsed = max(profile.duration_s, last_completion)
        return build_report(
            profile=profile,
            mode="virtual",
            recorder=recorder,
            elapsed_s=elapsed,
            slos=self.slos,
            counters={},
        )

    def _virtual_executor(self) -> Callable[[Operation], BaseException | None]:
        """The per-operation executor for virtual mode.

        Live: run the operation synchronously against a real
        :class:`AuctionService` — outcomes (success or typed refusal)
        are the engine's own.  Model: every operation succeeds; only the
        scheduler and recorder are under test.
        """
        if not self._live:
            return lambda op: None
        service = self._service
        if service is None:
            from repro.usecases.webservice import AuctionService
            from repro.xmark import XMarkConfig, generate_auction_xml

            profile = self.profile
            xml = generate_auction_xml(
                XMarkConfig(persons=profile.persons, items=profile.items)
            )
            service = AuctionService(auction_xml=xml, maxlog=64)
            self._owned_service = service
        self._service = service

        def execute(op: Operation) -> BaseException | None:
            try:
                if op.name == "get_item_nolog":
                    service.get_item_nolog(op.itemid, op.userid)
                elif op.name == "get_item":
                    service.get_item(op.itemid, op.userid)
                elif op.name == "highest_bid":
                    service.highest_bid(op.itemid)
                elif op.name == "watchers":
                    service.watchers(op.itemid)
                elif op.name == "place_bid":
                    service.place_bid(op.itemid, op.userid, op.amount)
                elif op.name == "add_watch":
                    service.add_watch(op.itemid, op.userid)
                else:  # pragma: no cover - workload names are closed
                    raise ValueError(f"unknown operation {op.name!r}")
            except XQueryError as error:
                return error
            except BaseException as error:  # noqa: BLE001 - reported
                return error
            return None

        return execute

    def _close_virtual_service(self) -> None:
        owned = getattr(self, "_owned_service", None)
        if owned is not None:
            owned.close()
            self._owned_service = None


def _loadgen_counters(tracer: Any) -> dict:
    """The serving-stack counters worth echoing into a wall-mode report."""
    counters = tracer.snapshot_counters()
    interesting = {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith(("loadgen.", "concurrent.", "resilience."))
    }
    return interesting
