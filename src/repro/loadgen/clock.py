"""Clocks for the load harness: wall time and deterministic virtual time.

The open-loop driver (:mod:`repro.loadgen.driver`) never calls
``time.monotonic`` or ``time.sleep`` directly — it talks to a clock
object, so the same scheduling code runs in two modes:

* :class:`WallClock` — real time, for actual load runs;
* :class:`VirtualClock` — simulated time, for tests and reproducible
  reports.  ``sleep_until`` *jumps* the clock forward instead of
  waiting, so a 20-second profile runs in milliseconds and two runs
  with the same seed produce bit-for-bit identical schedules.

The virtual clock is single-threaded by design: the virtual-time driver
is an event-ordered simulation, not a thread pool (see
:class:`~repro.loadgen.driver.LoadDriver`).
"""

from __future__ import annotations

import time


class WallClock:
    """Real monotonic time."""

    #: True for clocks whose ``sleep_until`` really waits.
    real = True

    def now(self) -> float:
        """Seconds on an arbitrary monotonic timeline."""
        return time.monotonic()

    def sleep_until(self, deadline: float) -> None:
        """Block until ``now() >= deadline`` (no-op when already past —
        that lateness is exactly what schedule-lag accounting records)."""
        delay = deadline - self.now()
        if delay > 0:
            time.sleep(delay)


class VirtualClock:
    """Deterministic simulated time starting at 0.0.

    ``sleep_until`` advances the clock instantly; time never moves
    backwards (sleeping until a past deadline is a no-op, mirroring the
    wall clock's behaviour — the caller observes lag instead).
    """

    real = False

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep_until(self, deadline: float) -> None:
        if deadline > self._now:
            self._now = deadline

    def advance(self, seconds: float) -> None:
        """Move time forward by *seconds* (negative values are refused)."""
        if seconds < 0:
            raise ValueError("virtual time cannot move backwards")
        self._now += seconds
