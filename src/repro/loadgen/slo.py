"""Declared service-level objectives and their verdicts.

An :class:`SLO` names one metric the load report computes (a latency
percentile, throughput, a rate) and bounds it.  The scoreboard is the
list of verdicts: every CI loadgen run evaluates the declared SLOs
against the observed profile and the report carries per-SLO pass/fail —
the regression gate (benchmarks/bench_loadgen.py) then compares the
observed numbers against the checked-in baseline with disclosed
tolerances.

Latency objectives apply to the *response* latency of successful
requests, measured from each request's **scheduled** arrival time — the
coordinated-omission-safe discipline (see docs/loadgen.md).  Shed and
refusal rates are accounted separately so fast refusals cannot flatter
the latency percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass

#: metric name -> (direction, unit). ``<=`` metrics are upper bounds,
#: ``>=`` lower bounds.
METRICS: dict[str, tuple[str, str]] = {
    "latency_p50_ms": ("<=", "ms"),
    "latency_p90_ms": ("<=", "ms"),
    "latency_p99_ms": ("<=", "ms"),
    "latency_p999_ms": ("<=", "ms"),
    "latency_max_ms": ("<=", "ms"),
    "schedule_lag_p99_ms": ("<=", "ms"),
    "throughput_rps": (">=", "req/s"),
    "shed_rate": ("<=", "ratio"),
    "refusal_rate": ("<=", "ratio"),
    "internal_error_rate": ("<=", "ratio"),
}


@dataclass(frozen=True)
class SLO:
    """One declared objective: ``metric`` bounded by ``threshold``."""

    name: str
    metric: str
    threshold: float

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; "
                f"one of {sorted(METRICS)}"
            )

    @property
    def direction(self) -> str:
        return METRICS[self.metric][0]

    def evaluate(self, observed: float) -> "SLOVerdict":
        if self.direction == "<=":
            passed = observed <= self.threshold
        else:
            passed = observed >= self.threshold
        return SLOVerdict(self, observed, passed)


@dataclass(frozen=True)
class SLOVerdict:
    """One SLO's outcome against an observed profile."""

    slo: SLO
    observed: float
    passed: bool

    def to_dict(self) -> dict:
        return {
            "name": self.slo.name,
            "metric": self.slo.metric,
            "direction": self.slo.direction,
            "threshold": self.slo.threshold,
            "observed": round(self.observed, 6),
            "passed": self.passed,
        }

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return (
            f"{mark}  {self.slo.name}: {self.slo.metric} "
            f"{self.observed:g} {self.slo.direction} {self.slo.threshold:g}"
        )


def default_slos(rate: float) -> list[SLO]:
    """The declared objectives a profile run is judged against.

    The latency bounds are intentionally loose for CI hardware (shared,
    noisy runners); the regression gate against the checked-in baseline
    is the tight check.  Throughput must reach 90% of the target rate —
    an open-loop driver that cannot keep schedule is itself a finding,
    surfaced by the schedule-lag bound.
    """
    return [
        SLO("p50-latency", "latency_p50_ms", 100.0),
        SLO("p99-latency", "latency_p99_ms", 500.0),
        SLO("p999-latency", "latency_p999_ms", 2000.0),
        SLO("schedule-keeping", "schedule_lag_p99_ms", 500.0),
        SLO("throughput", "throughput_rps", rate * 0.9),
        SLO("shed-rate", "shed_rate", 0.05),
        SLO("no-internal-errors", "internal_error_rate", 0.0),
    ]


def parse_slo_overrides(specs: list[str], base: list[SLO]) -> list[SLO]:
    """Apply ``metric=threshold`` CLI overrides onto *base* SLOs.

    An override for a metric not in *base* appends a new SLO named after
    the metric.
    """
    out = {slo.metric: slo for slo in base}
    for spec in specs:
        metric, sep, raw = spec.partition("=")
        if not sep:
            raise ValueError(
                f"invalid SLO override {spec!r}; expected metric=threshold"
            )
        threshold = float(raw)
        name = out[metric].name if metric in out else metric
        out[metric] = SLO(name, metric, threshold)
    return list(out.values())
