"""CLI entry point: ``python -m repro.loadgen``.

Runs one open-loop profile and prints the SLO scoreboard (or the full
JSON report with ``--json``).  Exit codes: 0 — every SLO passed and no
internal errors; 1 — at least one SLO failed or an internal error was
observed; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.loadgen.driver import LoadDriver, LoadProfile
from repro.loadgen.slo import default_slos, parse_slo_overrides
from repro.loadgen.workload import MIXES


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description=(
            "Open-loop load driver: replay a seeded XMark read/write mix "
            "at a target rate against the auction serving stack and "
            "score the run against declared SLOs."
        ),
    )
    parser.add_argument(
        "--rate", type=float, default=100.0,
        help="target arrival rate, requests/second (default 100)",
    )
    parser.add_argument(
        "--duration", type=float, default=10.0,
        help="run duration in seconds (default 10)",
    )
    parser.add_argument(
        "--mix", default="xmark-rw", choices=sorted(MIXES),
        help="workload mix (default xmark-rw)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="workload / arrival / service-model seed (default 1)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="executor worker threads (default 4)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded queue capacity (default 64)",
    )
    parser.add_argument(
        "--timeout-ms", type=float, default=2000.0,
        help="per-request deadline in milliseconds (default 2000)",
    )
    parser.add_argument(
        "--arrivals", default="uniform", choices=("uniform", "poisson"),
        help="arrival process (default uniform)",
    )
    parser.add_argument(
        "--virtual", action="store_true",
        help=(
            "deterministic virtual-time mode: same seed, same report, "
            "bit for bit — no wall clock involved"
        ),
    )
    parser.add_argument(
        "--slo", action="append", default=[], metavar="METRIC=THRESHOLD",
        help=(
            "override or add an SLO (repeatable), e.g. "
            "--slo latency_p99_ms=250"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full JSON report instead of the scoreboard",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        profile = LoadProfile(
            rate=args.rate,
            duration_s=args.duration,
            mix=args.mix,
            seed=args.seed,
            workers=args.workers,
            queue_size=args.queue_size,
            timeout_ms=args.timeout_ms,
            arrivals=args.arrivals,
        )
        slos = parse_slo_overrides(args.slo, default_slos(profile.rate))
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    driver = LoadDriver(
        profile,
        mode="virtual" if args.virtual else "wall",
        slos=slos,
    )
    report = driver.run()
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
