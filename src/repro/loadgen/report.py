"""The load report: schema, assembly, validation, rendering.

One JSON document per run — the SLO scoreboard CI gates on and every
scale-out PR reports against.  The schema is versioned
(``repro.loadgen.report/v1``) and validated by :func:`validate_report`
(hand-rolled; the container deliberately has no jsonschema dependency),
and a virtual-mode report is a pure function of the profile seed:
``json.dumps(..., sort_keys=True)`` of two same-seed runs is
byte-identical (no wall timestamps, no environment echo).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.slo import SLO

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.loadgen.driver import LoadProfile, RunRecorder

SCHEMA = "repro.loadgen.report/v1"

#: required key -> type (or tuple of types) at each level of the report.
_TOP_KEYS: dict[str, Any] = {
    "schema": str,
    "mode": str,
    "config": dict,
    "requests": dict,
    "rates": dict,
    "latency_ms": dict,
    "schedule_lag_ms": dict,
    "slos": list,
    "passed": bool,
    "elapsed_s": (int, float),
    "counters": dict,
    "internal_errors": list,
}
_REQUEST_KEYS = (
    "scheduled", "dispatched", "completed", "successes",
    "shed", "refused_total", "internal_errors",
)
_RATE_KEYS = (
    "throughput_rps", "shed_rate", "refusal_rate", "internal_error_rate",
)
_LATENCY_KEYS = ("count", "mean", "p50", "p90", "p99", "p999", "max")
_SLO_KEYS = ("name", "metric", "direction", "threshold", "observed", "passed")


def _ms(us: float) -> float:
    return round(us / 1000.0, 3)


def _histogram_ms(histogram: LatencyHistogram) -> dict:
    return {
        "count": histogram.count,
        "mean": _ms(histogram.mean),
        "p50": _ms(histogram.percentile(50.0)),
        "p90": _ms(histogram.percentile(90.0)),
        "p99": _ms(histogram.percentile(99.0)),
        "p999": _ms(histogram.percentile(99.9)),
        "max": _ms(histogram.max_recorded or 0),
    }


def observed_metrics(data: dict) -> dict[str, float]:
    """The flat metric view the SLO layer evaluates against."""
    latency = data["latency_ms"]
    lag = data["schedule_lag_ms"]
    rates = data["rates"]
    return {
        "latency_p50_ms": latency["p50"],
        "latency_p90_ms": latency["p90"],
        "latency_p99_ms": latency["p99"],
        "latency_p999_ms": latency["p999"],
        "latency_max_ms": latency["max"],
        "schedule_lag_p99_ms": lag["p99"],
        "throughput_rps": rates["throughput_rps"],
        "shed_rate": rates["shed_rate"],
        "refusal_rate": rates["refusal_rate"],
        "internal_error_rate": rates["internal_error_rate"],
    }


@dataclass
class LoadReport:
    """A finished run's scoreboard."""

    data: dict

    @property
    def passed(self) -> bool:
        return bool(self.data["passed"])

    @property
    def ok(self) -> bool:
        """Passed every SLO *and* saw zero internal errors."""
        return self.passed and not self.data["internal_errors"]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.data, sort_keys=True, indent=indent)

    def render(self) -> str:
        data = self.data
        requests = data["requests"]
        rates = data["rates"]
        latency = data["latency_ms"]
        lines = [
            f"loadgen {data['mode']} run: "
            + ("SLOs PASS" if data["passed"] else "SLOs FAIL"),
            f"  offered: {data['config']['rate']:g} req/s for "
            f"{data['config']['duration_s']:g}s "
            f"(mix {data['config']['mix']}, seed {data['config']['seed']})",
            f"  requests: {requests['scheduled']} scheduled, "
            f"{requests['successes']} ok, {requests['refused_total']} "
            f"refused ({requests['shed']} shed), "
            f"{requests['internal_errors']} internal",
            f"  throughput: {rates['throughput_rps']:.1f} req/s   "
            f"shed rate: {rates['shed_rate']:.3%}",
            f"  latency ms: p50={latency['p50']:g} p90={latency['p90']:g} "
            f"p99={latency['p99']:g} p999={latency['p999']:g} "
            f"max={latency['max']:g}",
            f"  schedule lag ms: p99={data['schedule_lag_ms']['p99']:g} "
            f"max={data['schedule_lag_ms']['max']:g}",
        ]
        for verdict in data["slos"]:
            mark = "PASS" if verdict["passed"] else "FAIL"
            lines.append(
                f"  {mark}  {verdict['name']}: {verdict['metric']} "
                f"{verdict['observed']:g} {verdict['direction']} "
                f"{verdict['threshold']:g}"
            )
        if data["internal_errors"]:
            lines.append(
                f"  INTERNAL ERRORS: {data['internal_errors'][:3]}"
            )
        return "\n".join(lines)


def build_report(
    *,
    profile: "LoadProfile",
    mode: str,
    recorder: "RunRecorder",
    elapsed_s: float,
    slos: list[SLO],
    counters: dict,
) -> LoadReport:
    """Assemble and judge one run's report."""
    scheduled = profile.scheduled_requests
    denominator = max(1, scheduled)
    data: dict = {
        "schema": SCHEMA,
        "mode": mode,
        "config": profile.to_dict(),
        "requests": {
            "scheduled": scheduled,
            "dispatched": recorder.dispatched,
            "completed": recorder.completed,
            "successes": recorder.successes,
            "shed": recorder.shed,
            "refused_total": recorder.refused_total,
            "internal_errors": recorder.internal_count,
            "refusals": dict(sorted(recorder.refusals.items())),
        },
        "rates": {
            "throughput_rps": round(
                recorder.successes / elapsed_s if elapsed_s > 0 else 0.0, 3
            ),
            "shed_rate": round(recorder.shed / denominator, 6),
            "refusal_rate": round(recorder.refused_total / denominator, 6),
            "internal_error_rate": round(
                recorder.internal_count / denominator, 6
            ),
        },
        "latency_ms": _histogram_ms(recorder.latency),
        "schedule_lag_ms": _histogram_ms(recorder.schedule_lag),
        "elapsed_s": round(elapsed_s, 6),
        "counters": counters,
        "internal_errors": list(recorder.internal_errors[:8]),
    }
    metrics = observed_metrics(data)
    verdicts = [slo.evaluate(metrics[slo.metric]) for slo in slos]
    data["slos"] = [verdict.to_dict() for verdict in verdicts]
    data["passed"] = all(verdict.passed for verdict in verdicts)
    return LoadReport(data)


def validate_report(data: dict) -> list[str]:
    """Validate *data* against the v1 report schema.

    Returns a list of problems (empty = valid).  The checks cover key
    presence, types, the schema tag, and cross-field consistency
    (counts add up, rates in range, SLO entries well-formed).
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["report is not an object"]
    for key, expected in _TOP_KEYS.items():
        if key not in data:
            problems.append(f"missing key: {key}")
        elif not isinstance(data[key], expected):
            problems.append(
                f"{key}: expected {expected}, got {type(data[key]).__name__}"
            )
    if problems:
        return problems
    if data["schema"] != SCHEMA:
        problems.append(
            f"schema: expected {SCHEMA!r}, got {data['schema']!r}"
        )
    if data["mode"] not in ("wall", "virtual"):
        problems.append(f"mode: unknown mode {data['mode']!r}")
    requests = data["requests"]
    for key in _REQUEST_KEYS:
        if not isinstance(requests.get(key), int):
            problems.append(f"requests.{key}: missing or not an int")
    if not isinstance(requests.get("refusals"), dict):
        problems.append("requests.refusals: missing or not an object")
    for key in _RATE_KEYS:
        value = data["rates"].get(key)
        if not isinstance(value, (int, float)):
            problems.append(f"rates.{key}: missing or not a number")
        elif key != "throughput_rps" and not 0.0 <= value <= 1.0:
            problems.append(f"rates.{key}: {value} outside [0, 1]")
    for section in ("latency_ms", "schedule_lag_ms"):
        for key in _LATENCY_KEYS:
            if not isinstance(data[section].get(key), (int, float)):
                problems.append(f"{section}.{key}: missing or not a number")
    for index, verdict in enumerate(data["slos"]):
        if not isinstance(verdict, dict):
            problems.append(f"slos[{index}]: not an object")
            continue
        for key in _SLO_KEYS:
            if key not in verdict:
                problems.append(f"slos[{index}].{key}: missing")
    if not problems:
        if requests["completed"] > requests["dispatched"]:
            problems.append("requests: completed exceeds dispatched")
        accounted = (
            requests["successes"]
            + requests["refused_total"]
            + requests["internal_errors"]
        )
        if accounted > requests["dispatched"]:
            problems.append(
                "requests: outcomes exceed dispatched "
                f"({accounted} > {requests['dispatched']})"
            )
        if sum(requests["refusals"].values()) != requests["refused_total"]:
            problems.append("requests.refusals: per-code counts disagree "
                            "with refused_total")
        if data["passed"] != all(v["passed"] for v in data["slos"]):
            problems.append("passed: disagrees with per-SLO verdicts")
    return problems
