"""Seeded XMark workload mixes for the open-loop driver.

A :class:`Workload` is a deterministic stream of :class:`Operation`
values drawn from a named mix over the auction service's endpoints
(Section 2's Web service, served by
:class:`~repro.usecases.webservice.AuctionFrontEnd`):

========================  =====  =============================================
operation                 class  runs as
========================  =====  =============================================
``get_item_nolog``        read   lock-free snapshot read through the executor
``highest_bid``           read   snapshot read (bid scan + aggregate)
``watchers``              read   snapshot read
``get_item``              write  logged lookup: snap-inserts a log entry
``place_bid``             txn    MVCC read-check-write transaction
``add_watch``             txn    MVCC idempotent insert
========================  =====  =============================================

Determinism: operation *i* is a pure function of ``(seed, i)`` — the
stream does not depend on how fast operations complete or in which
order their futures resolve, which is what makes a virtual-time run
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: op name -> ("read" | "write" | "txn")
OP_CLASSES: dict[str, str] = {
    "get_item_nolog": "read",
    "highest_bid": "read",
    "watchers": "read",
    "get_item": "write",
    "place_bid": "txn",
    "add_watch": "txn",
}

#: mix name -> ((op name, weight), ...); weights need not sum to 1.
MIXES: dict[str, tuple[tuple[str, float], ...]] = {
    # The scoreboard mix: mostly reads, a steady trickle of logged
    # lookups and transactional writes — production-shaped traffic.
    "xmark-rw": (
        ("get_item_nolog", 0.55),
        ("highest_bid", 0.12),
        ("watchers", 0.08),
        ("get_item", 0.15),
        ("place_bid", 0.06),
        ("add_watch", 0.04),
    ),
    # Pure-read profile (snapshot path saturation).
    "xmark-read": (
        ("get_item_nolog", 0.70),
        ("highest_bid", 0.20),
        ("watchers", 0.10),
    ),
    # Write-heavy profile (write lock + journal + OCC pressure).
    "xmark-write": (
        ("get_item", 0.50),
        ("place_bid", 0.30),
        ("add_watch", 0.15),
        ("get_item_nolog", 0.05),
    ),
}


@dataclass(frozen=True)
class Operation:
    """One scheduled request: what to run and how to run it."""

    index: int
    name: str
    itemid: str
    userid: str
    amount: float | None = None

    @property
    def op_class(self) -> str:
        return OP_CLASSES[self.name]

    @property
    def query(self) -> str | None:
        """Query text for executor-routed operations (None for the
        transactional endpoints, which run through the session API)."""
        if self.name == "get_item_nolog":
            return "get_item_nolog($itemid, $userid)"
        if self.name == "get_item":
            return "get_item($itemid, $userid)"
        if self.name == "highest_bid":
            return "highest_bid($bids, $itemid)"
        if self.name == "watchers":
            return (
                "for $w in watchers($watchlist, $itemid) "
                "return string($w/@user)"
            )
        return None

    @property
    def bindings(self) -> dict:
        if self.name in ("get_item_nolog", "get_item"):
            return {"itemid": self.itemid, "userid": self.userid}
        return {"itemid": self.itemid}


class Workload:
    """A deterministic operation stream for one load run.

    Parameters:
        mix: a key of :data:`MIXES`.
        seed: RNG seed; two workloads with equal (mix, seed, items,
            persons) yield identical streams.
        items / persons: id ranges matching the served XMark document.
    """

    def __init__(
        self,
        mix: str = "xmark-rw",
        seed: int = 1,
        *,
        items: int = 40,
        persons: int = 50,
    ):
        if mix not in MIXES:
            raise ValueError(f"unknown mix {mix!r}; one of {sorted(MIXES)}")
        self.mix = mix
        self.seed = seed
        self.items = items
        self.persons = persons
        self._names = [name for name, _ in MIXES[mix]]
        self._weights = [weight for _, weight in MIXES[mix]]
        self._rng = random.Random(f"repro.loadgen:{mix}:{seed}")
        self._next_index = 0

    def operation(self) -> Operation:
        """The next operation in the stream."""
        rng = self._rng
        index = self._next_index
        self._next_index += 1
        name = rng.choices(self._names, weights=self._weights, k=1)[0]
        # A mild Zipf-ish skew (power draw) keeps some items hot, the
        # way real catalogs behave — hot reads exercise the result
        # cache, hot bids exercise OCC conflicts.
        item = int(self.items * rng.random() ** 2.0) % self.items
        person = rng.randrange(self.persons)
        amount = None
        if name == "place_bid":
            # Mostly-increasing amounts so a fraction of bids are
            # accepted (beat the high bid) and the rest roll back.
            amount = round(10.0 + index * 0.01 + rng.random() * 5.0, 2)
        return Operation(
            index=index,
            name=name,
            itemid=f"item{item}",
            userid=f"person{person}",
            amount=amount,
        )
