"""Seeded hostile-input fuzz campaign over the service boundary.

Three attack channels, mirroring how untrusted bytes actually reach the
engine:

* **binding** — attacker-controlled *values* cross the parameter-binding
  boundary of a prepared query (the XQJ ``bindString`` idiom the service
  uses).  The campaign asserts the boundary is *inert*: every payload —
  injection fragments, query syntax, quote-breakers, control characters,
  megabyte blobs — round-trips through ``string($v)`` unchanged, a
  search probe over the auction document returns a plain count, and the
  store version is untouched.  A mismatch is an **injection escape**
  (CWE-652), the one outcome class that fails the campaign outright.
* **parser** — attacker-controlled *query text* hits the front door:
  admission control first (:meth:`~repro.resilience.admission.
  AdmissionLimits.check_query_text`), then a scratch engine ``prepare``
  — hostile text is parsed and compiled but **never executed**.
* **document** — attacker-controlled *XML* hits the document parser:
  deeply-nested and oversized documents, malformed prologs, DOCTYPEs,
  broken entities, truncated tags.

Every case must end in a success or a **typed refusal** (an
:class:`~repro.errors.XQueryError` carrying a registered code — the
``REPR0000``–``REPR0008`` registry for engine-level refusals, W3C
``XPST``/``FODC``-style codes for language-level ones).  A crash
(untyped exception), a hang (case over its time budget) or an injection
escape fails the campaign.

The corpus is a pure function of ``(seed, case index)`` — re-running
with the same seed replays the identical campaign, and any failure
message carries the case index so one case can be replayed alone.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import dataclass, field

from repro.errors import XQueryError
from repro.resilience.admission import AdmissionLimits

CHANNELS = ("binding", "parser", "document")

#: Classic XQuery-injection payload shapes (CWE-652): predicate
#: breakouts, comment trailers, enclosed-expression escapes, update
#: syntax smuggled inside a value.  Mutated per case.
INJECTION_TEMPLATES = (
    "person0'] | $log | $auction//item['x",
    '" or ""="',
    "'] , delete { $log/logentry } , $auction//item['",
    "x') (: chop :) ",
    "} , snap delete { $log/logentry } , {",
    "item0\" or @id != \"",
    "$userid || doc('file:///etc/passwd')",
    "<bid itemid=\"item0\" amount=\"1e9\"/>",
    "]]>]]><!--",
    "&#x27;] | $watchlist | ['",
    "'; declare variable $pwn := 1; '",
    "*[1=1]",
)

#: Token soup alphabet for randomly-assembled query text.
_QUERY_TOKENS = (
    "snap", "delete", "insert", "replace", "with", "into", "for", "let",
    "return", "if", "then", "else", "declare", "function", "variable",
    "$v", "$auction", "$log", "{", "}", "(", ")", "[", "]", "//", "/",
    "@id", "item", "::", ",", "'", '"', "<", ">", "</", "/>", "<!--",
    "-->", "<![CDATA[", "]]>", "&amp;", "&#0;", ";", ":=", "1", "0.5",
    ".", "*", "=", "!=", "e", " ", "\t", "\n",
)

#: Malformed XML prologs / document openers.
_BAD_PROLOGS = (
    "<?xml",
    "<?xml version=\"1.0'?><a/>",
    "<?xml version='1.0' encoding='?><a/>",
    "<!DOCTYPE a [<!ENTITY x \"y\">]><a>&x;</a>",
    "<?xml?><?xml?><a/>",
    "\x00<?xml version='1.0'?><a/>",
    "<?xml version='1.0'?>",
    "<?xml version='1.0'?><a b=c></a>",
)

_CONTROL_CHARS = "\x00\x01\x08\x0b\x1b\x7f  ﻿"


class HostileCorpus:
    """Deterministic hostile-payload stream.

    ``case(i)`` is a pure function of ``(seed, i)`` — no state between
    cases, so campaigns shard and replay trivially.
    """

    #: channel weights: binding and parser carry most of the risk.
    _CUTS = (("binding", 0.40), ("parser", 0.80), ("document", 1.0))

    def __init__(self, seed: int = 1):
        self.seed = seed

    def case(self, index: int) -> tuple[str, str]:
        """The (channel, payload) pair for case *index*."""
        rng = random.Random(f"repro.loadgen.hostile:{self.seed}:{index}")
        roll = rng.random()
        for channel, cut in self._CUTS:
            if roll < cut:
                break
        if channel == "binding":
            return channel, self._binding_payload(rng)
        if channel == "parser":
            return channel, self._query_payload(rng)
        return channel, self._document_payload(rng)

    # -- payload generators ------------------------------------------------

    def _binding_payload(self, rng: random.Random) -> str:
        kind = rng.random()
        if kind < 0.45:
            return self._mutate(rng.choice(INJECTION_TEMPLATES), rng)
        if kind < 0.65:
            return "".join(
                rng.choice(_QUERY_TOKENS) for _ in range(rng.randrange(1, 40))
            )
        if kind < 0.80:
            # Unicode / control-character soup.
            return "".join(
                chr(rng.choice((
                    rng.randrange(32, 127),
                    rng.randrange(0x80, 0x2FFF),
                    ord(rng.choice(_CONTROL_CHARS)),
                )))
                for _ in range(rng.randrange(1, 64))
            )
        if kind < 0.98:
            # A plausible-looking id, sometimes a real one.
            return f"item{rng.randrange(64)}" + rng.choice(
                ("", "'", '"', "]", "}", "\n")
            )
        # Oversized value (bounded: the point is inertness, not OOM).
        return rng.choice(("A", "'", "{", "<")) * rng.randrange(16384, 65536)

    def _query_payload(self, rng: random.Random) -> str:
        kind = rng.random()
        if kind < 0.35:
            return " ".join(
                rng.choice(_QUERY_TOKENS) for _ in range(rng.randrange(1, 80))
            )
        if kind < 0.55:
            # Deep homogeneous nesting — the stack-depth attack.
            depth = rng.choice((64, 256, 1024, 4096, 16384))
            opener, closer = rng.choice(
                (("(", ")"), ("<a>", "</a>"), ("if (1) then ", " else 0"))
            )
            return opener * depth + "1" + closer * depth
        if kind < 0.70:
            # Truncation of a valid query.
            query = (
                "for $i in $auction//item[@id = 'item0'] "
                "return snap insert { <x/> } into { $i }"
            )
            return query[: rng.randrange(1, len(query))]
        if kind < 0.85:
            # Malformed prolog declarations.
            return rng.choice((
                "declare variable $x :=",
                "declare function f($x) { f",
                "declare variable $v := $v; $v",
                "declare function snap() { 1 }; snap()",
                "import module namespace x = 'y';",
            ))
        if kind < 0.98:
            # Near-valid expression with one corrupted character.
            query = "count($auction//item[@id = $v])"
            pos = rng.randrange(len(query))
            return query[:pos] + rng.choice("\x00{}<'\"&;") + query[pos + 1:]
        return rng.choice(("(", "'", "\"", "<")) * rng.randrange(16384, 65536)

    def _document_payload(self, rng: random.Random) -> str:
        kind = rng.random()
        if kind < 0.25:
            depth = rng.choice((64, 1024, 8192, 20000))
            return "<a>" * depth + "x" + "</a>" * depth
        if kind < 0.45:
            return rng.choice(_BAD_PROLOGS)
        if kind < 0.65:
            # Broken structure: mismatched / truncated / duplicated.
            return rng.choice((
                "<a><b></a></b>",
                "<a",
                "<a href='x>y</a>",
                "<a x='1' x='2'/>",
                "<a>&bogus;</a>",
                "<a>&#xD800;</a>",
                "<a><![CDATA[never closed",
                "<a></a><b></b>",
                "text outside",
                "",
            ))
        if kind < 0.85:
            # Tag soup.
            return "".join(
                rng.choice(("<", ">", "/", "a", "b", "'", '"', "=", " ",
                            "&", ";", "-", "!", "[", "]"))
                for _ in range(rng.randrange(1, 128))
            )
        # Oversized but well-formed-ish: wide fan-out, not deep.
        n = rng.randrange(1000, 4000)
        return "<r>" + "<i/>" * n + "</r>"

    @staticmethod
    def _mutate(payload: str, rng: random.Random) -> str:
        """Light mutation: duplicate, splice, case-flip, pad."""
        roll = rng.random()
        if roll < 0.25:
            return payload * rng.randrange(2, 5)
        if roll < 0.5 and payload:
            pos = rng.randrange(len(payload))
            return payload[:pos] + rng.choice(_QUERY_TOKENS) + payload[pos:]
        if roll < 0.75:
            return payload.swapcase()
        return payload


@dataclass
class FuzzReport:
    """One campaign's outcome tally and verdict."""

    cases: int
    seed: int
    successes: int = 0
    refused: dict[str, int] = field(default_factory=dict)
    per_channel: dict[str, int] = field(default_factory=dict)
    crashes: list[str] = field(default_factory=list)
    hangs: list[str] = field(default_factory=list)
    escapes: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def refused_total(self) -> int:
        return sum(self.refused.values())

    @property
    def ok(self) -> bool:
        """Campaign verdict: no crash, no hang, no injection escape,
        and every case accounted for as success or typed refusal."""
        return (
            not self.crashes
            and not self.hangs
            and not self.escapes
            and self.successes + self.refused_total == self.cases
        )

    def to_dict(self) -> dict:
        return {
            "schema": "repro.loadgen.fuzz/v1",
            "cases": self.cases,
            "seed": self.seed,
            "successes": self.successes,
            "refused": dict(sorted(self.refused.items())),
            "refused_total": self.refused_total,
            "per_channel": dict(sorted(self.per_channel.items())),
            "crashes": self.crashes[:16],
            "crash_count": len(self.crashes),
            "hangs": self.hangs[:16],
            "hang_count": len(self.hangs),
            "escapes": self.escapes[:16],
            "escape_count": len(self.escapes),
            "elapsed_s": round(self.elapsed_s, 3),
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            "fuzz campaign: " + ("CLEAN" if self.ok else "FAILED"),
            f"  {self.cases} cases (seed {self.seed}) in "
            f"{self.elapsed_s:.1f}s — {self.successes} succeeded, "
            f"{self.refused_total} typed refusals",
            f"  channels: {dict(sorted(self.per_channel.items()))}",
            f"  refusal codes: {dict(sorted(self.refused.items()))}",
        ]
        for label, bucket in (
            ("CRASHES", self.crashes),
            ("HANGS", self.hangs),
            ("INJECTION ESCAPES", self.escapes),
        ):
            if bucket:
                lines.append(f"  {label} ({len(bucket)}): {bucket[:3]}")
        return "\n".join(lines)


class FuzzCampaign:
    """Run *cases* hostile inputs against a real, small service stack.

    Parameters:
        cases / seed: campaign size and corpus seed.
        case_budget_s: per-case wall budget; a slower case is a hang
            finding (the engine must refuse hostile input *quickly*).
        items / persons: XMark scale of the target document (small — the
            campaign probes the boundary, not throughput).
    """

    #: Recreate the scratch parser engine this often so its prepared
    #: cache cannot grow without bound across a long campaign.
    _SCRATCH_RECYCLE = 256

    def __init__(
        self,
        cases: int = 2000,
        seed: int = 1,
        *,
        case_budget_s: float = 5.0,
        items: int = 8,
        persons: int = 8,
    ):
        if cases < 1:
            raise ValueError("cases must be >= 1")
        self.cases = cases
        self.seed = seed
        self.case_budget_s = case_budget_s
        self.items = items
        self.persons = persons
        #: front-door bounds for attacker query text, mirroring a
        #: production serving stack (oversized corpus payloads exceed
        #: them on purpose, to exercise the refusal).
        self.limits = AdmissionLimits(max_query_bytes=32768, max_depth=128)

    def run(self) -> FuzzReport:
        from repro.engine import Engine
        from repro.usecases.webservice import AuctionService
        from repro.xmark import XMarkConfig, generate_auction_xml
        from repro.xmlio.parser import parse_document, parse_fragment

        corpus = HostileCorpus(self.seed)
        report = FuzzReport(cases=self.cases, seed=self.seed)
        xml = generate_auction_xml(
            XMarkConfig(
                persons=self.persons,
                items=self.items,
                open_auctions=2,
                closed_auctions=2,
            )
        )
        service = AuctionService(auction_xml=xml, maxlog=64)
        engine = service.engine
        # The two prepared probes of the binding boundary: an identity
        # round-trip and a document search using the bound value.
        echo = engine.prepare("string($v)")
        probe = engine.prepare("count($auction//item[@id = $v])")
        store = engine.store
        scratch = Engine()
        started = time.perf_counter()
        try:
            for index in range(self.cases):
                channel, payload = corpus.case(index)
                report.per_channel[channel] = (
                    report.per_channel.get(channel, 0) + 1
                )
                if channel == "parser" and index % self._SCRATCH_RECYCLE == 0:
                    scratch = Engine()
                case_start = time.perf_counter()
                try:
                    if channel == "binding":
                        version_before = store._version
                        out = echo.execute(
                            bindings={"v": payload}
                        ).first_value()
                        if out != payload:
                            report.escapes.append(
                                f"case {index}: string($v) round-trip "
                                f"mutated the value ({payload!r:.80} -> "
                                f"{out!r:.80})"
                            )
                        count = probe.execute(
                            bindings={"v": payload}
                        ).first_value()
                        if not isinstance(count, int) or count < 0:
                            report.escapes.append(
                                f"case {index}: search probe returned "
                                f"{count!r}, not a count"
                            )
                        if store._version != version_before:
                            report.escapes.append(
                                f"case {index}: bound value "
                                f"{payload!r:.80} mutated the store"
                            )
                    elif channel == "parser":
                        # Front-door discipline: admission first, then
                        # parse+compile on a scratch engine.  Hostile
                        # text is NEVER executed.
                        self.limits.check_query_text(payload)
                        scratch.prepare(payload)
                    else:
                        if payload.lstrip().startswith("<?"):
                            parse_document(payload)
                        else:
                            parse_fragment(payload)
                except XQueryError as error:
                    code = error.code
                    if code:
                        report.refused[code] = (
                            report.refused.get(code, 0) + 1
                        )
                    else:  # a typed class without a code is still a crash
                        report.crashes.append(
                            f"case {index} [{channel}]: code-less "
                            f"{type(error).__name__}: {error}"
                        )
                except Exception as error:  # noqa: BLE001 - the finding
                    report.crashes.append(
                        f"case {index} [{channel}]: "
                        f"{type(error).__name__}: {error!s:.160} "
                        f"(payload {payload!r:.80})"
                    )
                else:
                    report.successes += 1
                case_s = time.perf_counter() - case_start
                if case_s > self.case_budget_s:
                    report.hangs.append(
                        f"case {index} [{channel}] took {case_s:.1f}s "
                        f"(budget {self.case_budget_s:g}s)"
                    )
        finally:
            service.close()
        report.elapsed_s = time.perf_counter() - started
        return report


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen.hostile",
        description=(
            "Seeded hostile-input fuzz campaign over the parameter-"
            "binding boundary, the query parser and the document parser. "
            "Exit 0: every case ended in success or a typed refusal. "
            "Exit 1: a crash, hang or injection escape was found."
        ),
    )
    parser.add_argument(
        "--cases", type=int, default=2000,
        help="number of fuzz cases (default 2000)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="corpus seed; same seed replays the same campaign (default 1)",
    )
    parser.add_argument(
        "--budget-ms", type=float, default=5000.0,
        help="per-case time budget; slower is a hang finding (default 5000)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of the summary",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        campaign = FuzzCampaign(
            cases=args.cases,
            seed=args.seed,
            case_budget_s=args.budget_ms / 1000.0,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = campaign.run()
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
