"""E10 — Section 4.3: the join/group-by optimization.

Paper claim: "Naively evaluated, this query has complexity
O(|person| * |closed_auction|).  Using an outer join/group by with a typed
hash join, we can recover the join complexity of
O(|person| + |closed_auction| + |matches|), resulting in a substantial
improvement."

The benchmark runs the Q8 variant interpreted (nested loop) and through
the optimizer (GroupBy(LeftOuterJoin)) and, in the scaling case, prints
the paper-shaped table: time per scale, naive-vs-optimized ratio, and the
growth rate that separates quadratic from linear behaviour.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import auction_engine

Q8_VARIANT = """
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (insert { <buyer person="{$t/buyer/@person}"
                          itemid="{$t/itemref/@item}" /> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>
"""


def run_naive(persons: int, closed: int) -> None:
    engine = auction_engine(persons, closed)
    engine.execute(Q8_VARIANT, optimize=False)


def run_optimized(persons: int, closed: int) -> None:
    engine = auction_engine(persons, closed)
    engine.execute(Q8_VARIANT, optimize=True)


@pytest.mark.benchmark(group="q8-small")
def test_q8_naive_small(benchmark):
    benchmark.pedantic(run_naive, args=(30, 40), rounds=3, iterations=1)


@pytest.mark.benchmark(group="q8-small")
def test_q8_optimized_small(benchmark):
    benchmark.pedantic(run_optimized, args=(30, 40), rounds=3, iterations=1)


@pytest.mark.benchmark(group="q8-medium")
def test_q8_naive_medium(benchmark):
    benchmark.pedantic(run_naive, args=(60, 80), rounds=3, iterations=1)


@pytest.mark.benchmark(group="q8-medium")
def test_q8_optimized_medium(benchmark):
    benchmark.pedantic(run_optimized, args=(60, 80), rounds=3, iterations=1)


@pytest.mark.benchmark(group="q8-scaling")
def test_q8_complexity_table(benchmark):
    """One-shot sweep printing the paper-shaped comparison table and
    asserting the complexity *shape*: doubling the input should roughly
    quadruple naive time (quadratic) but at most ~triple optimized time
    (linear, with constant-factor noise allowed)."""

    scales = [(30, 40), (60, 80), (120, 160)]

    def sweep():
        rows = []
        for persons, closed in scales:
            t0 = time.perf_counter()
            run_naive(persons, closed)
            naive_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            run_optimized(persons, closed)
            optimized_s = time.perf_counter() - t0
            rows.append((persons, closed, naive_s, optimized_s))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("E10: XMark Q8 variant — naive nested loop vs outer-join/group-by")
    print(f"{'persons':>8} {'closed':>7} {'naive[s]':>10} {'optimized[s]':>13} {'speedup':>8}")
    for persons, closed, naive_s, optimized_s in rows:
        print(
            f"{persons:>8} {closed:>7} {naive_s:>10.3f} {optimized_s:>13.3f} "
            f"{naive_s / optimized_s:>8.1f}x"
        )
    naive_growth = rows[-1][2] / rows[0][2]
    optimized_growth = rows[-1][3] / rows[0][3]
    print(
        f"growth over 4x input: naive {naive_growth:.1f}x, "
        f"optimized {optimized_growth:.1f}x"
    )
    # Shape assertions (generous bounds; we claim shape, not constants).
    assert rows[-1][2] > rows[-1][3], "optimized must win at the top scale"
    assert naive_growth > optimized_growth, (
        "naive time must grow strictly faster than optimized"
    )
