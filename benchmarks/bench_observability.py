"""Observability layer: what instrumentation costs, on and off.

The design constraint is that *disabled* instrumentation is free in
practice: every site on the hot paths is ``if tracer is not None`` — one
attribute load plus a pointer compare.  Three rows measure the same
cache-hit ``get_item`` workload as ``bench_prepared_queries.py``:

* **disabled** — stats off (the default); must stay within 5 % of the
  pre-instrumentation baseline (``BENCH_observability.json`` records the
  comparison).
* **collect-stats** — full tracing: phase spans, snap/update metrics,
  store churn, cache counters.  This row is allowed to cost more; it
  documents *how much* the evidence costs.
* **slow-query-armed** — hook installed but threshold never reached:
  the per-call cost of arming the hook (one ``perf_counter`` pair).

Record with::

    pytest benchmarks/bench_observability.py --benchmark-only \
        --benchmark-json=/tmp/bench_obs.json
"""

from __future__ import annotations

import time

import pytest

from repro import ExecutionOptions
from repro.usecases.webservice import SERVICE_MODULE, AuctionService

_REQUEST = ("item0", "person0")
_ROUNDS = 8
_MAXLOG = 10**6

_STATS = ExecutionOptions(collect_stats=True)


def _service() -> AuctionService:
    return AuctionService(maxlog=_MAXLOG)


def _full_text(itemid: str, userid: str) -> str:
    return SERVICE_MODULE + f'\nget_item("{itemid}", "{userid}")'


@pytest.mark.benchmark(group="observability")
def test_cache_hit_stats_disabled(benchmark):
    engine = _service().engine
    text = _full_text(*_REQUEST)
    engine.execute(text)

    def run():
        for _ in range(_ROUNDS):
            engine.execute(text)

    benchmark.pedantic(run, rounds=5, iterations=1)


@pytest.mark.benchmark(group="observability")
def test_cache_hit_collect_stats(benchmark):
    engine = _service().engine
    text = _full_text(*_REQUEST)
    engine.execute(text)

    def run():
        for _ in range(_ROUNDS):
            engine.execute(text, options=_STATS)

    benchmark.pedantic(run, rounds=5, iterations=1)


@pytest.mark.benchmark(group="observability")
def test_cache_hit_slow_query_armed(benchmark):
    service = AuctionService(maxlog=_MAXLOG)
    engine = service.engine
    engine.on_slow_query = lambda record: None
    engine.slow_query_ms = 1e9  # never fires; measures the arming cost
    text = _full_text(*_REQUEST)
    engine.execute(text)

    def run():
        for _ in range(_ROUNDS):
            engine.execute(text)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_stats_content_sanity():
    """The traced row above must actually produce the acceptance-critical
    numbers (phase times, snap count, pending updates, cache outcome)."""
    engine = _service().engine
    text = _full_text(*_REQUEST)
    engine.execute(text)
    stats = engine.execute(text, options=_STATS).stats
    assert stats.cache_hits == 1
    assert stats.snap_count >= 1
    assert stats.pending_updates_total >= 1  # get_item logs an entry
    assert "evaluate" in stats.phase_times_ms
    assert "snap-apply" in stats.phase_times_ms


def test_disabled_overhead_ceiling():
    """Acceptance guard: stats-off execution through the instrumented
    engine must stay close to stats-on-demand-free speed.  Comparing
    against the *traced* row within one process is the only self-contained
    check available here (cross-commit numbers live in
    BENCH_observability.json); assert the disabled path is meaningfully
    cheaper than the traced path, i.e. the guards really short-circuit.
    """
    engine = _service().engine
    text = _full_text(*_REQUEST)
    engine.execute(text)
    rounds = 25

    start = time.perf_counter()
    for _ in range(rounds):
        engine.execute(text)
    disabled = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        engine.execute(text, options=_STATS)
    enabled = time.perf_counter() - start

    # Tracing costs real work (span objects, counter dicts); if disabled
    # were not cheaper, the None-guards would not be short-circuiting.
    assert disabled < enabled * 1.10, (
        f"disabled path ({disabled:.4f}s) should not exceed traced path "
        f"({enabled:.4f}s) — the None-guards are being paid when off"
    )
