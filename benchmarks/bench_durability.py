"""Durability: what the write-ahead journal costs a serving workload.

The workload is the paper's logged service call: 32 ``get_item``
requests against the XMark auction service.  Each call runs two snaps —
the ``nextid()`` counter replace and the ``logentry`` insert — so a
journaled round appends 64 frames; ``maxlog`` is set high enough that
the archive rollover never fires and every row performs identical
evaluation work.  Every round gets a fresh service (and, for the
durable rows, a fresh empty journal directory) via pedantic setup, so
setup cost is excluded and no round inherits another's journal.

* **unjournaled** — a plain in-memory :class:`AuctionService`: the
  pre-durability discipline and the baseline for the overhead ratios.
* **journaled-fsync-always** — ``DurableEngine`` default: one fsync per
  applied snap, every acknowledged snap on disk.  The cost is the disk
  flush, not the journaling: this row is storage-bound by design.
* **journaled-fsync-batch** — ``fsync="batch", fsync_batch=8``: one
  fsync per 8 snaps amortizes the flush; at most 8 acknowledged snaps
  can be lost in a crash.
* **journaled-fsync-never** — ``fsync="never"``: crash-consistent
  (recovery still yields a prefix of committed snaps) but not
  crash-durable; flushing is left to the OS.  This row isolates the
  pure journaling overhead — entry construction, JSON encoding, one
  unbuffered ``write()`` per snap — from the fsync cost.

Record with::

    pytest benchmarks/bench_durability.py --benchmark-only \
        --benchmark-json=/tmp/bench_durability.json

``BENCH_durability.json`` holds the recorded acceptance evidence.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.usecases.webservice import AuctionService

_REQUESTS = 32
_MAXLOG = 10**6
_counter = itertools.count()


def _run_calls(service: AuctionService) -> None:
    for index in range(_REQUESTS):
        service.get_item(f"item{index % 5}", f"person{index % 3}")


def _fresh_dir(tmp_path) -> str:
    return str(tmp_path / f"state-{next(_counter)}")


def _bench_service(benchmark, tmp_path, **service_kwargs) -> None:
    services: list[AuctionService] = []

    def setup():
        kwargs = dict(service_kwargs)
        if kwargs.pop("durable", False):
            kwargs["durable_path"] = _fresh_dir(tmp_path)
        service = AuctionService(maxlog=_MAXLOG, **kwargs)
        # Warm the prepared-query path so rounds measure serving, not
        # first-call compilation.
        service.get_item_nolog("item0", "person0")
        services.append(service)
        return (service,), {}

    benchmark.pedantic(_run_calls, setup=setup, rounds=5, iterations=1)
    for service in services:
        service.close()


@pytest.mark.benchmark(group="durability")
def test_unjournaled(benchmark, tmp_path):
    _bench_service(benchmark, tmp_path)


@pytest.mark.benchmark(group="durability")
def test_journaled_fsync_always(benchmark, tmp_path):
    _bench_service(benchmark, tmp_path, durable=True, fsync="always")


@pytest.mark.benchmark(group="durability")
def test_journaled_fsync_batch(benchmark, tmp_path):
    _bench_service(
        benchmark, tmp_path, durable=True, fsync="batch", fsync_batch=8
    )


@pytest.mark.benchmark(group="durability")
def test_journaled_fsync_never(benchmark, tmp_path):
    _bench_service(benchmark, tmp_path, durable=True, fsync="never")


def test_journaling_overhead_ceiling(tmp_path):
    """Acceptance guard: with fsync out of the picture the journal's
    bookkeeping (entry build + JSON encode + one write per snap) must
    stay small — a journaled ``fsync="never", atomic_snaps=False`` batch
    within 2x of the unjournaled baseline on best-of-3 timings.

    Two costs are deliberately excluded, because each is a *different*
    product being bought and each is disclosed in
    ``BENCH_durability.json`` instead of guarded here:

    * fsync — storage-bound, varies by orders of magnitude across disks;
    * ``atomic_snaps`` (the ``DurableEngine`` default, so the benchmark
      rows above all pay it) — an O(store) rollback checkpoint per snap,
      which profiling shows dominates the journal's own bookkeeping on
      this workload.  It buys apply-failure rollback, not durability,
      and the knob exists precisely to trade it off.
    """

    def best_of(make_service) -> float:
        times = []
        for _ in range(3):
            service = make_service()
            service.get_item_nolog("item0", "person0")
            start = time.perf_counter()
            _run_calls(service)
            times.append(time.perf_counter() - start)
            service.close()
        return min(times)

    plain = best_of(lambda: AuctionService(maxlog=_MAXLOG))
    journaled = best_of(
        lambda: AuctionService(
            maxlog=_MAXLOG,
            durable_path=_fresh_dir(tmp_path),
            fsync="never",
            atomic_snaps=False,
        )
    )
    assert journaled <= plain * 2.0, (
        f"journaling overhead too high: {journaled:.4f}s journaled vs "
        f"{plain:.4f}s plain ({journaled / plain:.2f}x)"
    )
