"""Resilience layer: what graceful degradation costs when nothing fails.

The acceptance constraint is steady-state overhead — the full
:class:`~repro.resilience.ResiliencePolicy` (circuit breaker on the
journal, admission controller with latency-aware shedding, per-query
limits, retry wiring) enabled but *never exercised* (no faults, no
overload) must stay within 5% of the resilience-disabled baseline.
What the policy buys on that path is one ``breaker.admit()`` +
``record_success()`` per non-empty Δ, one admission check per submit
and one EWMA fold per dequeue; everything else is off the hot path by
construction.

Two workload shapes, each measured with the policy off and on:

* **direct writes** — 32 logged ``get_item`` calls straight into a
  durable :class:`AuctionService` (``fsync="never"`` so the constant
  disk flush does not drown the delta being measured): the breaker is
  consulted on every snap commit.
* **served reads+writes** — the same service behind an
  :class:`AuctionFrontEnd` (2 workers), 48 requests (2 reads : 1
  write): admission, queue-wait EWMA and the retry wrapper all ride
  every request.

Record with::

    pytest benchmarks/bench_resilience.py --benchmark-only \
        --benchmark-json=/tmp/bench_resilience.json

``BENCH_resilience.json`` holds the recorded acceptance evidence.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.resilience import AdmissionLimits, ResiliencePolicy, RetryPolicy
from repro.usecases.webservice import AuctionFrontEnd, AuctionService

_WRITE_CALLS = 32
_SERVED_REQUESTS = 48
_MAXLOG = 10**6
_counter = itertools.count()

#: The full-featured policy every "enabled" row runs under.
FULL_POLICY = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=3, budget_ms=5000.0),
    limits=AdmissionLimits(
        max_depth=128,
        max_query_bytes=64_000,
        max_store_nodes=1_000_000,
        max_pending_delta=100_000,
    ),
    max_wait_ms=1000.0,
)


def _fresh_dir(tmp_path) -> str:
    return str(tmp_path / f"state-{next(_counter)}")


def _make_service(tmp_path, policy) -> AuctionService:
    kwargs = {}
    if policy is not None:
        kwargs["resilience"] = policy
    service = AuctionService(
        maxlog=_MAXLOG,
        durable_path=_fresh_dir(tmp_path),
        fsync="never",
        **kwargs,
    )
    service.get_item_nolog("item0", "person0")  # warm the prepared path
    return service


def _run_writes(service: AuctionService) -> None:
    for index in range(_WRITE_CALLS):
        service.get_item(f"item{index % 5}", f"person{index % 3}")


def _run_served(front: AuctionFrontEnd) -> None:
    futures = []
    for index in range(_SERVED_REQUESTS):
        item, person = f"item{index % 5}", f"person{index % 3}"
        if index % 3 == 2:
            futures.append(front.submit_get_item(item, person))
        else:
            futures.append(front.submit_get_item_nolog(item, person))
    for future in futures:
        future.result(timeout=60)


def _bench_writes(benchmark, tmp_path, policy) -> None:
    services: list[AuctionService] = []

    def setup():
        service = _make_service(tmp_path, policy)
        services.append(service)
        return (service,), {}

    benchmark.pedantic(_run_writes, setup=setup, rounds=5, iterations=1)
    for service in services:
        service.close()


def _bench_served(benchmark, tmp_path, policy) -> None:
    stacks: list[tuple[AuctionFrontEnd, AuctionService]] = []

    def setup():
        service = _make_service(tmp_path, policy)
        front = AuctionFrontEnd(
            service, workers=2, queue_size=64, resilience=policy
        )
        stacks.append((front, service))
        return (front,), {}

    benchmark.pedantic(_run_served, setup=setup, rounds=5, iterations=1)
    for front, service in stacks:
        front.shutdown()
        service.close()


@pytest.mark.benchmark(group="resilience-writes")
def test_writes_resilience_disabled(benchmark, tmp_path):
    _bench_writes(benchmark, tmp_path, None)


@pytest.mark.benchmark(group="resilience-writes")
def test_writes_resilience_enabled(benchmark, tmp_path):
    _bench_writes(benchmark, tmp_path, FULL_POLICY)


@pytest.mark.benchmark(group="resilience-served")
def test_served_resilience_disabled(benchmark, tmp_path):
    _bench_served(benchmark, tmp_path, None)


@pytest.mark.benchmark(group="resilience-served")
def test_served_resilience_enabled(benchmark, tmp_path):
    _bench_served(benchmark, tmp_path, FULL_POLICY)


def test_steady_state_overhead_guard(tmp_path):
    """Acceptance guard for the CI-friendly half of the <5% claim.

    Best-of-5 direct-write batches, policy off vs on, no faults firing.
    The guard allows 15% headroom because single-run CI machines jitter
    more than the 5% being claimed; the recorded evidence in
    ``BENCH_resilience.json`` (best-of-5 on a quiet machine) is the
    acceptance artifact for the 5% figure itself.
    """

    def best_of(policy) -> float:
        times = []
        for _ in range(5):
            service = _make_service(tmp_path, policy)
            start = time.perf_counter()
            _run_writes(service)
            times.append(time.perf_counter() - start)
            service.close()
        return min(times)

    baseline = best_of(None)
    enabled = best_of(FULL_POLICY)
    assert enabled <= baseline * 1.15, (
        f"steady-state resilience overhead too high: {enabled:.4f}s "
        f"enabled vs {baseline:.4f}s baseline "
        f"({enabled / baseline:.3f}x)"
    )
