"""Replicated read throughput: the loadgen scoreboard over a fleet.

Drives the same open-loop profile the serving-stack baseline uses
(``benchmarks/BENCH_loadgen.json``: rate 100, ``xmark-rw``, seed 1) —
but against an :class:`~repro.usecases.webservice.AuctionFrontEnd`
whose reads route through a live replica fleet: a primary
:class:`~repro.durability.DurableEngine` plus N worker subprocesses fed
journal frames by the :class:`~repro.cluster.ClusterSupervisor`.  The
point of the comparison: offloading the provably read-only calls to
replica processes must not cost the scoreboard — p99 stays within a
disclosed factor of the single-process baseline while the write path
still runs on the primary, and the observed replication lag is
recorded alongside.

Record a fresh baseline (rewrites ``benchmarks/BENCH_cluster.json``)::

    PYTHONPATH=src python benchmarks/bench_cluster.py

CI runs the regression gate instead (one short 2-replica run)::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke

Tolerances are deliberately loose and disclosed in the baseline's
``gate`` block: replica reads cross a process boundary (JSON over a
socketpair), so per-request latency is *expected* to sit above the
in-process path — the scoreboard's declared SLOs are the correctness
bound, the gate catches order-of-magnitude regressions only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_cluster.json")
LOADGEN_BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_loadgen.json"
)

#: Disclosed gate tolerances (echoed into the baseline file).  20x on
#: p99 vs the *single-process* loadgen baseline: the replica path adds
#: a process hop per routed read, and shared CI runners add their own
#: ~5x of noise on top.
P99_TOLERANCE_FACTOR = 20.0
SHED_RATE_MARGIN = 0.10

#: The profile both fleet sizes use — identical to the loadgen
#: baseline's, so the p99 ratio is apples-to-apples.
PROFILE_ARGS = {
    "rate": 100.0,
    "duration_s": 20.0,
    "mix": "xmark-rw",
    "seed": 1,
}

#: Staleness bound handed to the front end: replicas within this many
#: journal records of the primary may serve reads.  Generous on
#: purpose — the bench measures throughput, not freshness; the bound
#: only has to keep a *stalled* replica out of rotation.
MAX_LAG_SEQ = 512

REPLICA_COUNTS = (2, 4)


class _LagSampler:
    """Samples the fleet's per-replica lag while the driver runs.

    ``max_lag_seq`` in the result is the worst lag any live replica
    showed at any sample point — the staleness an operator would have
    observed, not just the end-of-run value (which quiesces to 0).
    """

    def __init__(self, supervisor, interval_s: float = 0.05):
        self._supervisor = supervisor
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-bench-lag", daemon=True
        )
        self.max_lag_seq = 0
        self.samples = 0

    def _run(self) -> None:
        while not self._stop.is_set():
            lags = self._supervisor.replication_lag()
            known = [lag for lag in lags.values() if lag is not None]
            if known:
                self.max_lag_seq = max(self.max_lag_seq, max(known))
                self.samples += 1
            time.sleep(self._interval_s)

    def __enter__(self) -> "_LagSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _run_fleet(replicas: int, duration_s: float | None = None) -> dict:
    """One wall-mode profile run against a *replicas*-wide fleet."""
    from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
    from repro.loadgen import LoadDriver, LoadProfile
    from repro.resilience.policy import ResiliencePolicy
    from repro.usecases.webservice import (
        SERVICE_MODULE,
        AuctionFrontEnd,
        AuctionService,
    )
    from repro.xmark import XMarkConfig, generate_auction_xml

    args = dict(PROFILE_ARGS)
    if duration_s is not None:
        args["duration_s"] = duration_s
    profile = LoadProfile(**args)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as path:
        xml = generate_auction_xml(
            XMarkConfig(persons=profile.persons, items=profile.items)
        )
        service = AuctionService(
            auction_xml=xml, maxlog=64, durable_path=path
        )
        supervisor = ClusterSupervisor(
            path,
            primary=service.engine,
            module_source=SERVICE_MODULE,
            config=ClusterConfig(
                replicas=replicas,
                ship_interval_s=0.02,
                probe_interval_s=0.1,
            ),
        )
        supervisor.start()
        front = AuctionFrontEnd(
            service,
            workers=profile.workers,
            queue_size=profile.queue_size,
            default_timeout_ms=profile.timeout_ms,
            resilience=ResiliencePolicy(max_wait_ms=profile.timeout_ms),
            cluster=supervisor,
            max_lag_seq=MAX_LAG_SEQ,
        )
        try:
            with _LagSampler(supervisor) as sampler:
                data = LoadDriver(
                    profile, mode="wall", front=front
                ).run().data
        finally:
            front.shutdown()
            supervisor.shutdown()
            service.close()

    return {
        "replicas": replicas,
        "max_lag_seq_observed": sampler.max_lag_seq,
        "lag_samples": sampler.samples,
        "latency_ms": data["latency_ms"],
        "schedule_lag_ms": data["schedule_lag_ms"],
        "rates": data["rates"],
        "requests": data["requests"],
        "slos": data["slos"],
        "passed": data["passed"],
        "_report": data,
    }


def _loadgen_baseline() -> dict | None:
    try:
        with open(LOADGEN_BASELINE_PATH, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _summarize(result: dict, baseline_p99: float | None) -> str:
    ratio = ""
    if baseline_p99:
        ratio = (
            f" ({result['latency_ms']['p99'] / baseline_p99:.1f}x "
            f"single-process baseline)"
        )
    return (
        f"  replicas={result['replicas']}: "
        f"throughput={result['rates']['throughput_rps']}rps "
        f"p99={result['latency_ms']['p99']}ms{ratio} "
        f"max_lag={result['max_lag_seq_observed']} "
        f"slos={'PASS' if result['passed'] else 'FAIL'}"
    )


def full() -> int:
    """Record the fleet scoreboard at each replica count."""
    from repro.loadgen import validate_report

    loadgen = _loadgen_baseline()
    baseline_p99 = (
        loadgen["latency_ms"]["p99"] if loadgen is not None else None
    )
    fleets = {}
    ok = True
    for replicas in REPLICA_COUNTS:
        result = _run_fleet(replicas)
        problems = validate_report(result.pop("_report"))
        if problems:
            print(f"FAIL: replicas={replicas} report invalid: {problems}")
            return 1
        if baseline_p99:
            result["p99_vs_loadgen_baseline"] = round(
                result["latency_ms"]["p99"] / baseline_p99, 3
            )
        ok = ok and result["passed"]
        print(_summarize(result, baseline_p99))
        fleets[str(replicas)] = result
    baseline = {
        "schema": "repro.cluster.bench/v1",
        "profile": dict(PROFILE_ARGS),
        "max_lag_seq_bound": MAX_LAG_SEQ,
        "fleets": fleets,
        "loadgen_baseline": {
            "path": os.path.basename(LOADGEN_BASELINE_PATH),
            "p99_ms": baseline_p99,
        },
        "gate": {
            "p99_tolerance_factor": P99_TOLERANCE_FACTOR,
            "shed_rate_margin": SHED_RATE_MARGIN,
        },
    }
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {BASELINE_PATH}")
    return 0 if ok else 1


def smoke(duration_s: float = 10.0) -> int:
    """The CI gate: one short 2-replica run against both baselines."""
    from repro.loadgen import validate_report

    result = _run_fleet(2, duration_s=duration_s)
    data = result.pop("_report")
    failures: list[str] = []
    problems = validate_report(data)
    if problems:
        failures.append(f"report schema: {problems}")
    else:
        if not result["passed"]:
            failed = [
                v["name"] for v in result["slos"] if not v["passed"]
            ]
            failures.append(f"SLO scoreboard failed: {failed}")
        loadgen = _loadgen_baseline()
        if loadgen is not None:
            p99 = result["latency_ms"]["p99"]
            p99_bound = (
                loadgen["latency_ms"]["p99"] * P99_TOLERANCE_FACTOR
            )
            if p99 > p99_bound:
                failures.append(
                    f"p99 regression: {p99}ms > {p99_bound:.1f}ms "
                    f"(loadgen baseline "
                    f"{loadgen['latency_ms']['p99']}ms x "
                    f"{P99_TOLERANCE_FACTOR})"
                )
            shed = result["rates"]["shed_rate"]
            shed_bound = (
                loadgen["rates"]["shed_rate"] + SHED_RATE_MARGIN
            )
            if shed > shed_bound:
                failures.append(
                    f"shed-rate regression: {shed} > {shed_bound:.3f}"
                )
        if result["max_lag_seq_observed"] > MAX_LAG_SEQ:
            failures.append(
                f"lag bound breached: observed "
                f"{result['max_lag_seq_observed']} > {MAX_LAG_SEQ}"
            )
    print(_summarize(result, None))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("PASS: 2-replica fleet within baseline tolerances")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the short CI regression gate instead of recording "
        "the full 2-and-4-replica baseline",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="override the run duration in seconds",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.duration or 10.0)
    if args.duration is not None:
        PROFILE_ARGS["duration_s"] = args.duration
    return full()


if __name__ == "__main__":
    sys.exit(main())
