"""Transactions: what OCC sessions cost, and what group commits buy.

Three questions, one workload shape (single-attribute bumps on a small
table — the cheapest possible statement, so the measured deltas are the
transaction machinery itself, not evaluation work):

* **commit throughput** — the per-transaction cost of the session path
  (snapshot pin, private evaluator, validation, replay under the write
  lock) against the autocommit baseline running identical statements.
* **group overhead vs single snaps** — on a ``DurableEngine`` with
  ``fsync="always"``, a 16-statement transaction journals one frame
  group (one fsync) where 16 autocommits pay 16 fsyncs: the group
  should *win* on fsync-bound storage, and the margin is the point of
  group framing.
* **abort rate vs contention** — two writers bumping rows drawn from a
  pool of k rows: the measured first-committer-wins abort fraction
  rises as k shrinks (k=1 ≈ every overlap conflicts), and is disclosed
  rather than guarded — it is a property of the workload, not a cost.

Record with::

    pytest benchmarks/bench_transactions.py --benchmark-only \
        --benchmark-json=/tmp/bench_transactions.json

``BENCH_transactions.json`` holds the recorded acceptance evidence.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro import Engine
from repro.durability import DurableEngine
from repro.errors import TransactionConflictError

_STATEMENTS = 16
_counter = itertools.count()


def _fresh_engine() -> Engine:
    engine = Engine()
    engine.bind(
        "table",
        engine.parse_fragment(
            "<table>"
            + "".join(f'<row id="r{i}" v="0"/>' for i in range(16))
            + "</table>"
        ),
    )
    return engine


def _bump(i: int) -> str:
    return (
        f'snap replace value of {{ $table/row[@id = "r{i % 16}"]/@v }} '
        f'with {{ "{i}" }}'
    )


def _autocommit_batch(engine) -> None:
    for i in range(_STATEMENTS):
        engine.execute(_bump(i))


def _txn_per_statement(engine) -> None:
    with engine.session() as session:
        for i in range(_STATEMENTS):
            with session.transaction() as txn:
                txn.execute(_bump(i))


def _txn_one_group(engine) -> None:
    with engine.session() as session:
        with session.transaction() as txn:
            for i in range(_STATEMENTS):
                txn.execute(_bump(i))


def _bench(benchmark, make_engine, workload) -> None:
    engines = []

    def setup():
        engine = make_engine()
        engine.execute(_bump(0))  # warm the prepared path
        engines.append(engine)
        return (engine,), {}

    benchmark.pedantic(workload, setup=setup, rounds=5, iterations=1)
    for engine in engines:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


@pytest.mark.benchmark(group="txn-throughput")
def test_autocommit_baseline(benchmark):
    _bench(benchmark, _fresh_engine, _autocommit_batch)


@pytest.mark.benchmark(group="txn-throughput")
def test_txn_per_statement(benchmark):
    _bench(benchmark, _fresh_engine, _txn_per_statement)


@pytest.mark.benchmark(group="txn-throughput")
def test_txn_one_group(benchmark):
    _bench(benchmark, _fresh_engine, _txn_one_group)


def _fresh_durable(tmp_path) -> DurableEngine:
    engine = DurableEngine(
        str(tmp_path / f"d{next(_counter)}"), fsync="always"
    )
    engine.bind(
        "table",
        engine.parse_fragment(
            "<table>"
            + "".join(f'<row id="r{i}" v="0"/>' for i in range(16))
            + "</table>"
        ),
    )
    return engine


@pytest.mark.benchmark(group="txn-durable")
def test_durable_autocommits_n_fsyncs(benchmark, tmp_path):
    _bench(benchmark, lambda: _fresh_durable(tmp_path), _autocommit_batch)


@pytest.mark.benchmark(group="txn-durable")
def test_durable_group_one_fsync(benchmark, tmp_path):
    _bench(benchmark, lambda: _fresh_durable(tmp_path), _txn_one_group)


def measure_abort_rate(pool: int, attempts: int = 200) -> float:
    """Seeded two-writer contention probe: for each attempt, two
    transactions begin on the same snapshot and bump a row drawn
    uniformly from a pool of *pool* rows; the second commit aborts
    exactly when the draws collide (expected fraction 1/pool)."""
    import random

    rng = random.Random(20060329 + pool)
    engine = _fresh_engine()
    aborts = 0
    for attempt in range(attempts):
        s1, s2 = engine.session(), engine.session()
        t1, t2 = s1.begin(), s2.begin()
        t1.execute(_bump(rng.randrange(pool)))
        t2.execute(_bump(rng.randrange(pool)))
        t1.commit()
        try:
            t2.commit()
        except TransactionConflictError:
            aborts += 1
        s1.close()
        s2.close()
    return aborts / attempts


def test_abort_rate_tracks_contention():
    """Acceptance guard: the abort fraction is monotone in contention —
    a one-row pool aborts every overlapping pair, a 16-row pool only
    the colliding draws — and a loser never corrupts the table."""
    full = measure_abort_rate(pool=1, attempts=50)
    sparse = measure_abort_rate(pool=16, attempts=200)
    assert full == 1.0
    assert sparse < full
    assert sparse == pytest.approx(1 / 16, abs=0.08)


def test_group_commit_saves_fsyncs(tmp_path):
    """Acceptance guard: the 16-statement group journals with exactly
    one fsync where 16 autocommits pay one each, and the group batch is
    not slower than the autocommit batch on best-of-3 (fsync-bound
    storage makes it strictly faster; tmpfs makes it roughly even, so
    the guard allows 1.5x slack for timer noise)."""

    def best_of(workload) -> float:
        times = []
        for _ in range(3):
            engine = _fresh_durable(tmp_path)
            engine.execute(_bump(0))
            start = time.perf_counter()
            workload(engine)
            times.append(time.perf_counter() - start)
            engine.close()
        return min(times)

    engine = _fresh_durable(tmp_path)
    before = engine.tracer.snapshot_counters().get("journal.fsyncs", 0)
    _txn_one_group(engine)
    group_fsyncs = (
        engine.tracer.snapshot_counters()["journal.fsyncs"] - before
    )
    engine.close()
    assert group_fsyncs == 1

    grouped = best_of(_txn_one_group)
    autocommits = best_of(_autocommit_batch)
    assert grouped <= autocommits * 1.5
