"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one engineering decision of this implementation and
measures what it buys:

* **name index** — the store's element-name index answering
  ``descendant::name`` steps vs the plain subtree walk;
* **// collapse** — the ``descendant-or-self::node()/child::n`` →
  ``descendant::n`` core rewrite (without it the index never fires);
* **order-key cache** — cached document-order keys vs recomputation
  (exercised through a sort-heavy query);
* **touch scope** — per-tree order-cache invalidation vs wiping the whole
  cache on any mutation (the mixed read/update service workload: updates
  hit $log while sorted reads hit $auction, so scoped invalidation keeps
  the document's keys warm).
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.lang.normalize import normalize_module
from repro.lang.parser import parse_module
from repro.xdm.store import Store
from repro.xmark import XMarkConfig, generate_auction_xml

_XML = generate_auction_xml(
    XMarkConfig(persons=150, items=100, closed_auctions=150)
)

SCAN_QUERY = "count($auction//person) + count($auction//closed_auction)"


def scan_engine(use_index: bool) -> Engine:
    engine = Engine()
    engine.evaluator.use_name_index = use_index
    engine.load_document("auction", _XML)
    return engine


@pytest.mark.benchmark(group="ablation-name-index")
def test_descendant_scan_with_index(benchmark):
    engine = scan_engine(True)

    def run():
        for _ in range(10):
            engine.execute(SCAN_QUERY)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="ablation-name-index")
def test_descendant_scan_without_index(benchmark):
    engine = scan_engine(False)

    def run():
        for _ in range(10):
            engine.execute(SCAN_QUERY)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="ablation-collapse")
def test_with_collapse(benchmark):
    """Engine pipeline (simplification applied)."""
    engine = scan_engine(True)
    benchmark.pedantic(
        lambda: engine.execute(SCAN_QUERY), rounds=5, iterations=1
    )


@pytest.mark.benchmark(group="ablation-collapse")
def test_without_collapse(benchmark):
    """Evaluate the unsimplified core directly: // stays a
    descendant-or-self::node()/child:: pair, so the index cannot fire."""
    engine = scan_engine(True)
    module = normalize_module(parse_module(SCAN_QUERY))

    def run():
        engine.evaluator.run_snapped(module.body, engine._context())

    benchmark.pedantic(run, rounds=5, iterations=1)


@pytest.mark.benchmark(group="ablation-order-cache")
def test_sort_heavy_query(benchmark):
    """Document-order sorting over a large node set (cache exercised)."""
    engine = scan_engine(True)

    def run():
        engine.execute(
            "count($auction//person | $auction//closed_auction/buyer)"
        )

    benchmark.pedantic(run, rounds=5, iterations=1)


@pytest.mark.benchmark(group="ablation-order-cache")
def test_sort_heavy_query_cold_cache(benchmark):
    """Same query but with the cache invalidated each round (a mutation
    between queries clears cached keys — the realistic worst case)."""
    engine = scan_engine(True)
    engine.bind("sink", engine.parse_fragment("<sink/>"))

    def run():
        engine.execute("snap insert { <tick/> } into { $sink }")
        engine.execute(
            "count($auction//person | $auction//closed_auction/buyer)"
        )

    benchmark.pedantic(run, rounds=5, iterations=1)


class _FullWipeStore(Store):
    """The pre-scoping behaviour: any mutation drops every cached key."""

    def _touch(self, *roots):
        Store._touch(self)


_MIXED_READ = "count($auction//person | $auction//closed_auction/buyer)"
_MIXED_WRITE = "snap insert { <tick/> } into { $sink }"


def _mixed_workload(engine: Engine):
    def run():
        for _ in range(5):
            engine.execute(_MIXED_WRITE)
            engine.execute(_MIXED_READ)

    return run


@pytest.mark.benchmark(group="ablation-touch-scope")
def test_mixed_workload_scoped_touch(benchmark):
    """Updates land in $sink; $auction order keys survive them."""
    engine = scan_engine(True)
    engine.bind("sink", engine.parse_fragment("<sink/>"))
    benchmark.pedantic(_mixed_workload(engine), rounds=3, iterations=1)


@pytest.mark.benchmark(group="ablation-touch-scope")
def test_mixed_workload_full_wipe(benchmark):
    """Same workload with every mutation wiping the whole order cache."""
    engine = scan_engine(True)
    engine.bind("sink", engine.parse_fragment("<sink/>"))
    engine.store.__class__ = _FullWipeStore
    benchmark.pedantic(_mixed_workload(engine), rounds=3, iterations=1)
