"""Front-end throughput: XML parsing into the store, XQuery! parsing +
normalization, and serialization.  Supporting measurements for the
implementation section (the paper's compiler pipeline, Section 4.2)."""

from __future__ import annotations

import pytest

from repro.lang.normalize import normalize_module
from repro.lang.parser import parse_module
from repro.xmark import XMarkConfig, generate_auction_xml
from repro.xmlio import parse_document, serialize

_XML = generate_auction_xml(XMarkConfig(persons=300, items=200, closed_auctions=300))

_QUERY = """
declare variable $d := element counter { 0 };
declare function nextid() as xs:integer {
  snap { replace { $d/text() } with { $d + 1 }, $d }
};
declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return (
    (snap insert { <logentry id="{nextid()}" user="{$auction//person[@id = $userid]/name}"
                    itemid="{$itemid}"/> } into { $log },
     if (count($log/logentry) >= $maxlog)
     then (archivelog($log, $archive), snap delete { $log/logentry })
     else ()),
    $item
  )
};
for $p in $auction//person
let $a := for $t in $auction//closed_auction
          where $t/buyer/@person = $p/@id
          return (insert { <buyer person="{$t/buyer/@person}" /> }
                  into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>
"""


@pytest.mark.benchmark(group="frontend")
def test_xml_parse(benchmark):
    benchmark.pedantic(parse_document, args=(_XML,), rounds=5, iterations=1)


@pytest.mark.benchmark(group="frontend")
def test_xml_serialize(benchmark):
    doc = parse_document(_XML)
    benchmark.pedantic(serialize, args=(doc,), rounds=5, iterations=1)


@pytest.mark.benchmark(group="frontend")
def test_query_parse(benchmark):
    benchmark.pedantic(parse_module, args=(_QUERY,), rounds=10, iterations=1)


@pytest.mark.benchmark(group="frontend")
def test_query_parse_and_normalize(benchmark):
    def run():
        normalize_module(parse_module(_QUERY))

    benchmark.pedantic(run, rounds=10, iterations=1)
