"""E4/E5 — the Section 2 Web service: cost of adding logging to get_item,
and of the snap-based rollover.

The paper argues first-class updates make this scenario *expressible*; the
bench quantifies what the expressiveness costs: a logged call does the
original work plus one insert, an id, and a rollover check.
"""

from __future__ import annotations

import pytest

from repro.usecases import AuctionService
from repro.xmark import XMarkConfig, generate_auction_xml

_XML = generate_auction_xml(XMarkConfig(persons=40, items=25))
N_CALLS = 25


def serve(service: AuctionService, logged: bool) -> None:
    for i in range(N_CALLS):
        itemid = f"item{i % 20}"
        userid = f"person{i % 30}"
        if logged:
            service.get_item(itemid, userid)
        else:
            service.get_item_nolog(itemid, userid)


@pytest.mark.benchmark(group="webservice")
def test_get_item_without_logging(benchmark):
    def run():
        serve(AuctionService(auction_xml=_XML, maxlog=10**9), logged=False)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="webservice")
def test_get_item_with_logging(benchmark):
    def run():
        serve(AuctionService(auction_xml=_XML, maxlog=10**9), logged=True)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="webservice")
def test_get_item_with_logging_and_rollover(benchmark):
    """maxlog=5: every fifth call also archives + clears the log."""

    def run():
        service = AuctionService(auction_xml=_XML, maxlog=5)
        serve(service, logged=True)
        assert service.archive_batches() == N_CALLS // 5

    benchmark.pedantic(run, rounds=3, iterations=1)
