"""Open-loop load harness: record the SLO scoreboard, gate regressions.

Record a fresh baseline (rewrites ``benchmarks/BENCH_loadgen.json``)::

    PYTHONPATH=src python benchmarks/bench_loadgen.py

CI runs the regression gate instead::

    PYTHONPATH=src python benchmarks/bench_loadgen.py --smoke \
        --report loadgen-report.json

The gate compares a fresh wall-mode report (the ``--report`` file, or a
short profile run on the spot when omitted) against the checked-in
baseline.  Tolerances are deliberately loose and fully disclosed in the
baseline's ``gate`` block, because CI runners are shared and noisy —
the declared SLOs inside the report are the correctness bound, the gate
only catches order-of-magnitude regressions:

* observed p99 latency must stay under ``baseline p99 x
  p99_tolerance_factor`` (default 10x);
* observed shed rate must stay under ``baseline shed rate +
  shed_rate_margin`` (default +0.10 absolute);
* the report must validate against the v1 schema and pass its own SLO
  scoreboard.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_loadgen.json")

#: Disclosed gate tolerances (also echoed into the baseline file).
#: 10x on p99: shared-runner noise alone spans ~5x on the same box, and
#: this gate exists to catch order-of-magnitude regressions — the SLO
#: scoreboard inside the report is the correctness bound.
P99_TOLERANCE_FACTOR = 10.0
SHED_RATE_MARGIN = 0.10

#: The profile both the baseline and the gate's fallback run use.
PROFILE_ARGS = {
    "rate": 100.0,
    "duration_s": 20.0,
    "mix": "xmark-rw",
    "seed": 1,
}


def _run_profile(duration_s: float | None = None) -> dict:
    from repro.loadgen import LoadDriver, LoadProfile

    args = dict(PROFILE_ARGS)
    if duration_s is not None:
        args["duration_s"] = duration_s
    profile = LoadProfile(**args)
    return LoadDriver(profile, mode="wall").run().data


def _run_fuzz(cases: int) -> dict:
    from repro.loadgen.hostile import FuzzCampaign

    return FuzzCampaign(cases=cases, seed=1).run().to_dict()


def full() -> int:
    """Record the baseline scoreboard from an actual run."""
    from repro.loadgen import validate_report

    data = _run_profile()
    problems = validate_report(data)
    if problems:
        print(f"FAIL: fresh report is invalid: {problems}")
        return 1
    fuzz = _run_fuzz(10000)
    baseline = {
        "schema": "repro.loadgen.bench/v1",
        "profile": data["config"],
        "latency_ms": data["latency_ms"],
        "schedule_lag_ms": data["schedule_lag_ms"],
        "rates": data["rates"],
        "requests": data["requests"],
        "slos": data["slos"],
        "passed": data["passed"],
        "fuzz": {
            "cases": fuzz["cases"],
            "successes": fuzz["successes"],
            "refused_total": fuzz["refused_total"],
            "refused": fuzz["refused"],
            "ok": fuzz["ok"],
        },
        "gate": {
            "p99_tolerance_factor": P99_TOLERANCE_FACTOR,
            "shed_rate_margin": SHED_RATE_MARGIN,
        },
    }
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {BASELINE_PATH}")
    print(
        f"  p99={data['latency_ms']['p99']}ms "
        f"shed_rate={data['rates']['shed_rate']} "
        f"slos={'PASS' if data['passed'] else 'FAIL'} "
        f"fuzz={'CLEAN' if fuzz['ok'] else 'FAILED'}"
    )
    return 0 if data["passed"] and fuzz["ok"] else 1


def smoke(report_path: str | None) -> int:
    """The CI regression gate; nonzero on schema/SLO/baseline failure."""
    from repro.loadgen import validate_report

    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)
    gate = baseline["gate"]
    if report_path:
        with open(report_path, encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = _run_profile(duration_s=10.0)

    failures: list[str] = []
    problems = validate_report(data)
    if problems:
        failures.append(f"report schema: {problems}")
    else:
        if not data["passed"]:
            failed = [v["name"] for v in data["slos"] if not v["passed"]]
            failures.append(f"SLO scoreboard failed: {failed}")
        p99 = data["latency_ms"]["p99"]
        p99_bound = (
            baseline["latency_ms"]["p99"] * gate["p99_tolerance_factor"]
        )
        if p99 > p99_bound:
            failures.append(
                f"p99 regression: {p99}ms > {p99_bound:.1f}ms "
                f"(baseline {baseline['latency_ms']['p99']}ms x "
                f"{gate['p99_tolerance_factor']})"
            )
        shed = data["rates"]["shed_rate"]
        shed_bound = (
            baseline["rates"]["shed_rate"] + gate["shed_rate_margin"]
        )
        if shed > shed_bound:
            failures.append(
                f"shed-rate regression: {shed} > {shed_bound:.3f} "
                f"(baseline {baseline['rates']['shed_rate']} + "
                f"{gate['shed_rate_margin']})"
            )
        print(
            f"gate: p99 {p99}ms <= {p99_bound:.1f}ms, "
            f"shed {shed} <= {shed_bound:.3f}, "
            f"slos {'PASS' if data['passed'] else 'FAIL'}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("PASS: loadgen report within baseline tolerances")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI regression gate instead of recording a baseline",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="existing loadgen JSON report to gate (smoke mode; a short "
        "profile is run when omitted)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.report)
    return full()


if __name__ == "__main__":
    sys.exit(main())
