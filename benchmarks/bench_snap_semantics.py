"""E7 — Section 3.2: relative cost of the three update-application
semantics (ordered / nondeterministic / conflict-detection).

The paper implements all three and notes the conflict check runs in linear
time with hash tables; this bench measures the application of an n-request
Δ under each semantics so the overhead of verification is visible as the
gap between conflict-detection and the other two.
"""

from __future__ import annotations

import pytest

from repro.semantics.update import (
    ApplySemantics,
    InsertRequest,
    RenameRequest,
    apply_update_list,
)
from repro.xdm.store import Store

N_UPDATES = 2000


def build_workload():
    """A conflict-free Δ of N_UPDATES requests over a wide tree: one
    rename per existing child and one insert before each child."""
    store = Store()
    root = store.create_element("root")
    children = []
    for i in range(N_UPDATES // 2):
        child = store.create_element(f"c{i}")
        store.append_child(root, child)
        children.append(child)
    delta = []
    for index, child in enumerate(children):
        delta.append(RenameRequest(child, f"renamed{index}"))
        fresh = store.create_element(f"n{index}")
        delta.append(InsertRequest((fresh,), "before", child))
    return store, delta


def apply_under(semantics: ApplySemantics) -> None:
    store, delta = build_workload()
    apply_update_list(store, delta, semantics)


@pytest.mark.benchmark(group="snap-semantics")
def test_apply_ordered(benchmark):
    benchmark.pedantic(
        apply_under, args=(ApplySemantics.ORDERED,), rounds=5, iterations=1
    )


@pytest.mark.benchmark(group="snap-semantics")
def test_apply_nondeterministic(benchmark):
    benchmark.pedantic(
        apply_under,
        args=(ApplySemantics.NONDETERMINISTIC,),
        rounds=5,
        iterations=1,
    )


@pytest.mark.benchmark(group="snap-semantics")
def test_apply_conflict_detection(benchmark):
    benchmark.pedantic(
        apply_under,
        args=(ApplySemantics.CONFLICT_DETECTION,),
        rounds=5,
        iterations=1,
    )


@pytest.mark.benchmark(group="snap-semantics-language")
def test_language_level_snap_ordered(benchmark):
    """The same comparison at the language level: a snap collecting many
    inserts, applied under each keyword."""
    from repro import Engine

    def run():
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        engine.execute(
            "snap ordered { for $i in 1 to 300 "
            'return insert { <n v="{$i}"/> } into { $x } }'
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="snap-semantics-language")
def test_language_level_snap_conflict_detection(benchmark):
    from repro import Engine
    from repro.errors import ConflictError

    def run():
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        # 300 inserts at the same position DO conflict: use distinct
        # targets so the check passes (the realistic conflict-free case).
        engine.execute(
            "snap { for $i in 1 to 300 return insert { <h/> } into { $x } }"
        )
        try:
            engine.execute(
                "snap conflict-detection { for $h in $x/h "
                'return insert { <n/> } into { $h } }'
            )
        except ConflictError:  # pragma: no cover - must not happen
            raise AssertionError("workload should be conflict-free")

    benchmark.pedantic(run, rounds=3, iterations=1)
