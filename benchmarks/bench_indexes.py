"""Value/structural indexes: what the hot read path buys, by scale.

Three access strategies are timed on the same engine and document at
1x/10x/100x XMark scale (``XMarkConfig.scale``):

* **seq-scan** — every index off: descendant steps walk the subtree
  (``use_name_index`` disabled) and predicates evaluate against every
  candidate (``ExecutionOptions(use_indexes=False)``).  This is the
  pre-index discipline and the denominator of every speedup ratio.
* **index-scan** — the evaluator's probe fast paths: the structural
  name index answers ``//name`` steps and the value indexes answer
  ``[@a = $v]`` / ``[contains(string(.), $v)]`` predicates, each probe
  re-verified against exact semantics.
* **cost-chosen** — ``optimize=True``: the plan compiler consults
  :class:`repro.index.Statistics` and substitutes ``IndexScan``
  operators where the cost model says they win (it always does at
  these scales; the MIN_TABLE_NODES gate keeps tiny stores on the
  sequential plan).

The q8-style join is explained once per scale and the optimizer's
recorded cost decisions (access path per branch, hash build side) are
written into the JSON — the acceptance evidence that the cost model
picks the index plan for the paper's join workload.

Record with::

    PYTHONPATH=src python benchmarks/bench_indexes.py

which rewrites ``benchmarks/BENCH_indexes.json``.  CI runs the fast
regression gate instead::

    PYTHONPATH=src python benchmarks/bench_indexes.py --smoke

(10x scale only; exits nonzero unless the descendant-search and
value-equality microbenchmarks keep a >= 10x speedup and the cost model
picks the index plan for the q8 join).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro import Engine
from repro.engine import ExecutionOptions
from repro.xmark import XMarkConfig, generate_auction_xml

_NO_INDEX = ExecutionOptions(use_indexes=False)

DESCENDANT_QUERY = "count($auction//closed_auction)"
VALUE_EQ_QUERY = '$auction//person[@id = "person7"]'
CONTAINS_QUERY = '$auction//item[contains(string(.), "officia")]'
COST_DESCENDANT = "for $t in $auction//closed_auction return count($t)"
Q8_QUERY = """
for $p in $auction//person
let $a := for $t in $auction//closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return count($a)
"""

SMOKE_FLOOR = 10.0  # required speedup at 10x scale (acceptance bar)


def _best_ms(run, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _load(factor: float) -> Engine:
    engine = Engine()
    engine.load_document(
        "auction", generate_auction_xml(XMarkConfig.scale(factor))
    )
    engine.store.token_probe("warm")  # build the value indexes up front
    return engine


def _microbench(engine: Engine, query: str, reps: int) -> dict:
    evaluator = engine.evaluator
    evaluator.use_name_index = False
    try:
        seq = _best_ms(
            lambda: engine.execute(query, options=_NO_INDEX), reps
        )
    finally:
        evaluator.use_name_index = True
    index = _best_ms(lambda: engine.execute(query), reps)
    cost = _best_ms(lambda: engine.execute(query, optimize=True), reps)
    return {
        "seq_scan_ms": round(seq, 3),
        "index_scan_ms": round(index, 3),
        "cost_chosen_ms": round(cost, 3),
        "speedup": round(seq / index, 1) if index else None,
    }


def _join_decisions(engine: Engine) -> dict:
    report = engine.explain(Q8_QUERY)
    return {
        "operators_after": report.operators_after,
        "decisions": [d.to_dict() for d in report.costs],
        "index_plan_chosen": report.operators_after.count("IndexScan") >= 2,
    }


def bench_scale(factor: float, reps: int) -> dict:
    engine = _load(factor)
    row = {
        "scale": factor,
        "nodes": len(engine.store._records),
        "descendant_search": _microbench(engine, DESCENDANT_QUERY, reps),
        "value_equality": _microbench(engine, VALUE_EQ_QUERY, reps),
        "contains_search": _microbench(engine, CONTAINS_QUERY, reps),
        "q8_join": _join_decisions(engine),
    }
    # The cost-chosen descendant plan goes through the compiled
    # IndexScan operator rather than the evaluator fast path.
    row["descendant_search"]["cost_chosen_ms"] = round(
        _best_ms(
            lambda: engine.execute(COST_DESCENDANT, optimize=True), reps
        ),
        3,
    )
    return row


def smoke() -> int:
    row = bench_scale(10, reps=3)
    failures = []
    for bench in ("descendant_search", "value_equality"):
        speedup = row[bench]["speedup"]
        if speedup is None or speedup < SMOKE_FLOOR:
            failures.append(
                f"{bench}: speedup {speedup} < {SMOKE_FLOOR}x at 10x scale"
            )
    if not row["q8_join"]["index_plan_chosen"]:
        failures.append(
            "q8 join: cost model did not substitute IndexScan operators"
        )
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    if not failures:
        print(
            "ok: descendant "
            f"{row['descendant_search']['speedup']}x, value-eq "
            f"{row['value_equality']['speedup']}x, q8 index plan chosen"
        )
    return 1 if failures else 0


def full() -> int:
    rows = [bench_scale(factor, reps=3) for factor in (1, 10, 100)]
    ten_x = rows[1]
    payload = {
        "description": (
            "Structural/value index read-path benchmark: seq-scan vs "
            "index-scan vs cost-chosen plans at 1x/10x/100x XMark scale, "
            "plus the optimizer's recorded decisions for the q8-style "
            "join.  Timings are best-of-3 wall clock, indexes pre-built "
            "(build cost is on the first probe and amortized; "
            "maintenance is O(|delta|) per snap, measured in "
            "tests/index)."
        ),
        "acceptance": {
            "floor": f">= {SMOKE_FLOOR}x at 10x scale",
            "descendant_search_speedup": ten_x["descendant_search"][
                "speedup"
            ],
            "value_equality_speedup": ten_x["value_equality"]["speedup"],
            "q8_index_plan_chosen": ten_x["q8_join"]["index_plan_chosen"],
        },
        "rows": rows,
        "mechanism_note": (
            "seq-scan disables both the structural name index and the "
            "value-index probes; index-scan is the evaluator fast path "
            "(probe + exact re-verification); cost-chosen compiles to "
            "an algebra plan where Statistics-driven costing substitutes "
            "IndexScan operators and picks hash-join build sides."
        ),
    }
    out = os.path.join(os.path.dirname(__file__), "BENCH_indexes.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(smoke() if "--smoke" in sys.argv[1:] else full())
