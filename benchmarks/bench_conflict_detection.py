"""E9 — Section 4.1: the conflict check runs "in linear time, using a pair
of hash-tables over node ids".

Measures check_conflict_free on conflict-free Δs of growing size and
asserts near-linear growth (time per request roughly constant).
"""

from __future__ import annotations

import time

import pytest

from repro.semantics.conflicts import check_conflict_free
from repro.semantics.update import InsertRequest, RenameRequest
from repro.xdm.store import Store


def make_delta(n: int):
    store = Store()
    root = store.create_element("root")
    delta = []
    for i in range(n):
        child = store.create_element(f"c{i}")
        store.append_child(root, child)
        if i % 2:
            delta.append(RenameRequest(child, f"r{i}"))
        else:
            fresh = store.create_element(f"f{i}")
            delta.append(InsertRequest((fresh,), "after", child))
    return delta


@pytest.mark.benchmark(group="conflict-check")
@pytest.mark.parametrize("n", [1000, 4000, 16000])
def test_conflict_check(benchmark, n):
    delta = make_delta(n)
    benchmark.pedantic(check_conflict_free, args=(delta,), rounds=5, iterations=1)


@pytest.mark.benchmark(group="conflict-check-linearity")
def test_linearity_table(benchmark):
    """Print per-request cost across a 16x size range and assert it stays
    within a small factor (linear time)."""

    sizes = [1000, 4000, 16000]

    def sweep():
        rows = []
        for n in sizes:
            delta = make_delta(n)
            t0 = time.perf_counter()
            check_conflict_free(delta)
            rows.append((n, time.perf_counter() - t0))
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    print()
    print("E9: conflict-detection check scaling (two hash tables)")
    print(f"{'n':>8} {'time[ms]':>10} {'us/request':>12}")
    per_request = []
    for n, seconds in rows:
        per_request.append(seconds / n * 1e6)
        print(f"{n:>8} {seconds * 1e3:>10.2f} {per_request[-1]:>12.3f}")
    assert max(per_request) < 8 * min(per_request), (
        "per-request cost should be ~constant for a linear-time check"
    )
