"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one experiment from DESIGN.md's
per-experiment index (the paper has no numeric tables; its measurable
claims are complexity/architecture statements, and every one of them is
exercised here).  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.xmark import XMarkConfig, generate_auction_xml


def auction_engine(
    persons: int, closed: int, items: int | None = None, seed: int = 20060329
) -> Engine:
    """A fresh engine loaded with a generated auction document plus the
    $purchasers / $log / $archive targets the paper's queries use."""
    config = XMarkConfig(
        persons=persons,
        items=items if items is not None else max(2, persons // 2),
        open_auctions=max(2, persons // 3),
        closed_auctions=closed,
        seed=seed,
    )
    engine = Engine()
    engine.load_document("auction", generate_auction_xml(config))
    engine.bind("purchasers", engine.parse_fragment("<purchasers/>"))
    engine.bind("log", engine.parse_fragment("<log/>"))
    engine.bind("archive", engine.parse_fragment("<archive/>"))
    engine.bind("maxlog", 10)
    return engine


@pytest.fixture
def small_engine() -> Engine:
    return auction_engine(persons=30, closed=40)


@pytest.fixture
def medium_engine() -> Engine:
    return auction_engine(persons=60, closed=80)
