"""Concurrent serving: what the snapshot read path buys a busy service.

The workload is a read-mostly search service over the auction document:
each request counts the items whose text mentions a needle drawn from a
hot set of eight (``count($auction//item[contains(string(.), $needle)])``,
needle bound as data).  Identical requests recur — the defining property
of serving workloads — and every row performs the same 64 requests:

* **direct** — the pre-concurrency discipline: one thread, one prepared
  query, every request re-evaluated on the live store.  This is the
  baseline the ≥3x acceptance ratio is measured against, and the row
  compared against the pre-PR tree for the <5% regression check.
* **snapshot-8-threads** — 8 client threads through a
  :class:`~repro.concurrent.ConcurrentExecutor` in ``reads="snapshot"``
  mode: pure queries run lock-free on a shared copy-on-write snapshot,
  repeats of a request are served from the snapshot's result cache, and
  simultaneous identical misses are single-flighted.
* **snapshot-1-thread** — same executor, one client: separates what the
  snapshot machinery contributes from what threading contributes.  On
  one CPython interpreter the GIL serializes evaluation, so *all* of
  the throughput win comes from evaluation reuse on the immutable
  snapshot — by design, and disclosed: parallel hardware would add its
  factor on top of, not instead of, this mechanism.
* **serialized-8-threads** — the executor's degenerate
  ``reads="serialized"`` mode (every query under the write lock, no
  snapshot, no result reuse): the control proving the win comes from
  the snapshot path, not the worker pool.

Record with::

    pytest benchmarks/bench_concurrent.py --benchmark-only \
        --benchmark-json=/tmp/bench_concurrent.json

``BENCH_concurrent.json`` holds the recorded acceptance evidence.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import ConcurrentExecutor
from repro.usecases.webservice import AuctionService

_QUERY = "count($auction//item[contains(string(.), $needle)])"
_NEEDLES = ["gold", "a", "the", "free", "ship", "b", "c", "d"]
_REQUESTS = 64
_THREADS = 8
_MAXLOG = 10**6


def _needles() -> list[str]:
    return [_NEEDLES[i % len(_NEEDLES)] for i in range(_REQUESTS)]


def _service() -> AuctionService:
    return AuctionService(maxlog=_MAXLOG)


def _run_direct(engine) -> None:
    prepared = engine.prepare(_QUERY)
    for needle in _needles():
        prepared.execute(bindings={"needle": needle})


def _run_pooled(executor: ConcurrentExecutor, client_threads: int) -> None:
    requests = _needles()
    per = _REQUESTS // client_threads

    def client(index: int) -> None:
        for needle in requests[index * per : (index + 1) * per]:
            executor.execute(_QUERY, bindings={"needle": needle})

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(client_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


@pytest.mark.benchmark(group="concurrent-serving")
def test_direct_single_thread(benchmark):
    engine = _service().engine
    engine.prepare(_QUERY).execute(bindings={"needle": "warm"})
    benchmark.pedantic(lambda: _run_direct(engine), rounds=5, iterations=1)


@pytest.mark.benchmark(group="concurrent-serving")
def test_snapshot_8_threads(benchmark):
    service = _service()

    def round_():
        # A fresh executor per round: each round pays its own snapshot
        # build and cold misses, exactly like a service that just saw a
        # write retire its bundle.
        with ConcurrentExecutor(
            service.engine, workers=_THREADS, queue_size=128
        ) as executor:
            _run_pooled(executor, _THREADS)

    benchmark.pedantic(round_, rounds=5, iterations=1)


@pytest.mark.benchmark(group="concurrent-serving")
def test_snapshot_single_thread(benchmark):
    service = _service()

    def round_():
        with ConcurrentExecutor(
            service.engine, workers=2, queue_size=128
        ) as executor:
            _run_pooled(executor, 1)

    benchmark.pedantic(round_, rounds=5, iterations=1)


@pytest.mark.benchmark(group="concurrent-serving")
def test_serialized_8_threads(benchmark):
    service = _service()

    def round_():
        with ConcurrentExecutor(
            service.engine,
            workers=_THREADS,
            queue_size=128,
            reads="serialized",
        ) as executor:
            _run_pooled(executor, _THREADS)

    benchmark.pedantic(round_, rounds=5, iterations=1)


def test_snapshot_throughput_floor():
    """Acceptance guard: aggregate read-only throughput at 8 client
    threads through the snapshot path must be ≥3x the single-threaded
    direct baseline on this workload (the recorded run shows ~6-7x)."""
    engine = _service().engine
    engine.prepare(_QUERY).execute(bindings={"needle": "warm"})

    start = time.perf_counter()
    _run_direct(engine)
    direct = time.perf_counter() - start

    with ConcurrentExecutor(
        engine, workers=_THREADS, queue_size=128
    ) as executor:
        start = time.perf_counter()
        _run_pooled(executor, _THREADS)
        pooled = time.perf_counter() - start

    assert pooled < direct / 3, (
        f"expected >=3x aggregate throughput, got {direct / pooled:.2f}x "
        f"(direct {direct:.4f}s, snapshot-8-threads {pooled:.4f}s)"
    )
