"""Prepared-query subsystem: what compiling once actually buys.

The scenario is the paper's Section 2 Web service: every request runs
``get_item($itemid, $userid)`` against the auction document.  Three server
disciplines are compared on identical work:

* **cold** — no prepared queries: each request submits the *whole*
  program (service prolog + call) with the arguments spliced into the
  query text, and the compilation cache is cleared so the full frontend
  (parse → normalize → simplify → check) runs every time.
* **cache-hit** — the same full program text each request, but the
  engine's transparent compilation cache is warm, so ``Engine.execute``
  skips the frontend after the first request.
* **prepared + bind** — the intended discipline: the call is prepared
  once at service start-up and each request binds ``$itemid``/``$userid``
  as data (the XQJ ``bindString`` idiom; also injection-safe).

The dynamic body is identical in all three rows, so the gap *is* the
frontend cost.  Record a baseline with::

    pytest benchmarks/bench_prepared_queries.py --benchmark-only \
        --benchmark-json=benchmarks/BENCH_prepared_queries.json
"""

from __future__ import annotations

import time

import pytest

from repro.usecases.webservice import SERVICE_MODULE, AuctionService

# The cold and cache-hit rows repeat one request: a text cache can only
# ever help identical resubmissions (and distinct splices of this program
# would each re-declare get_item, correctly invalidating one another).
# The prepared row round-robins the arguments — binding parameters as
# data keeps full speed even when every request differs.
_REQUEST = ("item0", "person0")
_REQUESTS = [(f"item{i}", f"person{i}") for i in range(8)]

# Large rollover threshold: keep every round on the steady-state path
# (log archival is bench_logging_service.py's subject, not this file's).
_MAXLOG = 10**6


def _service() -> AuctionService:
    return AuctionService(maxlog=_MAXLOG)


def _full_text(itemid: str, userid: str) -> str:
    """The no-prepared-queries request: prolog + call, args in the text."""
    return SERVICE_MODULE + f'\nget_item("{itemid}", "{userid}")'


@pytest.mark.benchmark(group="prepared-queries")
def test_cold_execute(benchmark):
    service = _service()
    engine = service.engine

    text = _full_text(*_REQUEST)

    def run():
        for _ in range(len(_REQUESTS)):
            engine.prepared_cache.clear()
            engine.execute(text)

    benchmark.pedantic(run, rounds=5, iterations=1)


@pytest.mark.benchmark(group="prepared-queries")
def test_cache_hit_execute(benchmark):
    service = _service()
    engine = service.engine
    text = _full_text(*_REQUEST)
    engine.execute(text)

    def run():
        for _ in range(len(_REQUESTS)):
            engine.execute(text)

    benchmark.pedantic(run, rounds=5, iterations=1)


@pytest.mark.benchmark(group="prepared-queries")
def test_prepared_bind_execute(benchmark):
    service = _service()
    prepared = service._get_item
    prepared.execute(bindings={"itemid": "item0", "userid": "person0"})

    def run():
        for itemid, userid in _REQUESTS:
            prepared.execute(bindings={"itemid": itemid, "userid": userid})

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_cache_hit_speedup_floor():
    """Acceptance guard: cache-hit execution of the ``get_item`` request
    must beat the cold full-frontend path by a wide margin (the recorded
    baseline shows ~6-7x; assert a noise-tolerant floor).
    """
    itemid, userid = "item0", "person0"
    rounds = 25

    engine = _service().engine
    start = time.perf_counter()
    for _ in range(rounds):
        engine.prepared_cache.clear()
        engine.execute(_full_text(itemid, userid))
    cold = time.perf_counter() - start

    engine = _service().engine
    engine.execute(_full_text(itemid, userid))
    start = time.perf_counter()
    for _ in range(rounds):
        engine.execute(_full_text(itemid, userid))
    hit = time.perf_counter() - start

    assert hit < cold / 3, (
        f"expected >=3x cache-hit speedup, got {cold / hit:.2f}x "
        f"(cold {cold:.4f}s, hit {hit:.4f}s)"
    )
