"""E6/E8 — cost of nested snap scopes and of the nextid() counter pattern
(Section 2.5).  Snap nesting is the paper's central mechanism; this bench
shows its overhead is per-scope-linear, not multiplicative."""

from __future__ import annotations

import pytest

from repro import Engine

COUNTER_MODULE = """
declare variable $d := element counter { 0 };
declare function nextid() as xs:integer {
  snap { replace { $d/text() } with { $d + 1 }, $d }
};
"""


@pytest.mark.benchmark(group="nested-snap")
def test_counter_throughput(benchmark):
    """nextid() calls — each is a full snap (replace + apply)."""
    engine = Engine()
    engine.load_module(COUNTER_MODULE)

    def run():
        for _ in range(100):
            engine.execute("nextid()")

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="nested-snap")
def test_flat_inserts_single_snap(benchmark):
    """Baseline: N inserts, one snap."""

    def run():
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        engine.execute(
            "snap { for $i in 1 to 100 return insert { <n/> } into { $x } }"
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="nested-snap")
def test_inserts_one_snap_each(benchmark):
    """N inserts, one snap per insert (maximally fragmented scopes)."""

    def run():
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        engine.execute(
            "for $i in 1 to 100 return snap insert { <n/> } into { $x }"
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="nested-snap")
def test_deeply_nested_snaps(benchmark):
    """Literal nesting depth 20: each level adds one insert then snaps."""
    query_parts = []
    for depth in range(20):
        query_parts.append("snap { insert { <n/> } into { $x },")
    query = " ".join(query_parts) + " 0 " + "}" * 20

    def run():
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        engine.execute(query)

    benchmark.pedantic(run, rounds=5, iterations=1)
