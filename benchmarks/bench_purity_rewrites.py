"""E11 — Section 4.2/4.3: optimization inside vs outside an innermost snap.

"Inside an innermost snap no side-effect takes place, hence we there
recover XQuery 1.0 freedom of evaluation order" — the rewriter uses this:
a query whose updates are merely *collected* gets the join plan, while the
same query with a `snap insert` (observing its own effects) falls back to
the nested loop.  The bench measures exactly that price.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import auction_engine
from repro.algebra.plan import plan_operators

COLLECTING = """
    for $p in $auction//person
    for $t in $auction//closed_auction
    where $t/buyer/@person = $p/@id
    return insert { <buyer person="{$t/buyer/@person}" /> }
           into { $purchasers }
"""

SNAPPING = """
    for $p in $auction//person
    for $t in $auction//closed_auction
    where $t/buyer/@person = $p/@id
    return snap insert { <buyer person="{$t/buyer/@person}" /> }
           into { $purchasers }
"""

SCALE = (50, 70)


def run(query: str) -> None:
    engine = auction_engine(*SCALE)
    engine.execute(query, optimize=True)


@pytest.mark.benchmark(group="purity-rewrites")
def test_collecting_updates_join_plan(benchmark):
    engine = auction_engine(*SCALE)
    assert "HashJoin" in plan_operators(engine.compile(COLLECTING))
    benchmark.pedantic(run, args=(COLLECTING,), rounds=3, iterations=1)


@pytest.mark.benchmark(group="purity-rewrites")
def test_snapping_updates_nested_loop(benchmark):
    engine = auction_engine(*SCALE)
    ops = plan_operators(engine.compile(SNAPPING))
    assert "HashJoin" not in ops
    benchmark.pedantic(run, args=(SNAPPING,), rounds=3, iterations=1)


@pytest.mark.benchmark(group="purity-rewrites")
def test_broad_snap_scope_guidance(benchmark):
    """Section 2.4's programmer guidance — 'make snap scope as broad as
    possible, since a broader snap favors optimization' — measured: one
    broad snap around the whole loop vs one snap per iteration."""

    def broad():
        engine = auction_engine(*SCALE)
        engine.execute(
            "snap { " + COLLECTING + " }", optimize=True
        )

    benchmark.pedantic(broad, rounds=3, iterations=1)
