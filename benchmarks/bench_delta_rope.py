"""§4.1 ablation — the update-list rope vs plain lists.

"The implementation of the ordered semantics is more involved, as we need
to rely on a specialized tree structure to represent the update list" —
this bench shows why.  The Fig. 3 rules concatenate Δ *functionally* at
every iteration (``Δ' = (Δ, Δ1, ..., Δm)``), i.e. left-leaning repeated
concatenation.  With immutable lists that is O(|Δ|²) copying; the rope's
O(1) concatenation keeps it linear.  (A mutable ``list.extend`` would also
be linear but is not a persistent value — each EvalResult's Δ would need a
defensive copy before being shared, which is exactly what the rope's
immutability avoids.)
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.semantics.deltarope import EMPTY, Delta
from repro.semantics.update import RenameRequest

N_REQUESTS = 20_000


@pytest.mark.benchmark(group="delta-structure")
def test_rope_left_leaning_accumulation(benchmark):
    """The evaluator's shape: Δ = Δ + Δ_item, once per iteration."""

    def run():
        delta = EMPTY
        for i in range(N_REQUESTS):
            delta = delta + Delta.leaf(RenameRequest(i, "n"))
        assert len(delta) == N_REQUESTS
        return list(delta)  # flatten once, as snap application does

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="delta-structure")
def test_immutable_list_left_leaning_accumulation(benchmark):
    """The same shape with immutable list concatenation — O(n^2) copying.
    (Run at 1/4 size to keep the bench bounded; scale accordingly.)"""

    def run():
        delta: list = []
        for i in range(N_REQUESTS // 4):
            delta = delta + [RenameRequest(i, "n")]
        assert len(delta) == N_REQUESTS // 4
        return list(delta)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="delta-structure")
def test_end_to_end_wide_flwor(benchmark):
    """The language-level shape that exercises Δ concatenation: a nested
    FLWOR collecting one insert per inner iteration."""

    def run():
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        engine.execute(
            "for $i in 1 to 40 return for $j in 1 to 40 "
            "return insert { <n/> } into { $x }"
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
