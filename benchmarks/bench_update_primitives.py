"""E14 — micro-costs of the update primitives (insert / delete / replace /
rename / copy) through the full language pipeline, and of raw update-list
application at the store level."""

from __future__ import annotations

import pytest

from repro import Engine

N = 200


def engine_with_rows() -> Engine:
    engine = Engine()
    rows = "".join(f'<row id="{i}"><v>{i}</v></row>' for i in range(N))
    engine.load_document("doc", f"<table>{rows}</table>")
    return engine


@pytest.mark.benchmark(group="update-primitives")
def test_insert_per_row(benchmark):
    def run():
        engine = engine_with_rows()
        engine.execute(
            "for $r in $doc/table/row return insert { <flag/> } into { $r }"
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="update-primitives")
def test_delete_all_rows(benchmark):
    def run():
        engine = engine_with_rows()
        engine.execute("delete { $doc/table/row }")

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="update-primitives")
def test_rename_per_row(benchmark):
    def run():
        engine = engine_with_rows()
        engine.execute(
            'for $r in $doc/table/row return rename { $r } to { "tuple" }'
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="update-primitives")
def test_replace_per_row_value(benchmark):
    def run():
        engine = engine_with_rows()
        engine.execute(
            "for $r in $doc/table/row return"
            " replace { $r/v } with { <v>updated</v> }"
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="update-primitives")
def test_copy_subtrees(benchmark):
    def run():
        engine = engine_with_rows()
        engine.execute("count(copy { $doc/table/row })")

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="update-primitives")
def test_deep_copy_whole_document(benchmark):
    engine = engine_with_rows()
    doc = engine.variable("doc")[0]

    def run():
        engine.store.deep_copy(doc.nid)

    benchmark.pedantic(run, rounds=5, iterations=1)
