#!/usr/bin/env python3
"""Failure containment with atomic snaps (extension of the paper's §5
discussion: snap as a failure boundary).

A batch import applies a list of updates; one of them violates an
application precondition.  With the default engine, the earlier updates
survive (partial state); with atomic_snaps=True the whole snap rolls back.
Also demonstrates static checks: a typo'd variable is rejected before any
update fires.
"""

from repro import Engine
from repro.errors import UndefinedVariableError, UpdateApplicationError

BATCH = """
snap { insert { <row id="1"/> } into { $table },
       insert { <row id="2"/> } into { $table },
       delete { $table/marker },
       insert { <row id="3"/> } after { $table/marker } }
"""
# The last insert anchors on the marker the delete just detached: the
# ordered application fails at request 4 of 4.


def demo(atomic: bool) -> None:
    engine = Engine(atomic_snaps=atomic)
    engine.bind("table", engine.parse_fragment("<table><marker/></table>"))
    label = "atomic" if atomic else "default"
    try:
        engine.execute(BATCH)
    except UpdateApplicationError as error:
        print(f"[{label}] batch failed: {error.message[:60]}...")
    print(f"[{label}] table afterwards:",
          engine.execute("$table").serialize())
    print()


def static_checks_demo() -> None:
    engine = Engine(static_checks=True)
    engine.bind("x", engine.parse_fragment("<x/>"))
    query = "insert { <a/> } into { $x }, $typpo"
    try:
        engine.execute(query)
    except UndefinedVariableError as error:
        print("[static] rejected before evaluation:", error.message)
    print("[static] no insert happened:",
          engine.execute("$x").serialize())


def main() -> None:
    print("=== the same failing batch, two engines ===\n")
    demo(atomic=False)
    demo(atomic=True)
    print("=== static checks: typos cannot half-run a batch ===\n")
    static_checks_demo()


if __name__ == "__main__":
    main()
