#!/usr/bin/env python3
"""The paper's Section 2 use case: an auction Web service whose get_item
call logs every access, summarizes the log into an archive every $maxlog
entries, and stamps entries with ids from a nested-snap counter.

This is the scenario the paper uses to argue that update languages with a
single global snapshot scope are not expressive enough: the rollover check
must *see* the log insert performed earlier in the same call.
"""

from repro.usecases import AuctionService
from repro.xmark import XMarkConfig, generate_auction_xml


def main() -> None:
    xml = generate_auction_xml(XMarkConfig(persons=20, items=12))
    service = AuctionService(auction_xml=xml, maxlog=4)

    print("=== serving 10 get_item calls (maxlog = 4) ===")
    for call in range(10):
        itemid = f"item{call % 5}"
        userid = f"person{call % 7}"
        result = service.get_item(itemid, userid)
        name = result.serialize()
        print(
            f"call {call}: get_item({itemid}, {userid}) -> "
            f"{name[:48]}{'...' if len(name) > 48 else ''}"
        )

    print()
    print("log entries still pending archive:", service.log_entries())
    print("archive batches:", service.archive_batches())
    print("archived entries:", service.archived_entries())
    print()
    print("archive document:")
    print(service.archive_xml())
    print()
    print("current log:")
    print(service.log_xml())
    print()
    print("next counter value:", service.next_id())


if __name__ == "__main__":
    main()
