#!/usr/bin/env python3
"""Quickstart: the XQuery! engine in five minutes.

Covers: loading documents, querying, the pending-update model, snap,
and the detach semantics of delete.
"""

from repro import Engine


def main() -> None:
    engine = Engine()

    # ------------------------------------------------------------------
    # 1. Load a document and query it (plain XQuery 1.0 subset).
    # ------------------------------------------------------------------
    engine.load_document(
        "doc",
        """<library>
             <book year="2006"><title>XQuery!</title><pages>13</pages></book>
             <book year="2002"><title>XMark</title><pages>12</pages></book>
             <book year="1997"><title>SML</title><pages>114</pages></book>
           </library>""",
    )
    titles = engine.execute(
        'for $b in $doc/library/book where $b/@year > 2000 '
        'order by $b/title return string($b/title)'
    )
    print("recent titles:", titles.strings())

    total = engine.execute("sum($doc/library/book/pages)")
    print("total pages:", total.first_value())

    # ------------------------------------------------------------------
    # 2. Updates are *pending* until a snap applies them.  The top-level
    #    query is implicitly wrapped in one, so this inserts:
    # ------------------------------------------------------------------
    engine.execute(
        'insert { <book year="2026"><title>Reproduction</title>'
        "<pages>20</pages></book> } into { $doc/library }"
    )
    print("books now:", engine.execute("count($doc/library/book)").first_value())

    # ------------------------------------------------------------------
    # 3. snap lets the query observe its own effects (paper Section 2.3).
    #    Without the inner snap, count() would still see the old state.
    # ------------------------------------------------------------------
    observed = engine.execute(
        """
        (snap insert { <book year="2027"><title>Future</title></book> }
              into { $doc/library },
         count($doc/library/book))
        """
    )
    print("count sees the snap-applied insert:", observed.first_value())

    # ------------------------------------------------------------------
    # 4. delete detaches: a variable still holding the node can query and
    #    even re-insert it (paper Section 3.1).
    # ------------------------------------------------------------------
    engine.execute(
        """
        declare variable $victim := exactly-one($doc/library/book[title = "SML"]);
        snap delete { $victim },
        snap insert { $victim } into { $doc/library }
        """
    )
    print(
        "SML survived delete+reinsert:",
        engine.execute('exists($doc/library/book[title = "SML"])').first_value(),
    )

    # ------------------------------------------------------------------
    # 5. Results serialize back to XML.
    # ------------------------------------------------------------------
    print(engine.execute("$doc/library/book[last()]").serialize())


if __name__ == "__main__":
    main()
