#!/usr/bin/env python3
"""XMark analytics with side effects: the paper's Section 4.3 query.

For every person, count the auctions they won — and, as a side effect,
materialize a purchasers list.  Runs the query twice: interpreted
(nested-loop, O(P*C)) and through the optimizer (outer-join/group-by,
O(P+C+M)), shows the optimized plan, and verifies that values AND side
effects agree.
"""

import time

from repro import Engine
from repro.algebra.plan import pretty_plan
from repro.xmark import XMarkConfig, generate_auction_xml

Q8_VARIANT = """
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (insert { <buyer person="{$t/buyer/@person}"
                          itemid="{$t/itemref/@item}" /> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>
"""


def fresh_engine(xml: str) -> Engine:
    engine = Engine()
    engine.load_document("auction", xml)
    engine.bind("purchasers", engine.parse_fragment("<purchasers/>"))
    return engine


def main() -> None:
    xml = generate_auction_xml(
        XMarkConfig(persons=150, items=80, closed_auctions=200)
    )

    print("=== the optimized plan (paper Section 4.3) ===")
    print(pretty_plan(fresh_engine(xml).compile(Q8_VARIANT)))
    print()

    naive = fresh_engine(xml)
    start = time.perf_counter()
    naive_result = naive.execute(Q8_VARIANT, optimize=False)
    naive_seconds = time.perf_counter() - start

    optimized = fresh_engine(xml)
    start = time.perf_counter()
    optimized_result = optimized.execute(Q8_VARIANT, optimize=True)
    optimized_seconds = time.perf_counter() - start

    print(f"naive nested-loop : {naive_seconds * 1000:8.1f} ms")
    print(f"outer-join/group-by: {optimized_seconds * 1000:8.1f} ms")
    print(f"speedup            : {naive_seconds / optimized_seconds:8.1f} x")
    print()

    same_value = naive_result.serialize() == optimized_result.serialize()
    naive_buyers = naive.execute("count($purchasers/buyer)").first_value()
    optimized_buyers = optimized.execute("count($purchasers/buyer)").first_value()
    print("values identical   :", same_value)
    print("side effects       :", naive_buyers, "buyers both ways"
          if naive_buyers == optimized_buyers else "MISMATCH")
    print()
    print("first five rows:")
    for item in naive_result.items[:5]:
        print(" ", naive.serialize([item]))


if __name__ == "__main__":
    main()
