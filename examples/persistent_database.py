#!/usr/bin/env python3
"""A persistent XQuery! database: state survives process restarts.

Builds a small ledger, saves the engine to disk, 'restarts' (loads a fresh
engine from the file) and continues — counters, detached audit trails and
exact decimal balances all intact.
"""

import os
import tempfile

from repro import Engine
from repro.persist import load_engine, save_engine

LEDGER_MODULE = """
declare function post($account, $amount) {
  snap {
    replace { exactly-one($ledger/account[@id = $account]/@balance) }
            with { attribute balance {
                     xs:decimal(exactly-one(
                       $ledger/account[@id = $account])/@balance) + $amount } },
    insert { <tx account="{$account}" amount="{$amount}"/> }
           into { $ledger/journal }
  }
};
"""


def session_one(path: str) -> None:
    print("=== session 1: create the ledger, post transactions ===")
    engine = Engine()
    engine.bind(
        "ledger",
        engine.parse_fragment(
            '<ledger><account id="alice" balance="100.00"/>'
            '<account id="bob" balance="50.00"/><journal/></ledger>'
        ),
    )
    engine.load_module(LEDGER_MODULE)
    engine.execute('post("alice", -19.99)')
    engine.execute('post("bob", 19.99)')
    print("alice:", engine.execute(
        'string($ledger/account[@id="alice"]/@balance)').first_value())
    print("bob:  ", engine.execute(
        'string($ledger/account[@id="bob"]/@balance)').first_value())
    save_engine(engine, path)
    print(f"saved to {path} ({os.path.getsize(path)} bytes)\n")


def session_two(path: str) -> None:
    print("=== session 2: reload and keep going ===")
    engine = load_engine(path)
    # Functions are code, not data: re-declare the module.
    engine.load_module(LEDGER_MODULE)
    print("journal entries after reload:",
          engine.execute("count($ledger/journal/tx)").first_value())
    engine.execute('post("alice", 5.00)')
    print("alice after one more posting:",
          engine.execute(
              'string($ledger/account[@id="alice"]/@balance)').first_value())
    total = engine.execute(
        "sum(for $a in $ledger/account return xs:decimal($a/@balance))"
    ).serialize()
    print("total across accounts (exact):", total)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "ledger.db.json")
        session_one(path)
        session_two(path)


if __name__ == "__main__":
    main()
