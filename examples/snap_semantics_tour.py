#!/usr/bin/env python3
"""A tour of snap semantics (paper Section 3).

Demonstrates: the paper's nested-snap ordering example, the counter
pattern, delta visibility, and the three update-application semantics
including a conflict that conflict-detection rejects.
"""

from repro import Engine
from repro.errors import ConflictError


def nested_snap_ordering() -> None:
    print("=== 1. Nested snap ordering (paper Section 3.4) ===")
    engine = Engine()
    engine.bind("x", engine.parse_fragment("<x/>"))
    engine.execute(
        """snap ordered { insert {<a/>} into {$x},
                          snap { insert {<b/>} into {$x} },
                          insert {<c/>} into {$x} }"""
    )
    print("result:", engine.execute("$x").serialize())
    print("(the inner snap applied <b/> first; the outer snap then")
    print(" appended the still-pending <a/> and <c/>)")
    print()


def counter() -> None:
    print("=== 2. The nextid() counter (paper Section 2.5) ===")
    engine = Engine()
    engine.load_module(
        """
        declare variable $d := element counter { 0 };
        declare function nextid() as xs:integer {
          snap { replace { $d/text() } with { $d + 1 },
                 $d }
        };
        """
    )
    ids = [engine.execute("data(nextid())").strings()[0] for _ in range(5)]
    print("five calls:", ids)
    print("works under an outer snap too:")
    engine.bind("log", engine.parse_fragment("<log/>"))
    engine.execute(
        'snap insert { <entry id="{nextid()}"/> } into { $log }'
    )
    print("log:", engine.execute("$log").serialize())
    print()


def delta_visibility() -> None:
    print("=== 3. Updates are invisible until their snap closes ===")
    engine = Engine()
    engine.bind("x", engine.parse_fragment("<x/>"))
    before_after = engine.execute(
        """
        (count($x/*),
         snap insert { <child/> } into { $x },
         count($x/*))
        """
    )
    values = before_after.strings()
    print("count before snap insert:", values[0], "— after:", values[1])
    print()


def three_semantics() -> None:
    print("=== 4. ordered / nondeterministic / conflict-detection ===")
    engine = Engine()
    engine.bind("x", engine.parse_fragment("<x><victim/></x>"))
    # Conflict-free delta: conflict-detection accepts it.
    engine.execute(
        """snap conflict-detection {
             insert {<a/>} into {$x/victim},
             rename {$x/victim} to {"renamed"}
           }"""
    )
    print("conflict-free delta accepted:", engine.execute("$x").serialize())

    # Conflicting delta: two renames of the same node.
    try:
        engine.execute(
            """snap conflict-detection {
                 rename {$x/renamed} to {"one"},
                 rename {$x/renamed} to {"two"}
               }"""
        )
    except ConflictError as error:
        print("conflicting delta rejected:", error.message[:60], "...")
    # The same delta under ordered semantics: the last rename wins.
    engine.execute(
        """snap ordered {
             rename {$x/renamed} to {"one"},
             rename {$x/renamed} to {"two"}
           }"""
    )
    print("ordered semantics applied both:", engine.execute("$x").serialize())
    print()


def main() -> None:
    nested_snap_ordering()
    counter()
    delta_visibility()
    three_semantics()


if __name__ == "__main__":
    main()
